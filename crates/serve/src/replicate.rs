//! Gossip-based snapshot replication: cluster members ship validated
//! compile-cache snapshots to each other so a freshly joined replica
//! serves its ring slice warm instead of recompiling the working set.
//!
//! Three mechanisms, all riding the existing newline-JSON protocol and
//! the per-peer circuit breakers of [`crate::cluster`]:
//!
//! * **manifest gossip** — every [`ServerConfig::gossip_interval_ms`]
//!   each member sends ring peers a compact manifest of its snapshot
//!   store (kernel hash, spec, epoch word, checksum, last-touch
//!   generation, in-memory residency) and merges the manifest the peer
//!   replies with (push-pull, so one exchange teaches both sides);
//! * **lazy pull** — on a local cache miss, before compiling, the node
//!   asks a peer whose manifest claims the snapshot for the raw bytes
//!   and runs them through *all four* validation gates plus content
//!   re-derivation ([`SnapshotStore::admit_pulled`]). A shipped
//!   snapshot is never executed unvalidated; a tampered one is
//!   rejected per-reason and the node compiles from source;
//! * **anti-entropy sync** — a joining node gossips with every peer
//!   once, then pulls every snapshot of the ring slice it now owns,
//!   admitting each into both the disk store and the in-memory cache,
//!   so its first owned-slice requests are warm before it takes load.
//!
//! Distributed aging closes the loop: manifests carry in-memory
//! residency, and a snapshot that has been out of *every* member's
//! in-memory cache for [`Replicator::gc_rounds`] consecutive gossip
//! rounds is garbage-collected from disk (`snapshot_evicted` log line,
//! `reason=distributed_gc`).
//!
//! Loop safety is structural: gossip and pull handlers are
//! **terminal**. A pull is answered from local disk or `found: false`
//! — never relayed to another peer — the same discipline the
//! `forwarded` flag enforces for request forwarding, so a stale ring
//! cannot create message storms.
//!
//! [`ServerConfig::gossip_interval_ms`]: crate::server::ServerConfig::gossip_interval_ms

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use flexvec::SpecRequest;
use flexvec_front::CompiledKernel;

use crate::cluster::Cluster;
use crate::engine::ServeEngine;
use crate::json::Json;
use crate::metrics::{Counter, ExternalSample};
use crate::protocol::{err_response, hash_hex, ok_response, ErrorKind, ProtoError};
use crate::snapshot::{epoch_word, ManifestEntry, SnapshotStore};

/// Replication counters exported on `/metrics` as `flexvec_replica_*`.
#[derive(Debug, Default)]
pub struct ReplicationCounters {
    /// Completed gossip rounds (one per interval tick).
    pub gossip_rounds: Counter,
    /// Per-peer gossip exchanges that failed (breaker open or
    /// transport error).
    pub gossip_failures: Counter,
    /// Peer manifests merged (requests received plus replies to our
    /// own gossip).
    pub manifests_received: Counter,
    /// Snapshot pulls attempted against a peer.
    pub pull_attempts: Counter,
    /// Pulls that failed: transport, `found: false`, or a validation
    /// gate rejecting the shipped bytes.
    pub pull_failures: Counter,
    /// Pull requests this node answered with snapshot bytes.
    pub pulls_served: Counter,
    /// Snapshots removed from disk by distributed aging.
    pub gc_removed: Counter,
}

/// What a peer's manifest last claimed about one snapshot.
#[derive(Debug, Clone, Copy)]
struct PeerEntry {
    epoch: u32,
    #[allow(dead_code)] // carried for operators/debugging; pulls revalidate anyway
    checksum: u64,
    #[allow(dead_code)]
    generation: u64,
    in_memory: bool,
}

/// The merged view of one peer's snapshot store.
#[derive(Debug, Default)]
struct PeerView {
    /// The peer's gossip round when this view was merged.
    round: u64,
    /// (hash, spec tag) → claimed entry.
    entries: HashMap<(u64, String), PeerEntry>,
}

#[derive(Debug, Default)]
struct ReplState {
    peers: HashMap<String, PeerView>,
    /// Consecutive gossip rounds each local snapshot has been out of
    /// every member's in-memory cache.
    ages: HashMap<(u64, String), u64>,
}

/// The replication subsystem: gossip state, pull transport, and
/// distributed aging for one cluster member.
pub struct Replicator {
    cluster: Arc<Cluster>,
    store: Arc<SnapshotStore>,
    state: Mutex<ReplState>,
    /// This node's gossip round counter.
    round: AtomicU64,
    /// Whether anti-entropy sync has completed since startup.
    synced: AtomicBool,
    /// Rounds a snapshot may be memory-resident nowhere before GC
    /// removes it from disk (0 disables aging).
    gc_rounds: u64,
    /// Gossip/pull counters (shared with `/metrics`).
    pub counters: ReplicationCounters,
}

impl std::fmt::Debug for Replicator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Replicator")
            .field("advertise", &self.cluster.advertise())
            .field("round", &self.round.load(Ordering::Relaxed))
            .field("synced", &self.synced.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        s.push_str(&format!("{b:02x}"));
    }
    s
}

fn from_hex(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(s.get(2 * i..2 * i + 2)?, 16).ok())
        .collect()
}

fn parse_hash_hex(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

impl Replicator {
    /// Builds the replicator over the node's ring and snapshot store.
    /// `gc_rounds` is the distributed-aging threshold (0 disables GC).
    pub fn new(cluster: Arc<Cluster>, store: Arc<SnapshotStore>, gc_rounds: u64) -> Replicator {
        Replicator {
            cluster,
            store,
            state: Mutex::new(ReplState::default()),
            round: AtomicU64::new(0),
            synced: AtomicBool::new(false),
            gc_rounds,
            counters: ReplicationCounters::default(),
        }
    }

    /// The ring this replicator gossips over.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Whether anti-entropy sync has completed since startup — the
    /// "this replica is warm" readiness signal.
    pub fn synced(&self) -> bool {
        self.synced.load(Ordering::Acquire)
    }

    /// This node's gossip round counter.
    pub fn round(&self) -> u64 {
        self.round.load(Ordering::Relaxed)
    }

    fn entry_json(e: &ManifestEntry) -> Json {
        Json::obj([
            ("hash", Json::from(hash_hex(e.hash))),
            ("spec", Json::from(SnapshotStore::spec_tag(e.spec))),
            ("epoch", Json::from(u64::from(e.epoch))),
            ("checksum", Json::from(hash_hex(e.checksum))),
            ("generation", Json::from(e.generation)),
            ("in_memory", Json::from(e.in_memory)),
        ])
    }

    fn parse_entry(value: &Json) -> Option<((u64, String), PeerEntry)> {
        let hash = parse_hash_hex(value.get("hash").and_then(Json::as_str)?)?;
        let tag = value.get("spec").and_then(Json::as_str)?;
        SnapshotStore::parse_spec_tag(tag)?; // refuse malformed spec tags
        let epoch = u32::try_from(value.get("epoch").and_then(Json::as_u64)?).ok()?;
        let checksum = parse_hash_hex(value.get("checksum").and_then(Json::as_str)?)?;
        let generation = value.get("generation").and_then(Json::as_u64).unwrap_or(0);
        let in_memory = value
            .get("in_memory")
            .and_then(Json::as_bool)
            .unwrap_or(false);
        Some((
            (hash, tag.to_owned()),
            PeerEntry {
                epoch,
                checksum,
                generation,
                in_memory,
            },
        ))
    }

    /// This node's manifest as a JSON array, with in-memory residency
    /// probed against the engine's compile cache.
    fn manifest_json(&self, engine: &ServeEngine) -> Json {
        Json::Arr(
            self.store
                .manifest(&|hash, spec| engine.has_compiled(hash, spec))
                .iter()
                .map(Self::entry_json)
                .collect(),
        )
    }

    /// The gossip request line this node sends a peer.
    fn gossip_line(&self, engine: &ServeEngine) -> String {
        Json::obj([
            ("op", Json::from("gossip")),
            ("id", Json::from(0u64)),
            ("from", Json::from(self.cluster.advertise())),
            ("round", Json::from(self.round())),
            ("manifest", self.manifest_json(engine)),
        ])
        .to_string()
    }

    /// Merges one peer manifest into the local view. Malformed entries
    /// are dropped individually; the rest of the manifest still lands.
    pub(crate) fn merge_peer_manifest(&self, from: &str, round: u64, entries: &[Json]) {
        let parsed: HashMap<(u64, String), PeerEntry> =
            entries.iter().filter_map(Self::parse_entry).collect();
        let mut state = self.state.lock().expect("replication state");
        let view = state.peers.entry(from.to_owned()).or_default();
        view.round = round;
        view.entries = parsed;
        drop(state);
        self.counters.manifests_received.inc();
    }

    fn merge_manifest_value(&self, value: &Json) {
        let Some(from) = value.get("from").and_then(Json::as_str) else {
            return;
        };
        // A member gossiping under our own name is misconfigured;
        // merging it would make us "claim" our own files remotely.
        if from == self.cluster.advertise() {
            return;
        }
        let round = value.get("round").and_then(Json::as_u64).unwrap_or(0);
        if let Some(Json::Arr(entries)) = value.get("manifest") {
            self.merge_peer_manifest(from, round, entries);
        }
    }

    /// Handles an incoming `gossip` line: merge the sender's manifest,
    /// reply with our own (push-pull — one exchange teaches both
    /// sides). Terminal: never relayed to another peer.
    pub fn handle_gossip(&self, value: &Json, engine: &ServeEngine) -> Json {
        let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
        self.merge_manifest_value(value);
        ok_response(
            id,
            [
                ("op", Json::from("gossip")),
                ("from", Json::from(self.cluster.advertise())),
                ("round", Json::from(self.round())),
                ("manifest", self.manifest_json(engine)),
            ],
        )
    }

    /// Handles an incoming `pull` line: answer with the raw snapshot
    /// bytes from local disk (hex-encoded; the *puller* validates) or
    /// `found: false`. Terminal by construction — this never consults
    /// peers, never compiles, never cascades — so pulls cannot loop.
    pub fn handle_pull(&self, value: &Json) -> Json {
        let id = value.get("id").and_then(Json::as_u64).unwrap_or(0);
        let hash = value
            .get("hash")
            .and_then(Json::as_str)
            .and_then(parse_hash_hex);
        let spec = value
            .get("spec")
            .and_then(Json::as_str)
            .and_then(SnapshotStore::parse_spec_tag);
        let (Some(hash), Some(spec)) = (hash, spec) else {
            return err_response(
                id,
                &ProtoError::new(
                    ErrorKind::BadRequest,
                    "pull needs `hash` (hex) and `spec` (ff/rtmTILE)",
                ),
            );
        };
        match self.store.raw_bytes(hash, spec) {
            Some(bytes) => {
                self.counters.pulls_served.inc();
                ok_response(
                    id,
                    [
                        ("found", Json::from(true)),
                        ("hash", Json::from(hash_hex(hash))),
                        ("spec", Json::from(SnapshotStore::spec_tag(spec))),
                        ("data", Json::from(to_hex(&bytes))),
                    ],
                )
            }
            None => ok_response(id, [("found", Json::from(false))]),
        }
    }

    /// Whether any peer's manifest claims a compatible snapshot of
    /// `hash` (any spec) — the router uses this to prefer pulling the
    /// artifact over forwarding the request.
    pub fn peer_claims(&self, hash: u64) -> bool {
        let state = self.state.lock().expect("replication state");
        state.peers.values().any(|view| {
            view.entries
                .iter()
                .any(|((h, _), e)| *h == hash && e.epoch == epoch_word())
        })
    }

    /// Peers whose manifests claim a compatible `(hash, spec)`
    /// snapshot, ring owner first (most likely to be authoritative),
    /// then sorted for determinism.
    fn claimants(&self, hash: u64, spec: SpecRequest) -> Vec<String> {
        let key = (hash, SnapshotStore::spec_tag(spec));
        let owner = self.cluster.owner_of(hash).to_owned();
        let state = self.state.lock().expect("replication state");
        let mut peers: Vec<String> = state
            .peers
            .iter()
            .filter(|(_, view)| {
                view.entries
                    .get(&key)
                    .is_some_and(|e| e.epoch == epoch_word())
            })
            .map(|(name, _)| name.clone())
            .collect();
        peers.sort();
        peers.sort_by_key(|name| *name != owner);
        peers
    }

    /// One pull exchange: raw bytes or a counted failure.
    fn fetch(&self, peer: &str, hash: u64, spec: SpecRequest) -> Option<Vec<u8>> {
        self.counters.pull_attempts.inc();
        let line = Json::obj([
            ("op", Json::from("pull")),
            ("id", Json::from(0u64)),
            ("hash", Json::from(hash_hex(hash))),
            ("spec", Json::from(SnapshotStore::spec_tag(spec))),
        ])
        .to_string();
        let bytes = match self.cluster.call(peer, &line) {
            Ok(reply) if reply.get("found").and_then(Json::as_bool) == Some(true) => {
                reply.get("data").and_then(Json::as_str).and_then(from_hex)
            }
            _ => None,
        };
        if bytes.is_none() {
            self.counters.pull_failures.inc();
        }
        bytes
    }

    /// Lazy pull for a cache miss: tries each claimant peer in turn,
    /// validating the shipped bytes through every gate before trusting
    /// them ([`SnapshotStore::admit_pulled`] — which also persists the
    /// snapshot locally). `None` means no peer produced a valid
    /// snapshot and the caller compiles from source.
    ///
    /// This is called from *inside* the compile cache's coalesced miss
    /// closure, so it deliberately never touches the in-memory cache
    /// itself — the closure's return value is what gets inserted, and
    /// concurrent pull/compile racers coalesce onto one entry.
    pub fn pull_for(&self, hash: u64, spec: SpecRequest) -> Option<CompiledKernel> {
        for peer in self.claimants(hash, spec) {
            if !self.cluster.peer_available(&peer) {
                continue; // open breaker: don't burn a connect timeout
            }
            let Some(bytes) = self.fetch(&peer, hash, spec) else {
                continue;
            };
            match self.store.admit_pulled(&bytes, hash, spec) {
                Ok((kernel, _parsed)) => return Some(kernel),
                Err(reason) => {
                    self.counters.pull_failures.inc();
                    eprintln!(
                        "flexvec-serve: pulled snapshot {}.{} from {peer} rejected: {}",
                        hash_hex(hash),
                        SnapshotStore::spec_tag(spec),
                        reason.label()
                    );
                }
            }
        }
        None
    }

    /// Pulls *any* spec variant of `hash` a peer claims, so a
    /// hash-only request for a kernel this node has never seen can be
    /// resolved from the pulled snapshot's embedded source instead of
    /// failing `unknown_hash`. Returns whether something was admitted.
    pub fn pull_any(&self, hash: u64) -> bool {
        let specs: Vec<SpecRequest> = {
            let state = self.state.lock().expect("replication state");
            let mut tags: Vec<String> = state
                .peers
                .values()
                .flat_map(|view| view.entries.iter())
                .filter(|((h, _), e)| *h == hash && e.epoch == epoch_word())
                .map(|((_, tag), _)| tag.clone())
                .collect();
            tags.sort();
            tags.dedup();
            tags.iter()
                .filter_map(|t| SnapshotStore::parse_spec_tag(t))
                .collect()
        };
        specs
            .into_iter()
            .any(|spec| self.pull_for(hash, spec).is_some())
    }

    /// One gossip tick: push-pull manifests with every peer, then age
    /// and garbage-collect. Failures feed the shared breakers and are
    /// counted, never fatal.
    pub fn gossip_round(&self, engine: &ServeEngine) {
        self.round.fetch_add(1, Ordering::Relaxed);
        let line = self.gossip_line(engine);
        for peer in self.cluster.peer_names() {
            if !self.cluster.peer_available(&peer) {
                self.counters.gossip_failures.inc();
                continue;
            }
            match self.cluster.call(&peer, &line) {
                Ok(reply) => self.merge_manifest_value(&reply),
                Err(_) => self.counters.gossip_failures.inc(),
            }
        }
        self.counters.gossip_rounds.inc();
        self.age_and_gc(engine);
    }

    /// Distributed aging: a local snapshot that is memory-resident on
    /// no member (here included) for `gc_rounds` consecutive rounds is
    /// removed from disk. Resetting on *any* sighting keeps a kernel
    /// alive everywhere as long as one node still serves it.
    pub(crate) fn age_and_gc(&self, engine: &ServeEngine) {
        if self.gc_rounds == 0 {
            return;
        }
        let local = self
            .store
            .manifest(&|hash, spec| engine.has_compiled(hash, spec));
        let mut remove: Vec<(u64, SpecRequest)> = Vec::new();
        {
            let mut state = self.state.lock().expect("replication state");
            let mut tracked: std::collections::HashSet<(u64, String)> = Default::default();
            for e in &local {
                let key = (e.hash, SnapshotStore::spec_tag(e.spec));
                tracked.insert(key.clone());
                let alive = e.in_memory
                    || state
                        .peers
                        .values()
                        .any(|view| view.entries.get(&key).is_some_and(|pe| pe.in_memory));
                if alive {
                    state.ages.remove(&key);
                } else {
                    let age = state.ages.entry(key).or_insert(0);
                    *age += 1;
                    if *age >= self.gc_rounds {
                        remove.push((e.hash, e.spec));
                    }
                }
            }
            // Files that vanished (size sweep, external cleanup) stop
            // aging.
            state.ages.retain(|key, _| tracked.contains(key));
            for (hash, spec) in &remove {
                state.ages.remove(&(*hash, SnapshotStore::spec_tag(*spec)));
            }
        }
        for (hash, spec) in remove {
            if self.store.remove_snapshot(hash, spec) {
                self.counters.gc_removed.inc();
                eprintln!(
                    "flexvec-serve: snapshot_evicted file={} reason=distributed_gc rounds={}",
                    self.store.path_for(hash, spec).display(),
                    self.gc_rounds
                );
            }
        }
    }

    /// Anti-entropy sync for a joining node: gossip with every peer to
    /// learn who holds what, then pull every snapshot of the ring
    /// slice this node owns into both the disk store *and* the
    /// in-memory cache (via
    /// [`ServeEngine::admit_pulled_snapshot`] — full validation per
    /// pull), so owned-slice traffic is warm before the node takes
    /// load. Sets the [`Replicator::synced`] readiness flag when done;
    /// peers being down only shrinks what could be synced, it never
    /// blocks readiness.
    pub fn anti_entropy_sync(&self, engine: &ServeEngine) {
        let line = self.gossip_line(engine);
        for peer in self.cluster.peer_names() {
            match self.cluster.call(&peer, &line) {
                Ok(reply) => self.merge_manifest_value(&reply),
                Err(_) => self.counters.gossip_failures.inc(),
            }
        }
        // Owned entries some peer claims and we don't hold yet.
        let wanted: Vec<(u64, SpecRequest)> = {
            let state = self.state.lock().expect("replication state");
            let mut keys: Vec<(u64, String)> = state
                .peers
                .values()
                .flat_map(|view| view.entries.iter())
                .filter(|(_, e)| e.epoch == epoch_word())
                .map(|(key, _)| key.clone())
                .collect();
            keys.sort();
            keys.dedup();
            keys.into_iter()
                .filter_map(|(hash, tag)| {
                    let spec = SnapshotStore::parse_spec_tag(&tag)?;
                    (self.cluster.is_local(hash) && !self.store.has_snapshot(hash, spec))
                        .then_some((hash, spec))
                })
                .collect()
        };
        for (hash, spec) in wanted {
            for peer in self.claimants(hash, spec) {
                if !self.cluster.peer_available(&peer) {
                    continue;
                }
                let Some(bytes) = self.fetch(&peer, hash, spec) else {
                    continue;
                };
                match engine.admit_pulled_snapshot(&bytes, hash, spec) {
                    Ok(()) => break,
                    Err(reason) => {
                        self.counters.pull_failures.inc();
                        eprintln!(
                            "flexvec-serve: sync pull {}.{} from {peer} rejected: {}",
                            hash_hex(hash),
                            SnapshotStore::spec_tag(spec),
                            reason.label()
                        );
                    }
                }
            }
        }
        self.synced.store(true, Ordering::Release);
    }

    /// Replication fields for the `stats` op.
    pub fn stats_fields(&self) -> Vec<(&'static str, Json)> {
        let (peers_known, peer_entries): (u64, u64) = {
            let state = self.state.lock().expect("replication state");
            (
                state.peers.len() as u64,
                state.peers.values().map(|v| v.entries.len() as u64).sum(),
            )
        };
        vec![
            ("replica_synced", Json::from(self.synced())),
            ("replica_round", Json::from(self.round())),
            ("replica_peers_known", Json::from(peers_known)),
            ("replica_peer_entries", Json::from(peer_entries)),
            (
                "replica_pull_attempts",
                Json::from(self.counters.pull_attempts.get()),
            ),
            (
                "replica_pull_failures",
                Json::from(self.counters.pull_failures.get()),
            ),
            (
                "replica_gc_removed",
                Json::from(self.counters.gc_removed.get()),
            ),
        ]
    }

    /// Replication counters for `/metrics`, pre-seeded from the first
    /// scrape.
    pub fn metric_samples(&self) -> Vec<ExternalSample> {
        let peer_entries: u64 = {
            let state = self.state.lock().expect("replication state");
            state.peers.values().map(|v| v.entries.len() as u64).sum()
        };
        Vec::from([
            ExternalSample {
                name: "flexvec_replica_gossip_rounds_total",
                value: self.counters.gossip_rounds.get(),
            },
            ExternalSample {
                name: "flexvec_replica_gossip_failures_total",
                value: self.counters.gossip_failures.get(),
            },
            ExternalSample {
                name: "flexvec_replica_manifests_received_total",
                value: self.counters.manifests_received.get(),
            },
            ExternalSample {
                name: "flexvec_replica_pull_attempts_total",
                value: self.counters.pull_attempts.get(),
            },
            ExternalSample {
                name: "flexvec_replica_pull_failures_total",
                value: self.counters.pull_failures.get(),
            },
            ExternalSample {
                name: "flexvec_replica_pulls_served_total",
                value: self.counters.pulls_served.get(),
            },
            ExternalSample {
                name: "flexvec_replica_gc_removed_total",
                value: self.counters.gc_removed.get(),
            },
            ExternalSample {
                name: "flexvec_replica_synced",
                value: u64::from(self.synced()),
            },
            ExternalSample {
                name: "flexvec_replica_peer_entries",
                value: peer_entries,
            },
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{Op, Request};
    use flexvec::program_hash;
    use flexvec_front::parse_str;
    use flexvec_vm::Engine;
    use std::io::{BufRead, BufReader, Write};
    use std::path::PathBuf;
    use std::time::Duration;

    const MINLOC: &str = "\
kernel minloc;
var i = 0;
var best = 9223372036854775807;
array a[64] = seed 1;
live_out best;
for (i = 0; i < 64; i++) {
  if (a[i] < best) {
    best = a[i];
  }
}
";

    fn minloc_hash() -> u64 {
        program_hash(&parse_str("<t>", MINLOC).unwrap().program)
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("fv-replicate-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("scratch dir");
        dir
    }

    fn run_req(source: &str) -> Request {
        Request {
            id: 1,
            op: Op::Run,
            source: Some(source.to_owned()),
            hash: None,
            spec: SpecRequest::Auto,
            spec_explicit: false,
            engine: Some(Engine::Compiled),
            vl: None,
            invocations: 1,
            deadline_ms: None,
            forwarded: false,
        }
    }

    fn setup(
        tag: &str,
        members: Vec<String>,
        advertise: &str,
        gc_rounds: u64,
    ) -> (ServeEngine, Arc<Replicator>) {
        let store = SnapshotStore::open(scratch(tag)).unwrap();
        let engine = ServeEngine::with_snapshots(0, Some(store));
        let cluster = Arc::new(Cluster::new(members, advertise.to_owned()).unwrap());
        let repl = Arc::new(Replicator::new(
            cluster,
            engine.snapshots_arc().expect("store"),
            gc_rounds,
        ));
        engine.enable_replication(Arc::clone(&repl));
        (engine, repl)
    }

    fn claim_entry(hash: u64) -> Json {
        Json::obj([
            ("hash", Json::from(hash_hex(hash))),
            ("spec", Json::from("ff")),
            ("epoch", Json::from(u64::from(epoch_word()))),
            ("checksum", Json::from(hash_hex(0xdead))),
            ("generation", Json::from(1u64)),
            ("in_memory", Json::from(true)),
        ])
    }

    #[test]
    fn pull_skips_open_breaker_and_falls_back_to_local_compile() {
        let dead = "127.0.0.1:9".to_owned();
        let me = "127.0.0.1:9001".to_owned();
        let (engine, repl) = setup("breaker", vec![dead.clone(), me.clone()], &me, 10);
        let hash = minloc_hash();
        repl.merge_peer_manifest(&dead, 1, &[claim_entry(hash)]);

        // Trip the dead peer's breaker through the shared call path.
        for _ in 0..3 {
            assert!(repl.cluster().call(&dead, "{}").is_err());
        }
        assert!(!repl.cluster().peer_available(&dead), "breaker open");

        // The miss path must skip the pull (open breaker) and compile
        // locally — correct, just colder.
        let out = engine.handle(&run_req(MINLOC), None).unwrap();
        let cache = out
            .fields
            .iter()
            .find(|(n, _)| *n == "cache")
            .map(|(_, v)| v.as_str().unwrap().to_owned())
            .unwrap();
        assert_eq!(cache, "compiled");
        assert_eq!(engine.cache().compiles(), 1);
        assert_eq!(
            repl.counters.pull_attempts.get(),
            0,
            "an open breaker short-circuits before any transport attempt"
        );
    }

    #[test]
    fn pull_handler_is_terminal_and_never_cascades() {
        let dead = "127.0.0.1:9".to_owned();
        let me = "127.0.0.1:9001".to_owned();
        let (_engine, repl) = setup("loopguard", vec![dead.clone(), me.clone()], &me, 10);
        let hash = minloc_hash();
        // A peer claims the snapshot — but an incoming pull must be
        // answered from local disk only, never relayed to that peer.
        repl.merge_peer_manifest(&dead, 1, &[claim_entry(hash)]);
        let pull = Json::obj([
            ("op", Json::from("pull")),
            ("id", Json::from(7u64)),
            ("hash", Json::from(hash_hex(hash))),
            ("spec", Json::from("ff")),
        ]);
        let reply = repl.handle_pull(&pull);
        assert_eq!(reply.get("id").and_then(Json::as_u64), Some(7));
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            reply.get("found").and_then(Json::as_bool),
            Some(false),
            "not on local disk means not found, even though a peer claims it"
        );
        assert_eq!(
            repl.counters.pull_attempts.get(),
            0,
            "the pull handler never pulls"
        );

        let malformed = Json::obj([("op", Json::from("pull")), ("id", Json::from(9u64))]);
        let reply = repl.handle_pull(&malformed);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(false));
    }

    #[test]
    fn concurrent_pull_and_compile_coalesce_to_one_cache_entry() {
        // Donor daemon compiles the kernel and provides the snapshot
        // bytes a mini peer server will ship.
        let donor_store = SnapshotStore::open(scratch("race-donor")).unwrap();
        let donor = ServeEngine::with_snapshots(0, Some(donor_store));
        donor.handle(&run_req(MINLOC), None).unwrap();
        let hash = minloc_hash();
        let bytes = donor
            .snapshots()
            .unwrap()
            .raw_bytes(hash, SpecRequest::Auto)
            .expect("donor snapshot");
        let data_hex = to_hex(&bytes);

        // Mini peer: one connection, one pull request, answered slowly
        // so compile racers genuinely overlap the in-flight pull.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let peer_addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            assert!(line.contains("\"pull\""), "unexpected request: {line}");
            std::thread::sleep(Duration::from_millis(150));
            let reply = ok_response(
                0,
                [
                    ("found", Json::from(true)),
                    ("data", Json::from(data_hex.as_str())),
                ],
            );
            let mut stream = stream;
            stream.write_all(format!("{reply}\n").as_bytes()).unwrap();
        });

        let me = "127.0.0.1:1".to_owned();
        let (engine, repl) = setup("race", vec![peer_addr.clone(), me.clone()], &me, 10);
        repl.merge_peer_manifest(&peer_addr, 1, &[claim_entry(hash)]);

        // Four concurrent requests race one pull against coalesced
        // waiters: exactly one closure runs, zero compiles happen.
        std::thread::scope(|scope| {
            let engine = &engine;
            let handles: Vec<_> = (0..4)
                .map(|_| scope.spawn(move || engine.handle(&run_req(MINLOC), None).unwrap()))
                .collect();
            for h in handles {
                h.join().unwrap();
            }
        });
        server.join().unwrap();
        assert_eq!(
            engine.cache().compiles(),
            0,
            "the pull preempted every compile"
        );
        assert_eq!(
            engine
                .snapshots()
                .unwrap()
                .counters
                .pulled
                .load(std::sync::atomic::Ordering::Relaxed),
            1,
            "exactly one pull was admitted"
        );
        assert_eq!(engine.cache().stats().entries, 1, "one coalesced entry");
    }

    #[test]
    fn gossip_exchange_merges_and_replies_with_own_manifest() {
        let dead = "127.0.0.1:9".to_owned();
        let me = "127.0.0.1:9001".to_owned();
        let (engine, repl) = setup("gossip", vec![dead.clone(), me.clone()], &me, 10);
        engine.handle(&run_req(MINLOC), None).unwrap();
        let hash = minloc_hash();

        let incoming = Json::obj([
            ("op", Json::from("gossip")),
            ("id", Json::from(3u64)),
            ("from", Json::from(dead.as_str())),
            ("round", Json::from(5u64)),
            ("manifest", Json::Arr(vec![claim_entry(0xabcd)])),
        ]);
        let reply = repl.handle_gossip(&incoming, &engine);
        assert_eq!(reply.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(repl.counters.manifests_received.get(), 1);
        assert!(repl.peer_claims(0xabcd), "the sender's claim was merged");

        let Some(Json::Arr(manifest)) = reply.get("manifest") else {
            panic!("gossip reply carries a manifest");
        };
        assert_eq!(manifest.len(), 1);
        let entry = &manifest[0];
        assert_eq!(
            entry.get("hash").and_then(Json::as_str),
            Some(hash_hex(hash)).as_deref()
        );
        assert_eq!(entry.get("spec").and_then(Json::as_str), Some("ff"));
        assert_eq!(
            entry.get("epoch").and_then(Json::as_u64),
            Some(u64::from(epoch_word()))
        );
        assert_eq!(
            entry.get("in_memory").and_then(Json::as_bool),
            Some(true),
            "the freshly compiled kernel is memory-resident"
        );
    }

    #[test]
    fn distributed_aging_removes_memory_cold_snapshots_after_n_rounds() {
        // Write the snapshot in a first lifetime, then restart over the
        // same directory with an empty in-memory cache: the snapshot is
        // memory-resident nowhere and must age out after `gc_rounds`.
        let dir = scratch("gc");
        {
            let store = SnapshotStore::open(&dir).unwrap();
            let donor = ServeEngine::with_snapshots(0, Some(store));
            donor.handle(&run_req(MINLOC), None).unwrap();
        }
        let hash = minloc_hash();
        let store = SnapshotStore::open(&dir).unwrap();
        let path = store.path_for(hash, SpecRequest::Auto);
        assert!(path.exists());
        let engine = ServeEngine::with_snapshots(0, Some(store));
        let dead = "127.0.0.1:9".to_owned();
        let me = "127.0.0.1:9001".to_owned();
        let cluster = Arc::new(Cluster::new(vec![dead, me.clone()], me).unwrap());
        let repl = Replicator::new(cluster, engine.snapshots_arc().unwrap(), 2);

        repl.age_and_gc(&engine);
        assert!(path.exists(), "one cold round is below the threshold");
        repl.age_and_gc(&engine);
        assert!(!path.exists(), "two cold rounds trigger distributed GC");
        assert_eq!(repl.counters.gc_removed.get(), 1);

        // A resident kernel never ages: recompile it into memory and
        // verify two more rounds leave the rewritten snapshot alone.
        engine.handle(&run_req(MINLOC), None).unwrap();
        assert!(path.exists(), "the compile re-persisted the snapshot");
        repl.age_and_gc(&engine);
        repl.age_and_gc(&engine);
        assert!(path.exists(), "memory residency resets the age");
        assert_eq!(repl.counters.gc_removed.get(), 1);
    }

    #[test]
    fn hex_round_trips() {
        let bytes: Vec<u8> = (0..=255).collect();
        assert_eq!(from_hex(&to_hex(&bytes)).as_deref(), Some(bytes.as_slice()));
        assert!(from_hex("abc").is_none(), "odd length");
        assert!(from_hex("zz").is_none(), "non-hex");
    }
}
