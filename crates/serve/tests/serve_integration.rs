//! End-to-end tests for the serving layer over real TCP: a daemon is
//! started on an ephemeral port for each test and driven through the
//! same [`Client`] the `flexvecc client` subcommand uses.

use std::time::Duration;

use flexvec_serve::server::AcceptMode;
use flexvec_serve::{start, Client, Json, ServerConfig};

/// A small conditional-update kernel; distinct `n` gives a distinct
/// AST and therefore a distinct compile-cache key.
fn kernel_source(n: u64) -> String {
    format!(
        "kernel k{n};\n\
         var i = 0;\n\
         var best = 9223372036854775807;\n\
         array a[64] = seed {seed};\n\
         live_out best;\n\
         for (i = 0; i < 64; i++) {{\n\
           if (a[i] + {n} < best) {{\n\
             best = a[i] + {n};\n\
           }}\n\
         }}\n",
        seed = n + 1,
    )
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        metrics_addr: None,
        workers: 4,
        queue_capacity: 64,
        cache_capacity: 0,
        default_deadline_ms: None,
        cache_dir: None,
        cluster: Vec::new(),
        advertise: None,
        accept_mode: AcceptMode::Auto,
        ..ServerConfig::default()
    }
}

fn compile_request(source: String) -> Json {
    Json::obj([
        ("op", Json::from("compile")),
        ("source", Json::from(source)),
    ])
}

fn error_kind(response: &Json) -> Option<&str> {
    response.get("error")?.get("kind")?.as_str()
}

#[test]
fn malformed_input_gets_structured_errors_and_keeps_the_connection() {
    let handle = start(test_config()).expect("start daemon");
    let addr = handle.addr.to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // Every malformed line must produce a structured error response on
    // the same connection — never a panic, never a dropped socket.
    let cases: &[(&str, &str)] = &[
        ("{not json", "parse_error"),
        ("[1,2,3]", "bad_request"),
        ("\"just a string\"", "bad_request"),
        ("{}", "bad_request"),
        (r#"{"op":"launch_missiles"}"#, "bad_request"),
        (r#"{"op":"compile"}"#, "bad_request"),
        (
            r#"{"op":"compile","source":"kernel k;","hash":"0000000000000000"}"#,
            "bad_request",
        ),
        (
            r#"{"op":"run","source":"kernel k;","spec":"warp"}"#,
            "bad_request",
        ),
        (
            r#"{"op":"run","source":"kernel k;","engine":"jet"}"#,
            "bad_request",
        ),
        (r#"{"op":"run","hash":"zzzz"}"#, "bad_request"),
        (r#"{"op":"run","hash":"00ff"}"#, "unknown_hash"),
        (
            r#"{"op":"bench","source":"kernel k;","invocations":0}"#,
            "bad_request",
        ),
        (
            r#"{"op":"compile","source":"kernel k; for ("}"#,
            "source_error",
        ),
    ];
    for (line, expected_kind) in cases {
        let raw = client.request_raw(line).expect("connection stays up");
        let response = match flexvec_serve::json::parse(&raw) {
            Ok(v) => v,
            Err(e) => panic!("unparseable response {raw:?}: {e}"),
        };
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(false),
            "expected failure envelope for {line:?}, got {response}"
        );
        assert_eq!(
            error_kind(&response),
            Some(*expected_kind),
            "wrong error kind for {line:?}: {response}"
        );
    }

    // The connection is still good for a well-formed request.
    let response = client
        .request(&compile_request(kernel_source(7)))
        .expect("valid request after garbage");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert!(response.get("hash").and_then(Json::as_str).is_some());
    drop(client);
    handle.shutdown();
}

/// A unique per-test scratch directory under the system temp dir.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("flexvec-serve-it-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn warm_restart_serves_first_repeat_request_from_disk() {
    let dir = scratch_dir("warm");
    let cache_dir = Some(dir.to_string_lossy().into_owned());

    // First daemon lifetime: compile one kernel, which writes a
    // snapshot under --cache-dir, then shut down.
    let handle = start(ServerConfig {
        cache_dir: cache_dir.clone(),
        ..test_config()
    })
    .expect("start daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");
    let response = client
        .request(&compile_request(kernel_source(77)))
        .expect("compile");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let hash = response
        .get("hash")
        .and_then(Json::as_str)
        .expect("hash in response")
        .to_owned();
    assert_eq!(handle.engine().cache().compiles(), 1);
    drop(client);
    handle.shutdown();

    // Second lifetime, same cache dir, different port: the very first
    // request — by hash alone, which the fresh registry has never
    // seen — must be served from the disk snapshot without compiling.
    let handle = start(ServerConfig {
        cache_dir,
        ..test_config()
    })
    .expect("restart daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");
    let response = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("hash", Json::from(hash)),
        ]))
        .expect("hash-only run after restart");
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "restart run failed: {response}"
    );
    assert_eq!(
        response.get("cache_hit").and_then(Json::as_bool),
        Some(true),
        "first repeat request after restart must be a cache hit: {response}"
    );
    assert_eq!(
        handle.engine().cache().compiles(),
        0,
        "warm restart must not recompile"
    );
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cluster_forwards_misses_and_degrades_when_owner_dies() {
    // Reserve three distinct loopback ports, then release them for the
    // daemons to bind (tiny reuse race — fine for a test).
    let reserved: Vec<std::net::TcpListener> = (0..3)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    let members: Vec<String> = reserved
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect();
    drop(reserved);

    let mut handles: Vec<_> = members
        .iter()
        .map(|addr| {
            start(ServerConfig {
                addr: addr.clone(),
                cluster: members.clone(),
                advertise: Some(addr.clone()),
                ..test_config()
            })
            .expect("start cluster node")
        })
        .collect();

    // Compile a kernel via node 0 and learn which node owns its hash on
    // the ring (node 0 either served it locally or forwarded it).
    let mut client0 = Client::connect(&members[0]).expect("connect node 0");
    let response = client0
        .request(&compile_request(kernel_source(500)))
        .expect("compile via node 0");
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "cluster compile failed: {response}"
    );
    let hash_hex = response
        .get("hash")
        .and_then(Json::as_str)
        .expect("hash in response");
    let hash = u64::from_str_radix(hash_hex, 16).expect("hex hash");
    let owner = handles[0]
        .cluster()
        .expect("cluster mode")
        .owner_of(hash)
        .to_owned();
    let owner_idx = members
        .iter()
        .position(|m| *m == owner)
        .expect("owner in ring");
    // Pick a non-owner that is also not node 0: node 0 already routed
    // this kernel once, and a second forward would trip the hot-key
    // adoption heuristic, which is not what this test is about.
    let other_idx = (1..members.len())
        .find(|&i| i != owner_idx)
        .expect("non-owner");

    // A non-owner node must forward the request to the owner and relay
    // the owner's answer.
    let mut client = Client::connect(&members[other_idx]).expect("connect non-owner");
    let response = client
        .request(&compile_request(kernel_source(500)))
        .expect("compile via non-owner");
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "forwarded compile failed: {response}"
    );
    let forwards = handles[other_idx]
        .cluster()
        .expect("cluster mode")
        .counters
        .forwards
        .get();
    assert!(
        forwards >= 1,
        "non-owner never forwarded (forwards={forwards})"
    );

    // Kill the owner: the same request through the surviving node must
    // degrade to a local compile instead of failing.
    handles.remove(owner_idx).shutdown();
    let response = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(500))),
        ]))
        .expect("run with dead owner");
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "request must survive a dead owner: {response}"
    );
    let survivor_idx = if other_idx > owner_idx {
        other_idx - 1
    } else {
        other_idx
    };
    assert!(
        handles[survivor_idx]
            .cluster()
            .expect("cluster mode")
            .counters
            .forward_failures
            .get()
            >= 1,
        "dead-owner forward was never recorded as a failure"
    );

    drop(client0);
    drop(client);
    for handle in handles {
        handle.shutdown();
    }
}

#[test]
fn concurrent_identical_compiles_insert_exactly_once() {
    let handle = start(test_config()).expect("start daemon");
    let addr = handle.addr.to_string();
    let source = kernel_source(42);

    const CLIENTS: usize = 8;
    std::thread::scope(|scope| {
        for _ in 0..CLIENTS {
            let addr = addr.clone();
            let source = source.clone();
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let response = client
                    .request(&compile_request(source))
                    .expect("compile request");
                assert_eq!(
                    response.get("ok").and_then(Json::as_bool),
                    Some(true),
                    "compile failed: {response}"
                );
            });
        }
    });

    // However the eight requests interleaved across the worker pool,
    // the kernel was compiled and inserted exactly once; everyone else
    // was coalesced onto that compile or served from the cache.
    let cache = handle.engine().cache();
    assert_eq!(cache.compiles(), 1, "identical kernels must compile once");
    let stats = cache.stats();
    assert_eq!(stats.entries, 1);
    assert_eq!(stats.misses, 1, "only the first request may miss");
    assert_eq!(
        stats.hits + stats.coalesced,
        (CLIENTS as u64) - 1,
        "followers must hit or coalesce: {stats:?}"
    );
    handle.shutdown();
}

#[test]
fn deadline_expiry_mid_run_returns_deadline_error() {
    let handle = start(test_config()).expect("start daemon");
    let addr = handle.addr.to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // Enough invocations that the run cannot finish inside 1ms; the
    // cancel token is checked at chunk boundaries, so the request must
    // come back with a `deadline` error rather than running to
    // completion or wedging the worker.
    let response = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(3))),
            ("invocations", Json::from(100_000u64)),
            ("deadline_ms", Json::from(1u64)),
        ]))
        .expect("request");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&response), Some("deadline"), "got {response}");
    assert!(handle.metrics().deadline_expired.get() >= 1);

    // The worker that hit the deadline is healthy again.
    let response = client
        .request(&compile_request(kernel_source(4)))
        .expect("request after deadline");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    drop(client);
    handle.shutdown();
}

#[test]
fn full_queue_sheds_with_overloaded_error() {
    // One worker and a one-slot queue: a slow request occupies the
    // worker, one more waits in the queue, and everything past that
    // must be shed with a structured `overloaded` error.
    let config = ServerConfig {
        workers: 1,
        queue_capacity: 1,
        ..test_config()
    };
    let handle = start(config).expect("start daemon");
    let addr = handle.addr.to_string();

    let slow = |n: u64| {
        Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(n))),
            ("invocations", Json::from(50_000u64)),
            ("deadline_ms", Json::from(2_000u64)),
        ])
    };

    let shed = std::thread::scope(|scope| {
        // Occupy the single worker with one slow request (its deadline
        // bounds how long it holds the worker).
        let occupier = {
            let addr = addr.clone();
            let request = slow(0);
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                let _ = client.request(&request);
            })
        };
        std::thread::sleep(Duration::from_millis(300));

        // Ten concurrent requests against a busy worker and a one-slot
        // queue: at most one can be admitted; the rest must be shed
        // immediately with a structured `overloaded` error, not left
        // hanging.
        let floods: Vec<_> = (10..20u64)
            .map(|n| {
                let addr = addr.clone();
                let request = slow(n);
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let response = client.request(&request).expect("request");
                    error_kind(&response) == Some("overloaded")
                })
            })
            .collect();
        let shed = floods
            .into_iter()
            .map(|h| h.join().expect("flood thread"))
            .filter(|&was_shed| was_shed)
            .count() as u64;
        occupier.join().expect("occupier thread");
        shed
    });
    assert!(shed > 0, "no request was shed under a full queue");
    assert!(handle.metrics().requests_shed.get() >= shed);
    handle.shutdown();
}

#[test]
fn bounded_cache_evicts_under_parallel_submission_without_errors() {
    // Capacity 16 over a 16-way sharded cache = one entry per shard:
    // heavy parallel traffic over 64 distinct kernels must evict, and
    // every response must still be correct.
    let config = ServerConfig {
        cache_capacity: 16,
        ..test_config()
    };
    let handle = start(config).expect("start daemon");
    let addr = handle.addr.to_string();

    const CLIENTS: u64 = 8;
    const PER_CLIENT: u64 = 24;
    std::thread::scope(|scope| {
        for c in 0..CLIENTS {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut client = Client::connect(&addr).expect("connect");
                for i in 0..PER_CLIENT {
                    // Overlapping id ranges across clients: some
                    // re-request kernels another client already evicted.
                    let n = (c * 11 + i) % 64;
                    let response = client
                        .request(&compile_request(kernel_source(n)))
                        .expect("compile request");
                    assert_eq!(
                        response.get("ok").and_then(Json::as_bool),
                        Some(true),
                        "compile under eviction pressure failed: {response}"
                    );
                }
            });
        }
    });

    let stats = handle.engine().cache().stats();
    assert!(stats.evictions > 0, "expected evictions: {stats:?}");
    assert!(
        stats.entries <= 16,
        "resident entries exceed capacity: {stats:?}"
    );
    // Every request was answered: hits + misses covers the traffic
    // (coalesced followers are counted separately).
    assert!(stats.hits + stats.misses + stats.coalesced >= CLIENTS * PER_CLIENT);
    handle.shutdown();
}

#[test]
fn run_round_trip_reports_verified_results() {
    let handle = start(test_config()).expect("start daemon");
    let addr = handle.addr.to_string();
    let mut client = Client::connect(&addr).expect("connect");

    let response = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(9))),
            ("invocations", Json::from(2u64)),
        ]))
        .expect("run request");
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "run failed: {response}"
    );
    // A successful run means the vector result was verified against
    // the scalar baseline; the live-outs come back on the wire.
    assert!(
        response
            .get("live_outs")
            .and_then(|l| l.get("best"))
            .is_some(),
        "run response must carry live-outs: {response}"
    );

    // A second identical run hits the compile cache.
    let response = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(9))),
        ]))
        .expect("second run");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(
        response.get("cache_hit").and_then(Json::as_bool),
        Some(true)
    );
    drop(client);
    handle.shutdown();
}

/// Drives one daemon through the oversized-line contract: the reply is
/// a structured `line_too_long` error and the connection then closes.
fn assert_line_too_long_contract(mode: AcceptMode) {
    use std::io::{BufRead, BufReader, Read, Write};

    let mut config = test_config();
    config.accept_mode = mode;
    let handle = start(config).expect("start daemon");
    let mut stream = std::net::TcpStream::connect(handle.addr).expect("connect");

    // One byte past the limit, no newline in sight. Written in chunks
    // and then the writer goes quiet, so the reply cannot be lost to a
    // reset racing further writes.
    let limit = 16 * 1024 * 1024;
    let chunk = vec![b'x'; 64 * 1024];
    let mut sent = 0usize;
    while sent < limit + 1 {
        let n = chunk.len().min(limit + 1 - sent);
        stream.write_all(&chunk[..n]).expect("write oversized line");
        sent += n;
    }

    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read reply");
    let response = flexvec_serve::json::parse(&line).expect("structured reply");
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(false),
        "{mode:?}: {response}"
    );
    assert_eq!(
        error_kind(&response),
        Some("line_too_long"),
        "{mode:?}: {response}"
    );

    // After the reply the daemon closes: the framing is lost, so the
    // connection cannot be reused.
    let mut rest = Vec::new();
    let n = reader.read_to_end(&mut rest).expect("read to close");
    assert_eq!(n, 0, "{mode:?}: expected EOF after line_too_long reply");
    handle.shutdown();
}

#[test]
fn oversized_line_gets_structured_reply_then_close_reactor() {
    assert_line_too_long_contract(AcceptMode::Auto);
}

#[test]
fn oversized_line_gets_structured_reply_then_close_threads() {
    assert_line_too_long_contract(AcceptMode::Threads);
}

#[test]
fn per_request_vector_length_round_trips() {
    let handle = start(test_config()).expect("start daemon");
    let addr = handle.addr.to_string();
    let mut client = Client::connect(&addr).expect("connect");

    // First run at the default width, then at vl=32: the second
    // request reuses the same width-independent compile cache entry
    // and reports the width it actually ran at.
    let default_run = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(21))),
        ]))
        .expect("default-width run");
    assert_eq!(default_run.get("ok").and_then(Json::as_bool), Some(true));
    assert_eq!(default_run.get("vl").and_then(Json::as_u64), Some(16));

    let wide_run = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(21))),
            ("vl", Json::from(32u64)),
        ]))
        .expect("vl=32 run");
    assert_eq!(
        wide_run.get("ok").and_then(Json::as_bool),
        Some(true),
        "{wide_run}"
    );
    assert_eq!(wide_run.get("vl").and_then(Json::as_u64), Some(32));
    assert_eq!(
        wide_run.get("cache_hit").and_then(Json::as_bool),
        Some(true),
        "one compile serves both widths"
    );
    assert_eq!(
        default_run
            .get("live_outs")
            .and_then(|l| l.get("best"))
            .and_then(Json::as_i64),
        wide_run
            .get("live_outs")
            .and_then(|l| l.get("best"))
            .and_then(Json::as_i64),
        "widths agree on the result"
    );

    // An unsupported width is refused cleanly with the request intact.
    let bad = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(21))),
            ("vl", Json::from(24u64)),
        ]))
        .expect("bad-width reply");
    assert_eq!(bad.get("ok").and_then(Json::as_bool), Some(false));
    assert_eq!(error_kind(&bad), Some("bad_request"));
    drop(client);
    handle.shutdown();
}
