//! End-to-end replication tests over real TCP rings.
//!
//! Two legs: a **warm join** (a node joining a warmed ring serves its
//! working set from peer snapshots, zero recompiles) and the
//! **validation-before-trust** guarantee (a bit-flipped snapshot shipped
//! by a peer is rejected by the checksum gate and recompiled locally,
//! and the recompiled kernel's execution is bit-identical — µop trace,
//! statistics, live-outs, memory — to a from-scratch local compile).

use std::time::{Duration, Instant};

use flexvec::SpecRequest;
use flexvec_front::{parse_str, CompileCache, CompiledKernel, ParsedKernel};
use flexvec_mem::AddressSpace;
use flexvec_serve::{start, Client, Json, ServerConfig};
use flexvec_vm::{run_vector_precompiled, Bindings, Uop, VecSink, VectorStats};

/// Same conditional-update kernel family as the other serve suites.
fn kernel_source(n: u64) -> String {
    format!(
        "kernel k{n};\n\
         var i = 0;\n\
         var best = 9223372036854775807;\n\
         array a[64] = seed {seed};\n\
         live_out best;\n\
         for (i = 0; i < 64; i++) {{\n\
           if (a[i] + {n} < best) {{\n\
             best = a[i] + {n};\n\
           }}\n\
         }}\n",
        seed = n + 1,
    )
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("flexvec-repl-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Reserves a concrete port so cluster member lists can be written
/// before the daemons start. (Bind-then-drop; the tiny reuse window is
/// the standard trade for static membership in tests.)
fn free_addr() -> String {
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port");
    listener.local_addr().expect("local addr").to_string()
}

fn node_config(addr: &str, members: &[String], dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        addr: addr.to_owned(),
        workers: 4,
        queue_capacity: 64,
        cache_capacity: 0,
        cache_dir: Some(dir.to_string_lossy().into_owned()),
        cluster: members.to_vec(),
        advertise: Some(addr.to_owned()),
        gossip_interval_ms: 50,
        ..ServerConfig::default()
    }
}

fn run_request(source: String) -> Json {
    Json::obj([("op", Json::from("run")), ("source", Json::from(source))])
}

fn await_synced(handle: &flexvec_serve::ServerHandle) {
    let repl = handle.replication().expect("replication enabled");
    let deadline = Instant::now() + Duration::from_secs(10);
    while !repl.synced() {
        assert!(
            Instant::now() < deadline,
            "anti-entropy sync never finished"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// One traced vector execution of a compiled kernel: the comparable
/// observables for the bit-identical assertion.
fn traced_run(
    parsed: &ParsedKernel,
    kernel: &CompiledKernel,
) -> (Vec<Uop>, VectorStats, Vec<i64>, Vec<Vec<i64>>) {
    let plan = kernel.plan.as_ref().expect("kernel vectorizes");
    let mut mem = AddressSpace::new();
    let ids: Vec<_> = parsed
        .materialize_arrays()
        .iter()
        .enumerate()
        .map(|(i, data)| mem.alloc_from(&format!("a{i}"), data))
        .collect();
    let mut sink = VecSink::default();
    let (result, stats) = run_vector_precompiled(
        &parsed.program,
        &plan.vectorized.vprog,
        &plan.compiled,
        &mut mem,
        Bindings::new(ids.clone()),
        &mut sink,
    )
    .expect("vector run");
    let live_outs = parsed
        .program
        .live_out
        .iter()
        .map(|v| result.var(*v))
        .collect();
    let memory = ids.iter().map(|id| mem.snapshot_array(*id)).collect();
    (sink.uops, stats, live_outs, memory)
}

/// A node joining a warmed ring serves the whole working set without a
/// single local compile: its owned slice arrives via anti-entropy sync,
/// the rest via lazy pulls on first touch.
#[test]
fn joining_node_serves_warm_with_zero_recompiles() {
    const KERNELS: u64 = 6;
    let addr_a = free_addr();
    let addr_b = free_addr();
    let members = vec![addr_a.clone(), addr_b.clone()];
    let dir_a = scratch_dir("warm-a");
    let dir_b = scratch_dir("warm-b");

    // Warm node A with the working set (B is not up yet; A's gossip to
    // it just trips a breaker, which must not hurt anything).
    let node_a = start(node_config(&addr_a, &members, &dir_a)).expect("start node A");
    let mut client_a = Client::connect(&addr_a).expect("connect A");
    for n in 0..KERNELS {
        let response = client_a
            .request(&run_request(kernel_source(n)))
            .expect("warm A");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "warming A with kernel {n} failed: {response}"
        );
    }

    // Join node B: anti-entropy sync pulls its owned slice before it
    // is marked synced; everything else lazy-pulls on first touch.
    let node_b = start(node_config(&addr_b, &members, &dir_b)).expect("start node B");
    await_synced(&node_b);

    let mut client_b = Client::connect(&addr_b).expect("connect B");
    for n in 0..KERNELS {
        let response = client_b
            .request(&run_request(kernel_source(n)))
            .expect("warm-join request");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "kernel {n} on the joined node failed: {response}"
        );
        let cache = response.get("cache").and_then(Json::as_str).unwrap_or("?");
        assert!(
            cache == "hit" || cache == "pulled" || cache == "restored",
            "kernel {n} was not served warm (cache={cache}): {response}"
        );
    }

    assert_eq!(
        node_b.engine().cache().compiles(),
        0,
        "the joining node must not compile anything"
    );
    let store_b = node_b.engine().snapshots().expect("store B");
    let pulled = store_b
        .counters
        .pulled
        .load(std::sync::atomic::Ordering::Relaxed);
    assert_eq!(
        pulled, KERNELS,
        "every kernel must arrive via exactly one validated pull"
    );

    drop(client_a);
    drop(client_b);
    node_b.shutdown();
    node_a.shutdown();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// A bit-flipped snapshot shipped by a peer is rejected by the checksum
/// gate (never executed, never persisted), the kernel recompiles
/// locally, and the recompiled kernel is bit-identical in execution to
/// a from-scratch compile.
#[test]
fn tampered_pulled_snapshot_is_rejected_and_recompiled_bit_identically() {
    const N: u64 = 77;
    let addr_a = free_addr();
    let addr_b = free_addr();
    let members = vec![addr_a.clone(), addr_b.clone()];
    let dir_a = scratch_dir("tamper-a");
    let dir_b = scratch_dir("tamper-b");

    // Warm A, then flip one payload bit in its on-disk snapshot
    // *without* resealing the checksum — exactly what ships to B.
    let node_a = start(node_config(&addr_a, &members, &dir_a)).expect("start node A");
    let mut client_a = Client::connect(&addr_a).expect("connect A");
    let response = client_a
        .request(&run_request(kernel_source(N)))
        .expect("warm A");
    assert_eq!(response.get("ok").and_then(Json::as_bool), Some(true));
    let hash = response
        .get("hash")
        .and_then(Json::as_str)
        .expect("hash")
        .to_owned();
    let path = dir_a.join(format!("{hash}.ff.fvc"));
    let mut bytes = std::fs::read(&path).expect("read A's snapshot");
    let mid = bytes.len() - 16; // payload region, ahead of the checksum
    bytes[mid] ^= 0x20;
    std::fs::write(&path, bytes).expect("tamper A's snapshot");

    let node_b = start(node_config(&addr_b, &members, &dir_b)).expect("start node B");
    await_synced(&node_b);

    // B sees A's manifest claim, pulls the tampered bytes, rejects
    // them at the checksum gate, and compiles from source instead.
    let mut client_b = Client::connect(&addr_b).expect("connect B");
    let response = client_b
        .request(&run_request(kernel_source(N)))
        .expect("request on B");
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "B must recover by compiling locally: {response}"
    );
    assert_eq!(
        response.get("cache").and_then(Json::as_str),
        Some("compiled"),
        "the tampered pull must not be served: {response}"
    );
    assert_eq!(node_b.engine().cache().compiles(), 1);

    let store_b = node_b.engine().snapshots().expect("store B");
    assert!(
        store_b
            .counters
            .reject_count(flexvec_serve::RejectReason::Checksum)
            >= 1,
        "the checksum gate must be the one rejecting a bit flip"
    );
    let repl_b = node_b.replication().expect("replication on B");
    assert!(
        repl_b.counters.pull_failures.get() >= 1,
        "the failed pull must be counted"
    );

    // Bit-identical recovery: B's recompiled kernel must execute
    // exactly like a from-scratch local compile — µop trace,
    // statistics, live-outs, and final memory all equal.
    let parsed = parse_str("<test>", &kernel_source(N)).expect("kernel parses");
    let (recompiled, hit) = node_b
        .engine()
        .cache()
        .get_or_compile(&parsed.program, SpecRequest::Auto);
    assert!(hit, "B's recompiled kernel is resident");
    let fresh_cache = CompileCache::new();
    let (fresh, _) = fresh_cache.get_or_compile(&parsed.program, SpecRequest::Auto);

    let (uops_a, stats_a, live_a, mem_a) = traced_run(&parsed, &recompiled);
    let (uops_b, stats_b, live_b, mem_b) = traced_run(&parsed, &fresh);
    assert_eq!(live_a, live_b, "live-outs diverged after recompile");
    assert_eq!(mem_a, mem_b, "final memory diverged after recompile");
    assert_eq!(stats_a, stats_b, "engine statistics diverged");
    assert_eq!(
        uops_a, uops_b,
        "µop traces diverged: the recompiled kernel is not the local compile"
    );

    drop(client_a);
    drop(client_b);
    node_b.shutdown();
    node_a.shutdown();
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

/// The snapshot store's byte bound holds under replication: a bounded
/// store sweeps oldest-generation snapshots on write and counts the
/// evictions, so a pull storm cannot fill the disk.
#[test]
fn bounded_store_sweeps_oldest_snapshots_on_write() {
    let dir = scratch_dir("bound");
    let addr = free_addr();
    let config = ServerConfig {
        cache_dir_max_bytes: Some(2500), // a snapshot of this family is ~1.2 KiB: two fit
        advertise: None,
        ..node_config(&addr, &[], &dir)
    };
    let handle = start(config).expect("start daemon");
    let mut client = Client::connect(&addr).expect("connect");
    for n in 0..6 {
        let response = client
            .request(&Json::obj([
                ("op", Json::from("compile")),
                ("source", Json::from(kernel_source(n))),
            ]))
            .expect("compile");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "compile {n} failed: {response}"
        );
    }
    let store = handle.engine().snapshots().expect("store");
    let evicted = store
        .counters
        .evicted
        .load(std::sync::atomic::Ordering::Relaxed);
    assert!(evicted >= 1, "the byte bound never evicted anything");
    let on_disk: u64 = std::fs::read_dir(&dir)
        .expect("read dir")
        .flatten()
        .filter(|e| e.file_name().to_string_lossy().ends_with(".fvc"))
        .map(|e| e.metadata().map_or(0, |m| m.len()))
        .sum();
    assert!(
        on_disk <= 2500,
        "store exceeded its byte bound: {on_disk} bytes on disk"
    );
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
