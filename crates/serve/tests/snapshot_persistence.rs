//! Persistence edge cases for the on-disk compile cache: truncated,
//! stale-epoch, and hash-tampered snapshots must all be rejected and
//! recompiled cleanly — never panic, never execute stale bytecode —
//! and an evicted entry must come back from disk without recompiling.

use flexvec_serve::{start, Client, Json, ServerConfig};

/// Same conditional-update kernel family as the main integration suite.
fn kernel_source(n: u64) -> String {
    format!(
        "kernel k{n};\n\
         var i = 0;\n\
         var best = 9223372036854775807;\n\
         array a[64] = seed {seed};\n\
         live_out best;\n\
         for (i = 0; i < 64; i++) {{\n\
           if (a[i] + {n} < best) {{\n\
             best = a[i] + {n};\n\
           }}\n\
         }}\n",
        seed = n + 1,
    )
}

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir =
        std::env::temp_dir().join(format!("flexvec-snap-it-{}-{tag}-{n}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn config_with(dir: &std::path::Path) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        metrics_addr: None,
        workers: 4,
        queue_capacity: 64,
        cache_capacity: 0,
        default_deadline_ms: None,
        cache_dir: Some(dir.to_string_lossy().into_owned()),
        cluster: Vec::new(),
        advertise: None,
        accept_mode: flexvec_serve::AcceptMode::Auto,
        ..ServerConfig::default()
    }
}

/// Compiles `kernel_source(n)` on a short-lived daemon so a snapshot
/// lands in `dir`; returns the kernel's content hash (hex).
fn seed_snapshot(dir: &std::path::Path, n: u64) -> String {
    let handle = start(config_with(dir)).expect("start daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");
    let response = client
        .request(&Json::obj([
            ("op", Json::from("compile")),
            ("source", Json::from(kernel_source(n))),
        ]))
        .expect("compile");
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "seed compile failed: {response}"
    );
    let hash = response
        .get("hash")
        .and_then(Json::as_str)
        .expect("hash")
        .to_owned();
    drop(client);
    handle.shutdown();
    let path = dir.join(format!("{hash}.ff.fvc"));
    assert!(
        path.is_file(),
        "snapshot {} was not written",
        path.display()
    );
    hash
}

/// Mirrors the store's FNV-1a so tests can re-seal a tampered file:
/// corruption the checksum *would* catch is a separate test; these
/// helpers forge a valid checksum to reach the deeper gates.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Applies `mutate` to the snapshot body and rewrites the trailing
/// checksum so only the targeted gate can reject the file.
fn tamper_and_reseal(path: &std::path::Path, mutate: impl FnOnce(&mut Vec<u8>)) {
    let mut bytes = std::fs::read(path).expect("read snapshot");
    assert!(bytes.len() > 8);
    bytes.truncate(bytes.len() - 8); // drop old checksum
    mutate(&mut bytes);
    let checksum = fnv1a(&bytes);
    bytes.extend_from_slice(&checksum.to_le_bytes());
    std::fs::write(path, bytes).expect("rewrite snapshot");
}

/// Restarts on `dir` and asserts the kernel is recompiled from source
/// (not restored), the daemon stays healthy, and the store counted a
/// rejection.
fn assert_recompiles_cleanly(dir: &std::path::Path, n: u64, hash: &str) {
    let handle = start(config_with(dir)).expect("restart daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");

    // Hash-only resolution must fail closed: a bad snapshot is not a
    // source of truth for an unknown hash.
    let response = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("hash", Json::from(hash.to_owned())),
        ]))
        .expect("hash-only request");
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(false),
        "tampered snapshot must not resolve a hash-only request: {response}"
    );

    // With source in hand the kernel recompiles and runs fine.
    let response = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(n))),
        ]))
        .expect("run with source");
    assert_eq!(
        response.get("ok").and_then(Json::as_bool),
        Some(true),
        "recompile after rejection failed: {response}"
    );
    assert_eq!(
        response.get("cache_hit").and_then(Json::as_bool),
        Some(false),
        "a rejected snapshot must not count as a cache hit: {response}"
    );
    assert_eq!(handle.engine().cache().compiles(), 1);
    let store = handle.engine().snapshots().expect("snapshot store");
    assert!(
        store
            .counters
            .rejected
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "rejection was not counted"
    );
    drop(client);
    handle.shutdown();
}

#[test]
fn truncated_snapshot_is_rejected_and_recompiled() {
    let dir = scratch_dir("trunc");
    let hash = seed_snapshot(&dir, 301);
    let path = dir.join(format!("{hash}.ff.fvc"));
    let bytes = std::fs::read(&path).expect("read snapshot");
    std::fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
    assert_recompiles_cleanly(&dir, 301, &hash);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn wrong_format_epoch_is_rejected_even_with_valid_checksum() {
    let dir = scratch_dir("epoch");
    let hash = seed_snapshot(&dir, 302);
    let path = dir.join(format!("{hash}.ff.fvc"));
    // Epoch word sits right after the 8-byte magic; reseal so the
    // checksum gate cannot be the one rejecting it.
    tamper_and_reseal(&path, |bytes| {
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
    });
    assert_recompiles_cleanly(&dir, 302, &hash);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn header_hash_mismatch_is_rejected_even_with_valid_checksum() {
    let dir = scratch_dir("hash");
    let hash = seed_snapshot(&dir, 303);
    let path = dir.join(format!("{hash}.ff.fvc"));
    // The header program-hash lives after magic(8) + epoch(4) +
    // git-len(4) + git bytes; flip it and reseal the checksum so only
    // the hash gate can reject.
    tamper_and_reseal(&path, |bytes| {
        let git_len = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        let at = 16 + git_len;
        let stored = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        bytes[at..at + 8].copy_from_slice(&(stored ^ 1).to_le_bytes());
    });
    assert_recompiles_cleanly(&dir, 303, &hash);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupted_payload_fails_checksum_and_recompiles() {
    let dir = scratch_dir("bitrot");
    let hash = seed_snapshot(&dir, 304);
    let path = dir.join(format!("{hash}.ff.fvc"));
    // Flip one payload byte *without* resealing: the checksum gate
    // must catch plain bit rot before any parsing happens.
    let mut bytes = std::fs::read(&path).expect("read snapshot");
    let mid = bytes.len() - 16;
    bytes[mid] ^= 0x40;
    std::fs::write(&path, bytes).expect("corrupt");
    assert_recompiles_cleanly(&dir, 304, &hash);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn evicted_entry_reloads_from_disk_without_recompiling() {
    // Capacity 16 over the 16-way segmented-LRU ShardedCache = one
    // resident entry per shard; 64 distinct kernels force evictions.
    let dir = scratch_dir("evict");
    let config = ServerConfig {
        cache_capacity: 16,
        ..config_with(&dir)
    };
    let handle = start(config).expect("start daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");

    const KERNELS: u64 = 64;
    for n in 0..KERNELS {
        let response = client
            .request(&Json::obj([
                ("op", Json::from("compile")),
                ("source", Json::from(kernel_source(n))),
            ]))
            .expect("compile");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "compile {n} failed: {response}"
        );
    }
    let stats = handle.engine().cache().stats();
    assert!(stats.evictions > 0, "expected evictions: {stats:?}");
    let compiles_before = handle.engine().cache().compiles();

    // Re-request every kernel: the evicted ones must be restored from
    // their snapshots, not recompiled, and every answer must be a hit.
    for n in 0..KERNELS {
        let response = client
            .request(&Json::obj([
                ("op", Json::from("run")),
                ("source", Json::from(kernel_source(n))),
            ]))
            .expect("re-run");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "re-run {n} failed: {response}"
        );
        assert_eq!(
            response.get("cache_hit").and_then(Json::as_bool),
            Some(true),
            "evicted kernel {n} was not restored from disk: {response}"
        );
    }
    assert_eq!(
        handle.engine().cache().compiles(),
        compiles_before,
        "eviction-then-reload must be served from snapshots"
    );
    let store = handle.engine().snapshots().expect("snapshot store");
    assert!(
        store
            .counters
            .restored
            .load(std::sync::atomic::Ordering::Relaxed)
            >= 1,
        "no snapshot restore was counted"
    );
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}
