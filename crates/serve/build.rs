//! Embeds the git revision into the build so `flexvecc --version`, the
//! daemon's startup line, and the `stats` response all report the same
//! build identity. Falls back to `unknown` outside a git checkout (e.g.
//! a source tarball) — the build must never fail over version stamping.

use std::process::Command;

fn main() {
    let hash = Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_owned());
    let dirty = Command::new("git")
        .args(["status", "--porcelain"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| !o.stdout.is_empty())
        .unwrap_or(false);
    println!(
        "cargo:rustc-env=FLEXVEC_GIT_HASH={hash}{}",
        if dirty { "-dirty" } else { "" }
    );
    // Re-stamp when the checked-out commit moves.
    println!("cargo:rerun-if-changed=../../.git/HEAD");
}
