//! Speculation-counter crosscheck across all three execution tiers.
//!
//! The serve autotuner steers on [`ThroughputReport`]'s fault, conflict
//! and partition counters, and the daemon may promote a kernel from the
//! tree walker through bytecode to the native JIT *while the profile is
//! accumulating*. A tier that under- or over-reported `ff_fallbacks`,
//! `rtm_aborts` or `vpl_iterations` would silently skew the tuner's
//! decisions after a promotion, so every tier must report bit-identical
//! counts for the same program and input — asserted here for one shape
//! per counter family.

use flexvec::{vectorize, SpecRequest};
use flexvec_ir::build::*;
use flexvec_ir::{Program, ProgramBuilder};
use flexvec_mem::{AddressSpace, PageCacheStats};
use flexvec_profiler::ThroughputReport;
use flexvec_vm::{run_vector_with_engine, Bindings, Engine, VecSink, VectorStats};
use std::time::Duration;

const ENGINES: [Engine; 3] = [Engine::TreeWalking, Engine::Compiled, Engine::Native];

/// Conditional-update loop whose guarded gather goes wild on
/// stale-guard lanes: in every even ("dirty") chunk, lane 0 lowers
/// `best` so the remaining lanes' guards are true at chunk entry but
/// false in sequential semantics, and their gather index points past
/// the 64-entry table's guard page. Under FF the clipped gather falls
/// back to scalar for the chunk; under RTM the enclosing transaction
/// aborts and reruns as a scalar tile. Odd chunks carry really-false
/// guards and stay clean, so one run mixes both outcomes.
fn wild_gather_program() -> (Program, Vec<Vec<i64>>) {
    let mut b = ProgramBuilder::new("wild_gather");
    let i = b.var("i", 0);
    let t = b.var("t", 0);
    let best = b.var("best", 1000);
    let key = b.array("key");
    let idx = b.array("idx");
    let table = b.array("table");
    b.live_out(best);
    let body = vec![if_(
        lt(ld(key, var(i)), var(best)),
        vec![
            assign(t, add(ld(key, var(i)), ld(table, ld(idx, var(i))))),
            if_(lt(var(t), var(best)), vec![assign(best, var(t))]),
        ],
    )];
    let program = b.build_loop(i, c(0), c(96), body).unwrap();
    // Dirty chunks c = 0, 2, 4: lane 0's key (50 - c) beats the entry
    // `best` and becomes the new one (table[2] = 0), and the other 15
    // lanes share that key — stale-true at entry, really false after
    // lane 0 — with a wild index (600 > the 512-element page of the
    // 64-entry table). Clean chunks: key 2000 is really false, so the
    // guarded gather never issues. Scalar only ever touches table[2].
    let mut key_arr = vec![2000i64; 96];
    let mut idx_arr = vec![600i64; 96];
    for chunk in [0usize, 2, 4] {
        let base = chunk * 16;
        for lane in 0..16 {
            key_arr[base + lane] = 50 - chunk as i64;
        }
        idx_arr[base] = 2;
    }
    let table_arr = vec![0i64; 64];
    (program, vec![key_arr, idx_arr, table_arr])
}

/// Indirect read-modify-write where the input pins every lane of a
/// chunk to the same bin: the VPL must partition (serialize) the chunk,
/// which is what `vpl_iterations` / `max_partitions` count.
fn conflict_program() -> (Program, Vec<Vec<i64>>) {
    let mut b = ProgramBuilder::new("conflict");
    let i = b.var("i", 0);
    let k = b.var("k", 0);
    let data = b.array("data");
    let bins = b.array("bins");
    b.live_out(k);
    let body = vec![
        assign(k, band(ld(data, band(var(i), c(63))), c(63))),
        store(bins, var(k), add(ld(bins, var(k)), c(1))),
    ];
    let program = b.build_loop(i, c(0), c(48), body).unwrap();
    // All-equal indices: every lane of every chunk conflicts.
    (program, vec![vec![5i64; 64], vec![0i64; 64]])
}

fn run_all_engines(
    program: &Program,
    arrays: &[Vec<i64>],
    spec: SpecRequest,
) -> Vec<(i64, Vec<Vec<i64>>, VectorStats, ThroughputReport)> {
    let vectorized = vectorize(program, spec).expect("vectorizes");
    ENGINES
        .iter()
        .map(|&engine| {
            let mut mem = AddressSpace::new();
            let ids: Vec<_> = arrays
                .iter()
                .enumerate()
                .map(|(n, d)| mem.alloc_from(&format!("a{n}"), d))
                .collect();
            let mut sink = VecSink::default();
            let (res, stats) = run_vector_with_engine(
                program,
                &vectorized.vprog,
                &mut mem,
                Bindings::new(ids.clone()),
                &mut sink,
                engine,
            )
            .expect("vector execution");
            let mut report = ThroughputReport::new(
                format!("{engine:?}"),
                Duration::from_micros(100),
                0,
                0,
                PageCacheStats::default(),
            );
            report.add_stats(&stats);
            let snapshots = ids.iter().map(|id| mem.snapshot_array(*id)).collect();
            (res.var(program.live_out[0]), snapshots, stats, report)
        })
        .collect()
}

/// Asserts that every engine produced the same live-out, memory, raw
/// stats, and — the part the autotuner consumes — the same report
/// counters and derived rates as the tree-walking reference.
fn assert_tiers_agree(runs: &[(i64, Vec<Vec<i64>>, VectorStats, ThroughputReport)]) {
    let (ref_out, ref_mem, ref_stats, ref_report) = &runs[0];
    for (engine, (out, mem, stats, report)) in ENGINES.iter().zip(runs).skip(1) {
        assert_eq!(out, ref_out, "{engine:?}: live-out differs");
        assert_eq!(mem, ref_mem, "{engine:?}: memory differs");
        assert_eq!(stats, ref_stats, "{engine:?}: VectorStats differ");
        assert_eq!(
            (
                report.chunks,
                report.vpl_iterations,
                report.max_partitions,
                report.ff_fallbacks,
                report.rtm_commits,
                report.rtm_aborts,
            ),
            (
                ref_report.chunks,
                ref_report.vpl_iterations,
                ref_report.max_partitions,
                ref_report.ff_fallbacks,
                ref_report.rtm_commits,
                ref_report.rtm_aborts,
            ),
            "{engine:?}: ThroughputReport counters differ"
        );
        assert_eq!(
            (
                report.ff_fallback_rate().to_bits(),
                report.rtm_abort_rate().to_bits(),
                report.partitions_per_chunk().to_bits(),
            ),
            (
                ref_report.ff_fallback_rate().to_bits(),
                ref_report.rtm_abort_rate().to_bits(),
                ref_report.partitions_per_chunk().to_bits(),
            ),
            "{engine:?}: derived autotune rates differ"
        );
    }
}

#[test]
fn ff_fallback_counts_agree_across_tiers() {
    let (program, arrays) = wild_gather_program();
    let runs = run_all_engines(&program, &arrays, SpecRequest::Auto);
    assert_tiers_agree(&runs);
    let stats = &runs[0].2;
    assert_eq!(
        stats.ff_fallbacks, 3,
        "each wild-key chunk must fall back: {stats:?}"
    );
    let rate = runs[0].3.ff_fallback_rate();
    assert!(
        rate > 0.0 && rate < 1.0,
        "mixed clean/fallback rate: {rate}"
    );
}

#[test]
fn rtm_commit_and_abort_counts_agree_across_tiers() {
    let (program, arrays) = wild_gather_program();
    let runs = run_all_engines(&program, &arrays, SpecRequest::Rtm { tile: 16 });
    assert_tiers_agree(&runs);
    let stats = &runs[0].2;
    assert_eq!(stats.rtm_commits, 3, "clean tiles must commit: {stats:?}");
    assert_eq!(
        stats.rtm_aborts, 3,
        "each wild-key tile must abort: {stats:?}"
    );
    let rate = runs[0].3.rtm_abort_rate();
    assert!(rate > 0.0 && rate < 1.0, "mixed commit/abort rate: {rate}");
}

#[test]
fn partition_counts_agree_across_tiers() {
    let (program, arrays) = conflict_program();
    let runs = run_all_engines(&program, &arrays, SpecRequest::Auto);
    assert_tiers_agree(&runs);
    let stats = &runs[0].2;
    assert!(
        stats.max_partitions > 1,
        "all-equal bins must serialize the window: {stats:?}"
    );
    assert!(runs[0].3.partitions_per_chunk() > 1.0);
}
