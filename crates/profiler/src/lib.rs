//! # flexvec-profiler
//!
//! The profile-guided loop selection machinery of the paper's Section 5:
//! "FlexVec uses a profile guided strategy to select hotloops to
//! vectorize. It uses a Pin-based profiling tool ... \[that\] collects trip
//! counts and the effective vector length for the candidate loops."
//!
//! [`profile_loop`] interprets a candidate loop scalar-ly, counting per
//! invocation its trip count and the dynamic occurrences of the relaxed
//! dependencies (conditional updates firing, memory conflicts within a
//! vector window, early exits). The **effective vector length** is "the
//! ratio of the average trip count to the average number of times a cross
//! iteration dependency is detected".
//!
//! [`select`] applies the paper's acceptance thresholds: minimum trip
//! count 16, minimum effective vector length 6, minimum coverage ≈5%, and
//! the cost-model rule rejecting loops whose vector memory-to-compute
//! ratio exceeds 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::Duration;

use flexvec::{analyze, InstMix, PatternInstance, Verdict};
use flexvec_ir::{Expr, Program};
use flexvec_isa::vlen;
use flexvec_mem::{AddressSpace, PageCacheStats};
use flexvec_vm::{
    Bindings, CountingSink, ExecError, ScalarMachine, StepOutcome, TraceSink, VectorStats,
};

/// Execution-engine throughput counters for one measured run: how fast
/// the VM itself chewed through the workload (chunks and µops per wall
/// second) and how well the address-space inline page cache served it.
/// This measures the *reproduction pipeline*, not simulated cycles —
/// it's the metric the compiled execution engine is tuned against.
#[derive(Clone, Debug, PartialEq)]
pub struct ThroughputReport {
    /// What ran (an engine name, e.g. `"compiled"` or `"tree-walking"`).
    pub label: String,
    /// Wall-clock time of the vector execution.
    pub wall: Duration,
    /// Vector chunks started, over all invocations.
    pub chunks: u64,
    /// µops emitted to the sink, over all invocations.
    pub uops: u64,
    /// Inline page-cache translation counters for the run.
    pub page_cache: PageCacheStats,
    /// VPL iterations (partitions) executed, over all invocations.
    pub vpl_iterations: u64,
    /// Largest partition count observed in one chunk.
    pub max_partitions: u64,
    /// Chunks that fell back to scalar after a clipped first-faulting
    /// load (the FF speculation cost signal).
    pub ff_fallbacks: u64,
    /// RTM transactions committed.
    pub rtm_commits: u64,
    /// RTM transactions aborted (the RTM speculation cost signal).
    pub rtm_aborts: u64,
}

impl ThroughputReport {
    /// Builds a report from a run's accumulated statistics.
    pub fn new(
        label: impl Into<String>,
        wall: Duration,
        chunks: u64,
        uops: u64,
        page_cache: PageCacheStats,
    ) -> Self {
        ThroughputReport {
            label: label.into(),
            wall,
            chunks,
            uops,
            page_cache,
            vpl_iterations: 0,
            max_partitions: 0,
            ff_fallbacks: 0,
            rtm_commits: 0,
            rtm_aborts: 0,
        }
    }

    /// Accumulates one invocation's [`VectorStats`]: chunk count plus
    /// the speculation-profile counters (partitions, FF fallbacks, RTM
    /// commits/aborts) every execution tier reports identically —
    /// they're what the serving layer's autotuner consumes.
    pub fn add_stats(&mut self, stats: &VectorStats) {
        self.chunks += stats.chunks;
        self.vpl_iterations += stats.vpl_iterations;
        self.max_partitions = self.max_partitions.max(stats.max_partitions);
        self.ff_fallbacks += stats.ff_fallbacks;
        self.rtm_commits += stats.rtm_commits;
        self.rtm_aborts += stats.rtm_aborts;
    }

    /// FF scalar fallbacks per started chunk (0.0 with no chunks).
    pub fn ff_fallback_rate(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.ff_fallbacks as f64 / self.chunks as f64
        }
    }

    /// Fraction of RTM transactions that aborted (0.0 with none).
    pub fn rtm_abort_rate(&self) -> f64 {
        let attempts = self.rtm_commits + self.rtm_aborts;
        if attempts == 0 {
            0.0
        } else {
            self.rtm_aborts as f64 / attempts as f64
        }
    }

    /// Average VPL partitions per chunk (1.0 is conflict-free; the
    /// vector length means the window fully serialized).
    pub fn partitions_per_chunk(&self) -> f64 {
        if self.chunks == 0 {
            0.0
        } else {
            self.vpl_iterations as f64 / self.chunks as f64
        }
    }

    /// Vector chunks executed per wall second (0.0 for a zero-length
    /// measurement).
    pub fn chunks_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.chunks as f64 / secs
        } else {
            0.0
        }
    }

    /// µops emitted per wall second (0.0 for a zero-length measurement).
    pub fn uops_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.uops as f64 / secs
        } else {
            0.0
        }
    }
}

/// One named engine counter, the exchange format between the execution
/// statistics ([`VectorStats`], [`ThroughputReport`]) and an external
/// metrics registry (the serving layer's `/metrics` endpoint). Names
/// are stable, snake_case, and unit-suffixed where meaningful.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct StatSample {
    /// Stable metric name (e.g. `engine_chunks`).
    pub name: &'static str,
    /// Monotonic count contributed by the measured run.
    pub value: u64,
}

/// Flattens one run's [`VectorStats`] into named samples a metrics
/// registry can accumulate as counters.
pub fn vector_stat_samples(stats: &VectorStats) -> Vec<StatSample> {
    vec![
        StatSample {
            name: "engine_chunks",
            value: stats.chunks,
        },
        StatSample {
            name: "engine_vpl_iterations",
            value: stats.vpl_iterations,
        },
        StatSample {
            name: "engine_ff_fallbacks",
            value: stats.ff_fallbacks,
        },
        StatSample {
            name: "engine_rtm_commits",
            value: stats.rtm_commits,
        },
        StatSample {
            name: "engine_rtm_aborts",
            value: stats.rtm_aborts,
        },
    ]
}

/// Flattens a [`ThroughputReport`] into named samples: µop and
/// page-cache totals plus the wall time in microseconds (so a registry
/// can derive chunks/s and µops/s as rates over scrape intervals).
pub fn throughput_samples(report: &ThroughputReport) -> Vec<StatSample> {
    vec![
        StatSample {
            name: "engine_uops",
            value: report.uops,
        },
        StatSample {
            name: "engine_wall_micros",
            value: report.wall.as_micros() as u64,
        },
        StatSample {
            name: "engine_page_cache_hits",
            value: report.page_cache.hits,
        },
        StatSample {
            name: "engine_page_cache_misses",
            value: report.page_cache.misses,
        },
    ]
}

impl core::fmt::Display for ThroughputReport {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(
            f,
            "{}: {:.3e} chunks/s, {:.3e} uops/s, page-cache {:.1}% hit",
            self.label,
            self.chunks_per_sec(),
            self.uops_per_sec(),
            self.page_cache.hit_rate() * 100.0
        )
    }
}

/// Dynamic profile of one loop over one or more invocations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LoopProfile {
    /// Loop name.
    pub name: String,
    /// Invocations profiled.
    pub invocations: u64,
    /// Total scalar iterations.
    pub trips: u64,
    /// Conditional-update events (an update actually fired).
    pub update_events: u64,
    /// Memory-conflict events (a load touched an address stored within
    /// the preceding vector window).
    pub conflict_events: u64,
    /// Early-exit events.
    pub exit_events: u64,
    /// Dynamic scalar µops executed by the loop.
    pub uops: u64,
}

impl LoopProfile {
    /// Average trip count per invocation.
    pub fn avg_trip_count(&self) -> f64 {
        if self.invocations == 0 {
            0.0
        } else {
            self.trips as f64 / self.invocations as f64
        }
    }

    /// Total cross-iteration dependency events.
    pub fn dependency_events(&self) -> u64 {
        self.update_events + self.conflict_events + self.exit_events
    }

    /// The paper's effective vector length: average trip count over
    /// average dependency events (both per invocation). With zero events
    /// the loop runs at the full ambient vector length
    /// ([`flexvec_isa::vlen`]).
    pub fn effective_vector_length(&self) -> f64 {
        let events = self.dependency_events();
        if events == 0 {
            vlen() as f64
        } else {
            (self.trips as f64 / events as f64).min(vlen() as f64)
        }
    }
}

/// Profiles a loop against a memory image. The image is restored by the
/// caller if it matters (profiling mutates memory exactly like a run).
///
/// # Errors
///
/// Propagates scalar execution faults.
pub fn profile_loop(
    program: &Program,
    mem: &mut AddressSpace,
    bindings: Bindings,
    invocations: u64,
) -> Result<LoopProfile, ExecError> {
    let analysis = analyze(program);
    let (updated_vars, conflict_checks): (Vec<_>, Vec<_>) = match &analysis.verdict {
        Verdict::FlexVec(plan) => (plan.updated_vars.clone(), plan.conflict_checks.clone()),
        _ => (Vec::new(), Vec::new()),
    };
    let has_exit = matches!(&analysis.verdict, Verdict::FlexVec(p) if !p.early_exits.is_empty());

    let mut profile = LoopProfile {
        name: program.name.clone(),
        ..LoopProfile::default()
    };

    for _ in 0..invocations {
        profile.invocations += 1;
        let mut machine = ScalarMachine::new(program, bindings.clone());
        let start = machine.eval_invariant(&program.loop_.start);
        let end = machine.eval_invariant(&program.loop_.end);
        let mut sink = CountingSink::default();
        // Sliding window of store indices for conflict detection.
        let mut window: Vec<Vec<i64>> = vec![Vec::new(); vlen()];
        let mut i = start;
        while i < end {
            let before: Vec<i64> = updated_vars
                .iter()
                .map(|v| machine.vars[v.0 as usize])
                .collect();
            let outcome = machine.step(i, mem, &mut sink).map_err(ExecError::Fault)?;
            profile.trips += 1;

            // Update events: any tracked scalar changed this iteration.
            let changed = updated_vars
                .iter()
                .zip(&before)
                .any(|(v, old)| machine.vars[v.0 as usize] != *old);
            if changed {
                profile.update_events += 1;
            }

            // Conflict events: this iteration's load index matches a
            // store index from one of the previous vlen()-1 iterations.
            if !conflict_checks.is_empty() {
                let slot = (i - start).rem_euclid(vlen() as i64) as usize;
                window[slot].clear();
                let mut hit = false;
                for check in &conflict_checks {
                    if let Some(load_idx) = eval_index(&check.load_index, &machine.vars) {
                        if window
                            .iter()
                            .enumerate()
                            .any(|(s, idxs)| s != slot && idxs.contains(&load_idx))
                        {
                            hit = true;
                        }
                    }
                    if let Some(store_idx) = eval_index(&check.store_index, &machine.vars) {
                        window[slot].push(store_idx);
                    }
                }
                if hit {
                    profile.conflict_events += 1;
                }
            }

            if outcome == StepOutcome::Break {
                if has_exit {
                    profile.exit_events += 1;
                }
                break;
            }
            i += 1;
        }
        profile.uops += sink.len();
    }
    Ok(profile)
}

/// Evaluates an index expression with the post-iteration variable values
/// (conflict indices are computed from unconditionally assigned scalars,
/// so the post-iteration value is the one the accesses used). Indirect
/// indices (containing loads) are skipped.
fn eval_index(e: &Expr, vars: &[i64]) -> Option<i64> {
    Some(match e {
        Expr::Const(v) => *v,
        Expr::Var(v) => vars[v.0 as usize],
        Expr::Bin { op, lhs, rhs } => op.eval(eval_index(lhs, vars)?, eval_index(rhs, vars)?),
        Expr::Cmp { op, lhs, rhs } => {
            op.eval(eval_index(lhs, vars)?, eval_index(rhs, vars)?) as i64
        }
        Expr::Not(inner) => (eval_index(inner, vars)? == 0) as i64,
        Expr::Load { .. } => return None,
    })
}

/// The paper's selection thresholds.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Thresholds {
    /// Minimum average trip count (paper: 16).
    pub min_trip_count: f64,
    /// Minimum effective vector length (paper: 6).
    pub min_effective_vl: f64,
    /// Minimum hot-loop coverage (paper: ≈5%).
    pub min_coverage: f64,
    /// Maximum vector memory-to-compute ratio (paper: 2).
    pub max_mem_compute_ratio: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            min_trip_count: 16.0,
            min_effective_vl: 6.0,
            min_coverage: 0.05,
            max_mem_compute_ratio: 2.0,
        }
    }
}

/// Outcome of the candidate-selection heuristics.
#[derive(Clone, Debug, PartialEq)]
pub struct Selection {
    /// Whether the loop should be vectorized with FlexVec.
    pub accepted: bool,
    /// Reasons for rejection (empty when accepted).
    pub rejections: Vec<String>,
    /// Average trip count observed.
    pub avg_trip_count: f64,
    /// Effective vector length observed.
    pub effective_vl: f64,
    /// Coverage supplied by the caller.
    pub coverage: f64,
    /// Static vector memory-to-compute ratio.
    pub mem_compute_ratio: f64,
}

/// The vector memory-to-compute ratio of a generated instruction mix.
pub fn mem_compute_ratio(mix: &InstMix) -> f64 {
    let mem = (mix.gather + mix.scatter + mix.unit_mem + mix.vpgatherff + mix.vmovff) as f64;
    let compute = (mix.other + mix.kftm + mix.vpslctlast + mix.vpconflictm).max(1) as f64;
    mem / compute
}

/// Applies the paper's heuristics to a profiled loop.
pub fn select(
    profile: &LoopProfile,
    coverage: f64,
    mix: &InstMix,
    thresholds: &Thresholds,
) -> Selection {
    let avg_trip = profile.avg_trip_count();
    let evl = profile.effective_vector_length();
    let ratio = mem_compute_ratio(mix);
    let mut rejections = Vec::new();
    if avg_trip < thresholds.min_trip_count {
        rejections.push(format!(
            "average trip count {avg_trip:.1} below {}",
            thresholds.min_trip_count
        ));
    }
    if evl < thresholds.min_effective_vl {
        rejections.push(format!(
            "effective vector length {evl:.1} below {}",
            thresholds.min_effective_vl
        ));
    }
    if coverage < thresholds.min_coverage {
        rejections.push(format!(
            "coverage {:.1}% below {:.1}%",
            coverage * 100.0,
            thresholds.min_coverage * 100.0
        ));
    }
    if ratio > thresholds.max_mem_compute_ratio {
        rejections.push(format!(
            "memory/compute ratio {ratio:.2} above {}",
            thresholds.max_mem_compute_ratio
        ));
    }
    Selection {
        accepted: rejections.is_empty(),
        rejections,
        avg_trip_count: avg_trip,
        effective_vl: evl,
        coverage,
        mem_compute_ratio: ratio,
    }
}

/// Lists the FlexVec patterns the analysis found, for reports.
pub fn detected_patterns(program: &Program) -> Vec<String> {
    match analyze(program).verdict {
        Verdict::FlexVec(plan) => {
            let mut out: Vec<String> = plan
                .patterns
                .iter()
                .map(|p| match p {
                    PatternInstance::EarlyTermination { .. } => "early-termination".to_owned(),
                    PatternInstance::ConditionalUpdate { .. } => "conditional-update".to_owned(),
                    PatternInstance::MemoryConflict { .. } => "memory-conflict".to_owned(),
                })
                .collect();
            out.dedup();
            out
        }
        Verdict::Traditional { .. } => vec!["traditional".to_owned()],
        Verdict::NotVectorizable { reason } => vec![format!("rejected: {reason}")],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvec::{vectorize, SpecRequest};
    use flexvec_ir::build::*;
    use flexvec_ir::ProgramBuilder;

    fn cond_min_loop(n: i64) -> Program {
        let mut b = ProgramBuilder::new("cond_min");
        let i = b.var("i", 0);
        let best = b.var("best", i64::MAX);
        let a = b.array("a");
        b.live_out(best);
        b.build_loop(
            i,
            c(0),
            c(n),
            vec![if_(
                lt(ld(a, var(i)), var(best)),
                vec![assign(best, ld(a, var(i)))],
            )],
        )
        .unwrap()
    }

    #[test]
    fn profile_counts_update_events() {
        let p = cond_min_loop(64);
        let mut mem = AddressSpace::new();
        // Strictly descending: every iteration updates.
        let a = mem.alloc_from("a", &(0..64).map(|i| 1000 - i).collect::<Vec<_>>());
        let prof = profile_loop(&p, &mut mem, Bindings::new(vec![a]), 1).unwrap();
        assert_eq!(prof.trips, 64);
        assert_eq!(prof.update_events, 64);
        assert!((prof.effective_vector_length() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn profile_no_events_gives_full_vl() {
        let p = cond_min_loop(64);
        let mut mem = AddressSpace::new();
        // First element is the minimum: only one update.
        let mut data = vec![500i64; 64];
        data[0] = 1;
        let a = mem.alloc_from("a", &data);
        let prof = profile_loop(&p, &mut mem, Bindings::new(vec![a]), 1).unwrap();
        assert_eq!(prof.update_events, 1);
        assert!(prof.effective_vector_length() >= 16.0);
    }

    #[test]
    fn profile_counts_conflicts() {
        // Figure 2 shape with every iteration hitting the same cell.
        let mut b = ProgramBuilder::new("conflict");
        let i = b.var("i", 0);
        let s = b.var("s", 0);
        let idx = b.array("idx");
        let d = b.array("d");
        let p = b
            .build_loop(
                i,
                c(0),
                c(32),
                vec![
                    assign(s, ld(idx, var(i))),
                    if_(
                        ge(var(s), ld(d, var(s))),
                        vec![store(d, var(s), add(var(s), c(1)))],
                    ),
                ],
            )
            .unwrap();
        let mut mem = AddressSpace::new();
        let idx_a = mem.alloc_from("idx", &vec![3i64; 32]);
        let d_a = mem.alloc_from("d", &[0i64; 8]);
        let prof = profile_loop(&p, &mut mem, Bindings::new(vec![idx_a, d_a]), 1).unwrap();
        assert!(prof.conflict_events >= 30, "{prof:?}");
        assert!(prof.effective_vector_length() < 2.0);
    }

    #[test]
    fn profile_counts_exits() {
        let mut b = ProgramBuilder::new("exit");
        let i = b.var("i", 0);
        let a = b.array("a");
        let t = b.var("t", 0);
        let p = b
            .build_loop(
                i,
                c(0),
                c(100),
                vec![
                    assign(t, ld(a, var(i))),
                    if_(eq(var(t), c(-1)), vec![brk()]),
                ],
            )
            .unwrap();
        let mut mem = AddressSpace::new();
        let mut data = vec![0i64; 100];
        data[40] = -1;
        let a_id = mem.alloc_from("a", &data);
        let prof = profile_loop(&p, &mut mem, Bindings::new(vec![a_id]), 2).unwrap();
        assert_eq!(prof.exit_events, 2);
        assert_eq!(prof.trips, 82); // 41 per invocation
        assert!((prof.avg_trip_count() - 41.0).abs() < 1e-9);
    }

    #[test]
    fn selection_thresholds() {
        let p = cond_min_loop(128);
        let mut mem = AddressSpace::new();
        let mut data = vec![900i64; 128];
        data[0] = 1;
        let a = mem.alloc_from("a", &data);
        let prof = profile_loop(&p, &mut mem, Bindings::new(vec![a]), 1).unwrap();
        let mix = vectorize(&p, SpecRequest::Auto).unwrap().vprog.inst_mix();
        let th = Thresholds::default();

        let ok = select(&prof, 0.30, &mix, &th);
        assert!(ok.accepted, "{ok:?}");

        let low_cov = select(&prof, 0.01, &mix, &th);
        assert!(!low_cov.accepted);
        assert!(low_cov.rejections.iter().any(|r| r.contains("coverage")));
    }

    #[test]
    fn selection_rejects_short_trips() {
        let p = cond_min_loop(8);
        let mut mem = AddressSpace::new();
        let a = mem.alloc_from("a", &[5i64; 8]);
        let prof = profile_loop(&p, &mut mem, Bindings::new(vec![a]), 4).unwrap();
        let mix = vectorize(&p, SpecRequest::Auto).unwrap().vprog.inst_mix();
        let sel = select(&prof, 0.5, &mix, &Thresholds::default());
        assert!(!sel.accepted);
        assert!(sel.rejections.iter().any(|r| r.contains("trip count")));
    }

    #[test]
    fn selection_rejects_low_evl() {
        let p = cond_min_loop(64);
        let mut mem = AddressSpace::new();
        let a = mem.alloc_from("a", &(0..64).map(|i| 1000 - i).collect::<Vec<_>>());
        let prof = profile_loop(&p, &mut mem, Bindings::new(vec![a]), 1).unwrap();
        let mix = vectorize(&p, SpecRequest::Auto).unwrap().vprog.inst_mix();
        let sel = select(&prof, 0.5, &mix, &Thresholds::default());
        assert!(!sel.accepted);
        assert!(sel
            .rejections
            .iter()
            .any(|r| r.contains("effective vector length")));
    }

    #[test]
    fn mem_compute_ratio_from_mix() {
        let mix = InstMix {
            gather: 4,
            other: 2,
            ..InstMix::default()
        };
        assert!((mem_compute_ratio(&mix) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn pattern_listing() {
        let pats = detected_patterns(&cond_min_loop(64));
        assert_eq!(pats, vec!["conditional-update".to_owned()]);
    }

    #[test]
    fn stat_samples_flatten_every_counter() {
        let stats = VectorStats {
            chunks: 3,
            vpl_iterations: 7,
            ff_fallbacks: 1,
            rtm_commits: 2,
            rtm_aborts: 1,
            ..VectorStats::default()
        };
        let samples = vector_stat_samples(&stats);
        let get = |n: &str| samples.iter().find(|s| s.name == n).unwrap().value;
        assert_eq!(get("engine_chunks"), 3);
        assert_eq!(get("engine_vpl_iterations"), 7);
        assert_eq!(get("engine_ff_fallbacks"), 1);
        assert_eq!(get("engine_rtm_commits"), 2);
        assert_eq!(get("engine_rtm_aborts"), 1);

        let report = ThroughputReport::new(
            "compiled",
            Duration::from_millis(2),
            3,
            40,
            PageCacheStats { hits: 9, misses: 1 },
        );
        let samples = throughput_samples(&report);
        let get = |n: &str| samples.iter().find(|s| s.name == n).unwrap().value;
        assert_eq!(get("engine_uops"), 40);
        assert_eq!(get("engine_wall_micros"), 2000);
        assert_eq!(get("engine_page_cache_hits"), 9);
        assert_eq!(get("engine_page_cache_misses"), 1);
    }

    #[test]
    fn throughput_report_rates() {
        let mut r = ThroughputReport::new(
            "compiled",
            Duration::from_millis(500),
            0,
            1000,
            PageCacheStats {
                hits: 90,
                misses: 10,
            },
        );
        r.add_stats(&VectorStats {
            chunks: 50,
            vpl_iterations: 75,
            max_partitions: 4,
            ff_fallbacks: 5,
            rtm_commits: 20,
            rtm_aborts: 5,
            ..VectorStats::default()
        });
        r.add_stats(&VectorStats {
            chunks: 0,
            max_partitions: 2,
            ..VectorStats::default()
        });
        assert_eq!(r.chunks, 50);
        assert_eq!(r.vpl_iterations, 75);
        assert_eq!(r.max_partitions, 4, "max, not sum");
        assert!((r.ff_fallback_rate() - 0.1).abs() < 1e-9);
        assert!((r.rtm_abort_rate() - 0.2).abs() < 1e-9);
        assert!((r.partitions_per_chunk() - 1.5).abs() < 1e-9);
        assert!((r.chunks_per_sec() - 100.0).abs() < 1e-9);
        assert!((r.uops_per_sec() - 2000.0).abs() < 1e-9);
        let text = r.to_string();
        assert!(text.contains("compiled"));
        assert!(text.contains("90.0% hit"));
    }
}
