//! Robustness: the parser must return a rendered diagnostic — never
//! panic, hang, or overflow — for any input, exercised here with
//! thousands of deterministic mutations of valid kernels.

use flexvec_front::parse_str;

const SEEDS: &[&str] = &[
    "\
kernel minloc;
var i = 0;
var best = 9223372036854775807;
var best_i = -1;
array a[64] = seed 1;
live_out best, best_i;
for (i = 0; i < 64; i++) {
  if (a[i] < best) {
    best = a[i];
    best_i = i;
  }
}
",
    "\
kernel histogram;
var i = 0;
array idx[64] = seed 7;
array bins[64];
for (i = 0; i < 64; i++) {
  bins[idx[i] % 64] = bins[idx[i] % 64] + 1;
}
",
    "\
kernel early;
var i = 0;
var s = 0;
array a = [5, -3, 12, 900];
live_out s;
for (i = 0; i < 4; i++) {
  s = s + max(a[i], 0) << 1;
  if (s > 1000) {
    break;
  }
}
",
];

/// Parse and, on error, render — the whole path must be total.
fn must_not_panic(name: &str, src: &str) {
    if let Err(d) = parse_str(name, src) {
        let rendered = d.render(src);
        assert!(
            rendered.contains("error:"),
            "diagnostic renders: {rendered}"
        );
        assert!(d.span.line >= 1 && d.span.col >= 1, "1-based position");
        let _ = d.summary();
    }
}

#[test]
fn truncations_at_every_byte() {
    for seed in SEEDS {
        for cut in 0..seed.len() {
            if seed.is_char_boundary(cut) {
                must_not_panic("trunc.fv", &seed[..cut]);
            }
        }
    }
}

#[test]
fn single_byte_substitutions() {
    // Replace each character with a handful of troublemakers.
    let replacements = [
        '\0',
        '(',
        ')',
        '{',
        '"',
        '\\',
        '9',
        ';',
        '=',
        '<',
        '@',
        '\u{1F600}',
    ];
    for seed in SEEDS {
        let chars: Vec<char> = seed.chars().collect();
        for pos in 0..chars.len() {
            for r in replacements {
                let mut mutated: String = chars[..pos].iter().collect();
                mutated.push(r);
                mutated.extend(&chars[pos + 1..]);
                must_not_panic("subst.fv", &mutated);
            }
        }
    }
}

#[test]
fn deletions_and_duplications() {
    for seed in SEEDS {
        let chars: Vec<char> = seed.chars().collect();
        for pos in 0..chars.len() {
            let mut deleted: String = chars[..pos].iter().collect();
            deleted.extend(&chars[pos + 1..]);
            must_not_panic("del.fv", &deleted);

            let mut doubled: String = chars[..=pos].iter().collect();
            doubled.push(chars[pos]);
            doubled.extend(&chars[pos + 1..]);
            must_not_panic("dup.fv", &doubled);
        }
    }
}

#[test]
fn token_shuffles_from_an_lcg() {
    // Pseudo-random token-soup lines appended to a valid prefix.
    let tokens = [
        "kernel", "var", "array", "live_out", "for", "if", "else", "break", "seed", "min", "max",
        "(", ")", "[", "]", "{", "}", ";", ",", "=", "==", "!=", "<", "<=", ">", ">=", "+", "++",
        "-", "*", "/", "%", "&", "|", "^", "!", "<<", ">>", "x", "a", "0", "1", "64", "\"q\"",
    ];
    let mut state: u64 = 0x9e3779b97f4a7c15;
    for round in 0..400 {
        let mut src = String::from("kernel t;\nvar i = 0;\narray a;\n");
        let len = 1 + (round % 17);
        for _ in 0..len {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            src.push_str(tokens[(state >> 33) as usize % tokens.len()]);
            src.push(' ');
        }
        must_not_panic("soup.fv", &src);
    }
}

#[test]
fn pathological_nesting_is_rejected_gracefully() {
    for (open, close) in [("(", ")"), ("{", "}"), ("[", "]")] {
        let mut src =
            String::from("kernel t;\nvar i = 0;\nvar x = 0;\nfor (i = 0; i < 1; i++) {\n  x = ");
        src.push_str(&open.repeat(20_000));
        src.push('1');
        src.push_str(&close.repeat(20_000));
        src.push_str(";\n}\n");
        must_not_panic("nest.fv", &src);
    }

    let mut ifs = String::from("kernel t;\nvar i = 0;\nfor (i = 0; i < 1; i++) {\n");
    ifs.push_str(&"if (1) {\n".repeat(20_000));
    must_not_panic("ifs.fv", &ifs);

    let bangs = format!(
        "kernel t;\nvar i = 0;\nvar x = 0;\nfor (i = 0; i < 1; i++) {{\n  x = {}1;\n}}\n",
        "!".repeat(20_000)
    );
    must_not_panic("bangs.fv", &bangs);
}

#[test]
fn unicode_escape_rejections_are_distinct_and_caret_the_escape() {
    // Every malformed `\u{...}` form gets its own message, anchored at
    // the backslash (line 1, col 9 in `kernel "\u...`), not at the
    // string's opening quote.
    let cases: &[(&str, &str)] = &[
        ("kernel \"\\u{}\";", "empty `\\u{}` escape"),
        ("kernel \"\\u{1234567}\";", "overlong"),
        ("kernel \"\\u{0000000}\";", "overlong"),
        ("kernel \"\\u{d800}\";", "surrogate"),
        ("kernel \"\\u{dfff}\";", "surrogate"),
        ("kernel \"\\u{110000}\";", "largest code point"),
        ("kernel \"\\u{ffffff}\";", "largest code point"),
        ("kernel \"\\u{12,}\";", "invalid character"),
        ("kernel \"\\uA\";", "expected `{` after `\\u`"),
        ("kernel \"\\u{12", "unterminated `\\u{...}` escape"),
        ("kernel \"\\u", "expected `{` after `\\u`"),
    ];
    for (src, needle) in cases {
        let d = parse_str("esc.fv", src).expect_err("malformed escape must be rejected");
        assert!(
            d.message.contains(needle),
            "`{src}` produced `{}` (wanted `{needle}`)",
            d.message
        );
        assert_eq!(
            (d.span.line, d.span.col),
            (1, 9),
            "`{src}` caret must anchor at the backslash, got {}:{}",
            d.span.line,
            d.span.col
        );
        must_not_panic("esc.fv", src);
    }

    // Valid escapes across the scalar-value range still lex.
    for hex in ["0", "7f", "d7ff", "e000", "1F600", "10ffff"] {
        let src = format!("kernel \"\\u{{{hex}}}\";\nvar i = 0;\nfor (i = 0; i < 1; i++) {{\n}}\n");
        parse_str("esc_ok.fv", &src).unwrap_or_else(|d| panic!("\\u{{{hex}}}: {}", d.summary()));
    }
}

#[test]
fn seeds_themselves_parse() {
    for seed in SEEDS {
        parse_str("seed.fv", seed).expect("seed corpus is valid");
    }
}
