//! Canonical `.fv` pretty-printing.
//!
//! [`to_fv`] renders any [`Program`] as `.fv` text that parses back to
//! an identical AST (asserted by the round-trip property test at the
//! workspace root). Canonical choices: declarations in `var` / `array` /
//! `live_out` order, binary expressions fully parenthesized (matching
//! the IR's own `Display`), `min`/`max` as call syntax, two-space
//! indent, and quoting for any name the lexer could not read back as a
//! plain identifier.

use std::fmt::Write as _;

use flexvec_ir::{BinOp, Expr, Program, Stmt};

use crate::lexer::is_keyword;
use crate::parser::{ArrayInit, ArrayInput};

/// Renders `name` as a `.fv` name token: bare when it is a valid
/// identifier the parser will not misread, quoted (with escapes)
/// otherwise. `min`/`max` are always quoted so a scalar or array with
/// that name can never collide with the builtin call syntax.
fn name_token(name: &str) -> String {
    let mut chars = name.chars();
    let ident_ok = match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' => {
            chars.all(|c| c.is_ascii_alphanumeric() || c == '_')
        }
        _ => false,
    };
    if ident_ok && !is_keyword(name) && name != "min" && name != "max" {
        return name.to_owned();
    }
    let mut out = String::with_capacity(name.len() + 2);
    out.push('"');
    for c in name.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{{{:x}}}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn write_expr(out: &mut String, p: &Program, e: &Expr) {
    match e {
        Expr::Const(c) => {
            let _ = write!(out, "{c}");
        }
        Expr::Var(v) => out.push_str(&name_token(p.var_name(*v))),
        Expr::Load { array, index } => {
            out.push_str(&name_token(p.array_name(*array)));
            out.push('[');
            write_expr(out, p, index);
            out.push(']');
        }
        Expr::Bin { op, lhs, rhs } => match op {
            BinOp::Min | BinOp::Max => {
                out.push_str(if *op == BinOp::Min { "min(" } else { "max(" });
                write_expr(out, p, lhs);
                out.push_str(", ");
                write_expr(out, p, rhs);
                out.push(')');
            }
            _ => {
                out.push('(');
                write_expr(out, p, lhs);
                let _ = write!(out, " {op} ");
                write_expr(out, p, rhs);
                out.push(')');
            }
        },
        Expr::Cmp { op, lhs, rhs } => {
            out.push('(');
            write_expr(out, p, lhs);
            let _ = write!(out, " {op} ");
            write_expr(out, p, rhs);
            out.push(')');
        }
        Expr::Not(inner) => {
            out.push('!');
            write_expr(out, p, inner);
        }
    }
}

fn write_body(out: &mut String, p: &Program, body: &[Stmt], indent: usize) {
    let pad = "  ".repeat(indent);
    for stmt in body {
        match stmt {
            Stmt::Assign { var, value } => {
                out.push_str(&pad);
                out.push_str(&name_token(p.var_name(*var)));
                out.push_str(" = ");
                write_expr(out, p, value);
                out.push_str(";\n");
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                out.push_str(&pad);
                out.push_str(&name_token(p.array_name(*array)));
                out.push('[');
                write_expr(out, p, index);
                out.push_str("] = ");
                write_expr(out, p, value);
                out.push_str(";\n");
            }
            Stmt::If { cond, then_, else_ } => {
                out.push_str(&pad);
                out.push_str("if (");
                write_expr(out, p, cond);
                out.push_str(") {\n");
                write_body(out, p, then_, indent + 1);
                if !else_.is_empty() {
                    out.push_str(&pad);
                    out.push_str("} else {\n");
                    write_body(out, p, else_, indent + 1);
                }
                out.push_str(&pad);
                out.push_str("}\n");
            }
            Stmt::Break => {
                out.push_str(&pad);
                out.push_str("break;\n");
            }
        }
    }
}

/// Renders `program` as canonical `.fv` text.
///
/// Array declarations are printed without initializers (`array a;`) —
/// input data is front-end metadata that a `Program` does not carry.
/// Use [`to_fv_kernel`] when the input recipes must survive the
/// round-trip too.
pub fn to_fv(program: &Program) -> String {
    to_fv_with(program, &[])
}

/// Renders a full kernel — `program` plus its array input recipes — as
/// canonical `.fv` text. Unlike [`to_fv`], the printed text reparses to
/// an identical [`crate::ParsedKernel`]: every [`ArrayInit`] form
/// (default, sized, seeded, explicit values) is printed back in its
/// declaration syntax, so print → reparse → materialize reproduces the
/// same input data. This is what the differential fuzzer's repro emitter
/// uses: a repro `.fv` must re-run on the exact arrays that exposed the
/// divergence.
///
/// `inputs` are matched to `program.arrays` by name; arrays without a
/// matching recipe fall back to the bare `array a;` form.
pub fn to_fv_kernel(program: &Program, inputs: &[ArrayInput]) -> String {
    to_fv_with(program, inputs)
}

fn write_array_decl(out: &mut String, name: &str, init: Option<&ArrayInit>) {
    let name = name_token(name);
    match init {
        None | Some(ArrayInit::Default) => {
            let _ = writeln!(out, "array {name};");
        }
        Some(ArrayInit::Len(len)) => {
            let _ = writeln!(out, "array {name}[{len}];");
        }
        Some(ArrayInit::Seeded { len, seed }) => {
            let _ = writeln!(out, "array {name}[{len}] = seed {seed};");
        }
        Some(ArrayInit::Explicit(values)) => {
            let vals: Vec<String> = values.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(out, "array {name} = [{}];", vals.join(", "));
        }
    }
}

fn to_fv_with(program: &Program, inputs: &[ArrayInput]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "kernel {};", name_token(&program.name));
    out.push('\n');
    for v in &program.vars {
        let _ = writeln!(out, "var {} = {};", name_token(&v.name), v.init);
    }
    for a in &program.arrays {
        let init = inputs.iter().find(|i| i.name == a.name).map(|i| &i.init);
        write_array_decl(&mut out, &a.name, init);
    }
    if !program.live_out.is_empty() {
        let names: Vec<String> = program
            .live_out
            .iter()
            .map(|v| name_token(program.var_name(*v)))
            .collect();
        let _ = writeln!(out, "live_out {};", names.join(", "));
    }
    out.push('\n');
    let ind = name_token(program.var_name(program.loop_.induction));
    out.push_str(&format!("for ({ind} = "));
    write_expr(&mut out, program, &program.loop_.start);
    out.push_str(&format!("; {ind} < "));
    write_expr(&mut out, program, &program.loop_.end);
    out.push_str(&format!("; {ind}++) {{\n"));
    write_body(&mut out, program, &program.loop_.body, 1);
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_str;
    use flexvec_ir::build::*;
    use flexvec_ir::ProgramBuilder;

    fn roundtrip(p: &Program) {
        let text = to_fv(p);
        let reparsed = parse_str("<roundtrip>", &text)
            .unwrap_or_else(|e| panic!("reparse failed: {}\n---\n{text}", e.render(&text)));
        assert_eq!(&reparsed.program, p, "canonical text:\n{text}");
    }

    #[test]
    fn roundtrips_a_rich_program() {
        let mut b = ProgramBuilder::new("rich");
        let i = b.var("i", 0);
        let n = b.var("n", 64);
        let s = b.var("s", -7);
        let a = b.array("a");
        let idx = b.array("idx");
        b.live_out(s);
        let p = b
            .build_loop(
                i,
                c(0),
                var(n),
                vec![
                    assign(s, max2(var(s), shl(ld(a, var(i)), c(2)))),
                    if_else(
                        bor(eq(rem(var(i), c(3)), c(0)), not(gt(var(s), c(10)))),
                        vec![store(a, ld(idx, var(i)), sub(var(s), c(-9)))],
                        vec![brk()],
                    ),
                ],
            )
            .unwrap();
        roundtrip(&p);
    }

    #[test]
    fn quotes_keyword_and_nonident_names() {
        let mut b = ProgramBuilder::new("for");
        let i = b.var("if", 0);
        let weird = b.var("x y\"z\\", 1);
        let m = b.var("min", 2);
        let arr = b.array("break");
        b.live_out(weird);
        let p = b
            .build_loop(
                i,
                c(0),
                c(4),
                vec![
                    assign(m, add(var(m), ld(arr, var(i)))),
                    assign(weird, min2(var(weird), var(m))),
                ],
            )
            .unwrap();
        let text = to_fv(&p);
        assert!(text.contains("kernel \"for\";"), "{text}");
        assert!(text.contains("var \"if\" = 0;"), "{text}");
        assert!(text.contains("\"x y\\\"z\\\\\""), "{text}");
        assert!(text.contains("var \"min\" = 2;"), "{text}");
        assert!(text.contains("array \"break\";"), "{text}");
        roundtrip(&p);
    }

    #[test]
    fn canonical_text_is_stable() {
        let mut b = ProgramBuilder::new("stable");
        let i = b.var("i", 0);
        let x = b.var("x", 0);
        b.live_out(x);
        let p = b
            .build_loop(i, c(0), c(8), vec![assign(x, add(var(x), var(i)))])
            .unwrap();
        let text = to_fv(&p);
        assert_eq!(
            text,
            "kernel stable;\n\nvar i = 0;\nvar x = 0;\nlive_out x;\n\nfor (i = 0; i < 8; i++) {\n  x = (x + i);\n}\n"
        );
        // Printing is idempotent through a parse.
        let reparsed = parse_str("<t>", &text).unwrap();
        assert_eq!(to_fv(&reparsed.program), text);
    }
}
