//! The `.fv` tokenizer.
//!
//! Hand-rolled, span-tracking, and total: every byte sequence either
//! lexes or produces a [`Diagnostic`] — the lexer never panics (the
//! mutation tests in `tests/` enforce this over corrupted corpora).

use crate::diag::{Diagnostic, Span};

/// A token kind. Operators keep their surface spelling in
/// [`TokKind::describe`] so expectation messages read naturally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier (also the soft keywords `min`/`max`).
    Ident(String),
    /// Quoted name/string literal (escapes already resolved).
    Str(String),
    /// Unsigned integer literal magnitude (sign handled by the parser).
    Int(u64),
    /// `kernel`
    KwKernel,
    /// `var`
    KwVar,
    /// `array`
    KwArray,
    /// `live_out`
    KwLiveOut,
    /// `for`
    KwFor,
    /// `if`
    KwIf,
    /// `else`
    KwElse,
    /// `break`
    KwBreak,
    /// `seed`
    KwSeed,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `+`
    Plus,
    /// `++`
    PlusPlus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `!`
    Bang,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// End of input.
    Eof,
}

impl TokKind {
    /// How the token is described in diagnostics.
    pub fn describe(&self) -> String {
        match self {
            TokKind::Ident(name) => format!("identifier `{name}`"),
            TokKind::Str(_) => "quoted name".to_owned(),
            TokKind::Int(v) => format!("integer `{v}`"),
            TokKind::KwKernel => "`kernel`".to_owned(),
            TokKind::KwVar => "`var`".to_owned(),
            TokKind::KwArray => "`array`".to_owned(),
            TokKind::KwLiveOut => "`live_out`".to_owned(),
            TokKind::KwFor => "`for`".to_owned(),
            TokKind::KwIf => "`if`".to_owned(),
            TokKind::KwElse => "`else`".to_owned(),
            TokKind::KwBreak => "`break`".to_owned(),
            TokKind::KwSeed => "`seed`".to_owned(),
            TokKind::LParen => "`(`".to_owned(),
            TokKind::RParen => "`)`".to_owned(),
            TokKind::LBracket => "`[`".to_owned(),
            TokKind::RBracket => "`]`".to_owned(),
            TokKind::LBrace => "`{`".to_owned(),
            TokKind::RBrace => "`}`".to_owned(),
            TokKind::Semi => "`;`".to_owned(),
            TokKind::Comma => "`,`".to_owned(),
            TokKind::Assign => "`=`".to_owned(),
            TokKind::EqEq => "`==`".to_owned(),
            TokKind::Ne => "`!=`".to_owned(),
            TokKind::Lt => "`<`".to_owned(),
            TokKind::Le => "`<=`".to_owned(),
            TokKind::Gt => "`>`".to_owned(),
            TokKind::Ge => "`>=`".to_owned(),
            TokKind::Plus => "`+`".to_owned(),
            TokKind::PlusPlus => "`++`".to_owned(),
            TokKind::Minus => "`-`".to_owned(),
            TokKind::Star => "`*`".to_owned(),
            TokKind::Slash => "`/`".to_owned(),
            TokKind::Percent => "`%`".to_owned(),
            TokKind::Amp => "`&`".to_owned(),
            TokKind::Pipe => "`|`".to_owned(),
            TokKind::Caret => "`^`".to_owned(),
            TokKind::Bang => "`!`".to_owned(),
            TokKind::Shl => "`<<`".to_owned(),
            TokKind::Shr => "`>>`".to_owned(),
            TokKind::Eof => "end of file".to_owned(),
        }
    }
}

/// One token with its source span.
#[derive(Clone, Debug)]
pub struct Token {
    /// The kind (and payload).
    pub kind: TokKind,
    /// Where it sits in the source.
    pub span: Span,
}

fn keyword(word: &str) -> Option<TokKind> {
    Some(match word {
        "kernel" => TokKind::KwKernel,
        "var" => TokKind::KwVar,
        "array" => TokKind::KwArray,
        "live_out" => TokKind::KwLiveOut,
        "for" => TokKind::KwFor,
        "if" => TokKind::KwIf,
        "else" => TokKind::KwElse,
        "break" => TokKind::KwBreak,
        "seed" => TokKind::KwSeed,
        _ => return None,
    })
}

/// Hard keywords that can never be plain identifiers (the printer quotes
/// declaration names that collide with these).
pub fn is_keyword(word: &str) -> bool {
    keyword(word).is_some()
}

struct Lexer<'a> {
    source_name: &'a str,
    chars: std::iter::Peekable<std::str::CharIndices<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    fn span_at(&self, offset: usize, len: usize, line: u32, col: u32) -> Span {
        Span {
            offset,
            len,
            line,
            col,
        }
    }

    fn bump(&mut self) -> Option<(usize, char)> {
        let next = self.chars.next();
        if let Some((_, ch)) = next {
            if ch == '\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
        next
    }

    fn error(&self, message: String, span: Span) -> Diagnostic {
        Diagnostic::new(self.source_name, message, span)
    }
}

/// Lexes the `{XXXX}` tail of a `\u{...}` escape whose `\u` has already
/// been consumed. `start` is the byte offset of the backslash and
/// `line`/`col` its position, so every diagnostic carets the escape
/// itself and spans exactly the text consumed so far.
fn lex_unicode_escape(
    lx: &mut Lexer<'_>,
    src: &str,
    start: usize,
    line: u32,
    col: u32,
) -> Result<char, Diagnostic> {
    if lx.chars.peek().map(|&(_, c)| c) != Some('{') {
        return Err(lx.error(
            "expected `{` after `\\u`".to_owned(),
            lx.span_at(start, 2, line, col),
        ));
    }
    lx.bump(); // `{`
    let mut hex = String::new();
    let close = loop {
        match lx.bump() {
            Some((j, '}')) => break j,
            Some((_, h)) if h.is_ascii_hexdigit() => hex.push(h),
            Some((j, other)) => {
                return Err(lx.error(
                    format!("invalid character `{other}` in `\\u{{...}}` escape (expected a hex digit or `}}`)"),
                    lx.span_at(start, j + other.len_utf8() - start, line, col),
                ))
            }
            None => {
                return Err(lx.error(
                    "unterminated `\\u{...}` escape".to_owned(),
                    lx.span_at(start, src.len() - start, line, col),
                ))
            }
        }
    };
    let span = lx.span_at(start, close + 1 - start, line, col);
    if hex.is_empty() {
        return Err(lx.error(
            "empty `\\u{}` escape (expected 1 to 6 hex digits)".to_owned(),
            span,
        ));
    }
    if hex.len() > 6 {
        return Err(lx.error(
            format!(
                "overlong `\\u{{{hex}}}` escape ({} hex digits; the maximum is 6)",
                hex.len()
            ),
            span,
        ));
    }
    // 1-6 hex digits always fit in u32; map a (impossible) parse failure
    // to an out-of-range value so the lexer stays total.
    let code = u32::from_str_radix(&hex, 16).unwrap_or(u32::MAX);
    match char::from_u32(code) {
        Some(c) => Ok(c),
        None if (0xD800..=0xDFFF).contains(&code) => Err(lx.error(
            format!("`\\u{{{hex}}}` is a surrogate code point, not a unicode scalar value"),
            span,
        )),
        None => Err(lx.error(
            format!("`\\u{{{hex}}}` is past the largest code point `\\u{{10ffff}}`"),
            span,
        )),
    }
}

/// Tokenizes `src`, returning the token stream (always terminated by an
/// [`TokKind::Eof`] token).
///
/// # Errors
///
/// Returns a [`Diagnostic`] for unterminated strings/escapes, oversized
/// integer literals, and characters outside the language.
pub fn lex(source_name: &str, src: &str) -> Result<Vec<Token>, Diagnostic> {
    let mut lx = Lexer {
        source_name,
        chars: src.char_indices().peekable(),
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    loop {
        // Skip whitespace and `//` comments.
        let (offset, ch, line, col) = loop {
            let Some(&(offset, ch)) = lx.chars.peek() else {
                out.push(Token {
                    kind: TokKind::Eof,
                    span: lx.span_at(src.len(), 0, lx.line, lx.col),
                });
                return Ok(out);
            };
            if ch.is_whitespace() {
                lx.bump();
                continue;
            }
            if ch == '/' && src[offset..].starts_with("//") {
                while let Some(&(_, c)) = lx.chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    lx.bump();
                }
                continue;
            }
            break (offset, ch, lx.line, lx.col);
        };

        let kind = match ch {
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut end = offset;
                while let Some(&(i, c)) = lx.chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        end = i + c.len_utf8();
                        lx.bump();
                    } else {
                        break;
                    }
                }
                let word = &src[offset..end];
                keyword(word).unwrap_or_else(|| TokKind::Ident(word.to_owned()))
            }
            c if c.is_ascii_digit() => {
                let mut value: u64 = 0;
                let mut end = offset;
                let mut overflow = false;
                while let Some(&(i, c)) = lx.chars.peek() {
                    if let Some(d) = c.to_digit(10) {
                        value = match value.checked_mul(10).and_then(|v| v.checked_add(d as u64)) {
                            Some(v) => v,
                            None => {
                                overflow = true;
                                value
                            }
                        };
                        end = i + 1;
                        lx.bump();
                    } else {
                        break;
                    }
                }
                if overflow {
                    return Err(lx.error(
                        "integer literal does not fit in 64 bits".to_owned(),
                        lx.span_at(offset, end - offset, line, col),
                    ));
                }
                TokKind::Int(value)
            }
            '"' => {
                lx.bump(); // opening quote
                let mut text = String::new();
                loop {
                    let Some((i, c)) = lx.bump() else {
                        return Err(lx.error(
                            "unterminated quoted name".to_owned(),
                            lx.span_at(offset, 1, line, col),
                        ));
                    };
                    match c {
                        '"' => break,
                        '\\' => {
                            // Bad-escape carets point at the backslash
                            // itself, not the string's opening quote;
                            // `bump` already advanced past it.
                            let (esc_line, esc_col) = (lx.line, lx.col - 1);
                            let Some((_, esc)) = lx.bump() else {
                                return Err(lx.error(
                                    "unterminated escape".to_owned(),
                                    lx.span_at(i, 1, esc_line, esc_col),
                                ));
                            };
                            match esc {
                                '"' => text.push('"'),
                                '\\' => text.push('\\'),
                                'n' => text.push('\n'),
                                't' => text.push('\t'),
                                'r' => text.push('\r'),
                                'u' => {
                                    text.push(lex_unicode_escape(
                                        &mut lx, src, i, esc_line, esc_col,
                                    )?);
                                }
                                other => {
                                    return Err(lx.error(
                                        format!("unknown escape `\\{other}`"),
                                        lx.span_at(i, 2, esc_line, esc_col),
                                    ))
                                }
                            }
                        }
                        '\n' => {
                            return Err(lx.error(
                                "unterminated quoted name (newline)".to_owned(),
                                lx.span_at(offset, 1, line, col),
                            ))
                        }
                        other => text.push(other),
                    }
                }
                let end = lx.chars.peek().map_or(src.len(), |&(i, _)| i);
                out.push(Token {
                    kind: TokKind::Str(text),
                    span: lx.span_at(offset, end - offset, line, col),
                });
                continue;
            }
            _ => {
                lx.bump();
                let two = |lx: &mut Lexer, second: char| -> bool {
                    if lx.chars.peek().map(|&(_, c)| c) == Some(second) {
                        lx.bump();
                        true
                    } else {
                        false
                    }
                };
                match ch {
                    '(' => TokKind::LParen,
                    ')' => TokKind::RParen,
                    '[' => TokKind::LBracket,
                    ']' => TokKind::RBracket,
                    '{' => TokKind::LBrace,
                    '}' => TokKind::RBrace,
                    ';' => TokKind::Semi,
                    ',' => TokKind::Comma,
                    '=' => {
                        if two(&mut lx, '=') {
                            TokKind::EqEq
                        } else {
                            TokKind::Assign
                        }
                    }
                    '!' => {
                        if two(&mut lx, '=') {
                            TokKind::Ne
                        } else {
                            TokKind::Bang
                        }
                    }
                    '<' => {
                        if two(&mut lx, '=') {
                            TokKind::Le
                        } else if two(&mut lx, '<') {
                            TokKind::Shl
                        } else {
                            TokKind::Lt
                        }
                    }
                    '>' => {
                        if two(&mut lx, '=') {
                            TokKind::Ge
                        } else if two(&mut lx, '>') {
                            TokKind::Shr
                        } else {
                            TokKind::Gt
                        }
                    }
                    '+' => {
                        if two(&mut lx, '+') {
                            TokKind::PlusPlus
                        } else {
                            TokKind::Plus
                        }
                    }
                    '-' => TokKind::Minus,
                    '*' => TokKind::Star,
                    '/' => TokKind::Slash,
                    '%' => TokKind::Percent,
                    '&' => TokKind::Amp,
                    '|' => TokKind::Pipe,
                    '^' => TokKind::Caret,
                    other => {
                        return Err(lx.error(
                            format!("unexpected character `{other}`"),
                            lx.span_at(offset, other.len_utf8(), line, col),
                        ))
                    }
                }
            }
        };
        let end = lx.chars.peek().map_or(src.len(), |&(i, _)| i);
        out.push(Token {
            kind,
            span: lx.span_at(offset, end.saturating_sub(offset), line, col),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokKind> {
        lex("t.fv", src)
            .unwrap()
            .into_iter()
            .map(|t| t.kind)
            .collect()
    }

    #[test]
    fn lexes_the_basics() {
        let k = kinds("var i = 0; // comment\nfor (i = 0; i < n; i++) {}");
        assert_eq!(k[0], TokKind::KwVar);
        assert_eq!(k[1], TokKind::Ident("i".into()));
        assert_eq!(k[2], TokKind::Assign);
        assert_eq!(k[3], TokKind::Int(0));
        assert_eq!(k[4], TokKind::Semi);
        assert_eq!(k[5], TokKind::KwFor);
        assert!(k.contains(&TokKind::PlusPlus));
        assert_eq!(*k.last().unwrap(), TokKind::Eof);
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("== != <= >= << >> ++")[..7],
            [
                TokKind::EqEq,
                TokKind::Ne,
                TokKind::Le,
                TokKind::Ge,
                TokKind::Shl,
                TokKind::Shr,
                TokKind::PlusPlus
            ]
        );
    }

    #[test]
    fn strings_with_escapes() {
        let k = kinds(r#"kernel "a\"b\\c\n\u{1F600}";"#);
        assert_eq!(k[1], TokKind::Str("a\"b\\c\n\u{1F600}".into()));
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = lex("t.fv", "var x = 1;\n  break;").unwrap();
        let brk = toks
            .iter()
            .find(|t| t.kind == TokKind::KwBreak)
            .expect("break token");
        assert_eq!((brk.span.line, brk.span.col), (2, 3));
    }

    #[test]
    fn errors_are_diagnostics_not_panics() {
        assert!(lex("t.fv", "var x = @;").is_err());
        assert!(lex("t.fv", "\"unterminated").is_err());
        assert!(lex("t.fv", "99999999999999999999999999").is_err());
        assert!(lex("t.fv", "\"bad \\q escape\"").is_err());
    }

    #[test]
    fn min_and_max_stay_identifiers() {
        assert_eq!(
            kinds("min max")[..2],
            [TokKind::Ident("min".into()), TokKind::Ident("max".into())]
        );
    }
}
