//! The content-addressed compile cache.
//!
//! [`CompileCache`] memoizes the whole middle of the pipeline — analyze
//! → vectorize → bytecode-compile — keyed by the stable AST hash
//! ([`flexvec::program_hash`]) mixed with the speculation request. Two
//! `.fv` files that parse to the same `Program` share one entry, the
//! text itself never matters, and a second submission of a corpus in
//! the same process performs zero vectorizations (asserted by
//! `tests/fv_cache.rs`).
//!
//! Storage is [`flexvec::ShardedCache`], so concurrent batch drivers
//! compile each distinct kernel exactly once and share the immutable
//! [`CompiledVProg`] behind an `Arc` (per-run mutable state lives in
//! `ExecScratch`, allocated per thread).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use flexvec::{
    analyze, program_hash, vectorize_with, CacheStats, LoopAnalysis, ShardedCache, SpecRequest,
    StableHasher, VectorizeError, Vectorized, Verdict,
};
use flexvec_ir::Program;
use flexvec_vm::CompiledVProg;

/// A fully lowered, executable plan for one kernel.
#[derive(Debug)]
pub struct CompiledPlan {
    /// The vectorizer's output (vector program + analysis + kind).
    pub vectorized: Vectorized,
    /// The flat bytecode form the compiled engine executes.
    pub compiled: CompiledVProg,
}

/// One cache entry: everything the pipeline derives from a `Program`
/// under a given [`SpecRequest`]. Rejections are cached too — a kernel
/// the vectorizer refuses is refused once, not per submission.
#[derive(Debug)]
pub struct CompiledKernel {
    /// The stable AST hash ([`flexvec::program_hash`]) of the source
    /// program (spec-independent).
    pub program_hash: u64,
    /// The analysis (always available, even for rejected kernels).
    pub analysis: LoopAnalysis,
    /// The vectorized plan, or why there is none.
    pub plan: Result<CompiledPlan, VectorizeError>,
}

impl CompiledKernel {
    /// One-line human-readable verdict, e.g. `flexvec (early-exit,
    /// cond-update)` or `not vectorizable: <reason>`.
    pub fn verdict_summary(&self) -> String {
        verdict_summary(&self.analysis.verdict)
    }
}

/// Renders a [`Verdict`] as the short form the drivers print.
pub fn verdict_summary(verdict: &Verdict) -> String {
    match verdict {
        Verdict::Traditional { reductions } => {
            if reductions.is_empty() {
                "traditional".to_owned()
            } else {
                format!("traditional ({} reduction(s))", reductions.len())
            }
        }
        Verdict::FlexVec(plan) => {
            let mut tags = Vec::new();
            if !plan.early_exits.is_empty() {
                tags.push("early-exit");
            }
            if !plan.updated_vars.is_empty() {
                tags.push("cond-update");
            }
            if !plan.conflict_checks.is_empty() {
                tags.push("mem-conflict");
            }
            if plan.needs_speculation() {
                tags.push("speculative-load");
            }
            if tags.is_empty() {
                "flexvec".to_owned()
            } else {
                format!("flexvec ({})", tags.join(", "))
            }
        }
        Verdict::NotVectorizable { reason } => format!("not vectorizable: {reason}"),
    }
}

/// How a [`CompileCache::get_or_compile_restored`] submission was
/// satisfied.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CacheOutcome {
    /// Served from the in-memory cache.
    Hit,
    /// Miss satisfied by the restore hook (e.g. a disk snapshot) — no
    /// pipeline run.
    Restored,
    /// Miss satisfied by running the full compile pipeline.
    Compiled,
}

impl CacheOutcome {
    /// Whether the request avoided a pipeline run (in-memory hit or
    /// snapshot restore) — what the serving layer reports as
    /// `cache_hit`.
    pub fn is_hit(self) -> bool {
        !matches!(self, CacheOutcome::Compiled)
    }
}

/// The pipeline memo map. Cheap to share by reference across the
/// threads of a batch driver; create one per process (or per
/// `flexvecc` invocation) and submit every kernel through it.
///
/// Batch drivers use the unbounded [`CompileCache::new`]; a resident
/// server caps residency with [`CompileCache::with_capacity`]
/// (segmented-LRU eviction, see [`ShardedCache::with_capacity`]) so the
/// cache cannot grow without bound across days of traffic, and submits
/// through [`CompileCache::get_or_compile_coalesced`] so one slow
/// compilation never stalls unrelated kernels.
#[derive(Debug, Default)]
pub struct CompileCache {
    entries: ShardedCache<CompiledKernel>,
    compiles: AtomicU64,
}

impl CompileCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty cache bounded to roughly `capacity` entries
    /// with segmented-LRU eviction (exact bound documented on
    /// [`ShardedCache::with_capacity`]). Evicted kernels recompile on
    /// their next submission — correctness is unaffected, only the
    /// hit rate.
    pub fn with_capacity(capacity: usize) -> Self {
        CompileCache {
            entries: ShardedCache::with_capacity(capacity),
            compiles: AtomicU64::new(0),
        }
    }

    /// The configured capacity bound, if any.
    pub fn capacity(&self) -> Option<usize> {
        self.entries.capacity()
    }

    /// The cache key for `program` under `spec`: the stable AST hash
    /// mixed with the speculation request (an RTM plan differs from a
    /// first-faulting plan, so they cache separately).
    pub fn key(program: &Program, spec: SpecRequest) -> u64 {
        Self::key_for_hash(program_hash(program), spec)
    }

    /// [`CompileCache::key`] when only the stable AST hash is at hand
    /// (e.g. a request that names a kernel by hash).
    pub fn key_for_hash(program_hash: u64, spec: SpecRequest) -> u64 {
        let mut h = StableHasher::new();
        h.write_u64(program_hash);
        match spec {
            SpecRequest::Auto => h.tag(0x51),
            SpecRequest::Rtm { tile } => {
                h.tag(0x52);
                h.write_u64(tile as u64);
            }
        }
        h.finish()
    }

    /// Whether the cache currently holds `(program_hash, spec)`,
    /// without touching hit/miss counters or recency (a routing probe,
    /// not a lookup).
    pub fn contains_hash(&self, program_hash: u64, spec: SpecRequest) -> bool {
        self.entries
            .peek(Self::key_for_hash(program_hash, spec))
            .is_some()
    }

    /// Returns the pipeline output for `program`, compiling at most
    /// once per distinct (AST, spec) pair. The boolean is `true` on a
    /// cache hit.
    pub fn get_or_compile(
        &self,
        program: &Program,
        spec: SpecRequest,
    ) -> (Arc<CompiledKernel>, bool) {
        let key = Self::key(program, spec);
        self.entries
            .get_or_insert_with(key, || self.compile(program, spec))
    }

    /// [`CompileCache::get_or_compile`] with request coalescing: the
    /// pipeline runs with no shard lock held, concurrent submitters of
    /// the same (AST, spec) pair park until the one in-flight
    /// compilation finishes, and submitters of *different* kernels
    /// proceed unblocked even when their keys share a shard. The
    /// resident server's admission path.
    pub fn get_or_compile_coalesced(
        &self,
        program: &Program,
        spec: SpecRequest,
    ) -> (Arc<CompiledKernel>, bool) {
        let key = Self::key(program, spec);
        self.entries
            .get_or_insert_coalesced(key, || self.compile(program, spec))
    }

    /// [`CompileCache::get_or_compile_coalesced`] with a restore hook:
    /// on a miss, `restore` is consulted *before* the pipeline runs. A
    /// `Some(kernel)` return (e.g. a validated disk snapshot) is
    /// inserted without compiling — the compile counter stays put and
    /// the outcome is [`CacheOutcome::Restored`]; `None` falls through
    /// to the normal compile path. The snapshot store in `flexvec-serve`
    /// is the intended caller.
    pub fn get_or_compile_restored(
        &self,
        program: &Program,
        spec: SpecRequest,
        restore: impl FnOnce() -> Option<CompiledKernel>,
    ) -> (Arc<CompiledKernel>, CacheOutcome) {
        let key = Self::key(program, spec);
        // `get_or_insert_coalesced` only reports hit/miss; the Cell
        // records which miss path actually ran (at most one closure
        // invocation, so at most one `set`).
        let outcome = std::cell::Cell::new(CacheOutcome::Compiled);
        // `Cell` because the coalesced closure is `Fn`: the restore hook
        // is consumed on first invocation; a pathological re-run (the
        // first computer panicked) falls back to a plain compile.
        let restore = std::cell::Cell::new(Some(restore));
        let (kernel, hit) =
            self.entries
                .get_or_insert_coalesced(key, || match restore.take().and_then(|r| r()) {
                    Some(kernel) => {
                        outcome.set(CacheOutcome::Restored);
                        kernel
                    }
                    None => self.compile(program, spec),
                });
        let outcome = if hit {
            CacheOutcome::Hit
        } else {
            outcome.get()
        };
        (kernel, outcome)
    }

    /// Runs the full analyze→vectorize→bytecode-compile pipeline (the
    /// cache-miss path).
    fn compile(&self, program: &Program, spec: SpecRequest) -> CompiledKernel {
        let analysis = analyze(program);
        self.compile_with(program, &analysis, spec)
    }

    /// The lowering half of the pipeline against an already-computed
    /// analysis (the dependence analysis is spec-independent, so a
    /// respecialization reuses it).
    fn compile_with(
        &self,
        program: &Program,
        analysis: &LoopAnalysis,
        spec: SpecRequest,
    ) -> CompiledKernel {
        self.compiles.fetch_add(1, Ordering::Relaxed);
        let plan = vectorize_with(program, analysis, spec).map(|vectorized| {
            let compiled = CompiledVProg::compile(&vectorized.vprog);
            CompiledPlan {
                vectorized,
                compiled,
            }
        });
        CompiledKernel {
            program_hash: program_hash(program),
            analysis: analysis.clone(),
            plan,
        }
    }

    /// Builds (or returns) the plan variant for `program` under a *new*
    /// speculation request, reusing the dependence analysis of an
    /// already-compiled sibling variant instead of re-analyzing — the
    /// serving autotuner's re-lowering path. The boolean is `true` when
    /// the variant was already cached.
    pub fn get_or_respecialize(
        &self,
        program: &Program,
        analysis: &LoopAnalysis,
        spec: SpecRequest,
    ) -> (Arc<CompiledKernel>, bool) {
        let key = Self::key(program, spec);
        self.entries
            .get_or_insert_coalesced(key, || self.compile_with(program, analysis, spec))
    }

    /// Pins the `(program_hash, spec)` variant: exempt from LRU
    /// eviction until unpinned (see [`ShardedCache::pin`]). The serving
    /// layer pins each kernel's *active* variant so traffic bursts
    /// cannot flush the plan the autotuner selected, while stale
    /// variants age out normally. Returns whether the variant was
    /// resident.
    pub fn pin(&self, program_hash: u64, spec: SpecRequest) -> bool {
        self.entries.pin(Self::key_for_hash(program_hash, spec))
    }

    /// Reverses [`CompileCache::pin`] for the `(program_hash, spec)`
    /// variant, making it ordinarily evictable again.
    pub fn unpin(&self, program_hash: u64, spec: SpecRequest) -> bool {
        self.entries.unpin(Self::key_for_hash(program_hash, spec))
    }

    /// How many times the full analyze→vectorize→compile pipeline
    /// actually ran (cumulative; not reset by
    /// [`CompileCache::reset_counters`]). A batch that re-submits a
    /// cached corpus must leave this unchanged.
    pub fn compiles(&self) -> u64 {
        self.compiles.load(Ordering::Relaxed)
    }

    /// Hit/miss/entry snapshot of the underlying map.
    pub fn stats(&self) -> CacheStats {
        self.entries.stats()
    }

    /// Resets hit/miss counters (entries and the compile count are
    /// preserved) so one submission wave can be measured in isolation.
    pub fn reset_counters(&self) {
        self.entries.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvec::VectorizedKind;
    use flexvec_ir::build::*;
    use flexvec_ir::ProgramBuilder;

    fn cond_min() -> Program {
        let mut b = ProgramBuilder::new("cond-min");
        let i = b.var("i", 0);
        let best = b.var("best", i64::MAX);
        let a = b.array("a");
        b.live_out(best);
        b.build_loop(
            i,
            c(0),
            c(64),
            vec![if_(
                lt(ld(a, var(i)), var(best)),
                vec![assign(best, ld(a, var(i)))],
            )],
        )
        .unwrap()
    }

    #[test]
    fn second_submission_hits_without_recompiling() {
        let cache = CompileCache::new();
        let p = cond_min();
        let (k1, hit1) = cache.get_or_compile(&p, SpecRequest::Auto);
        assert!(!hit1);
        assert_eq!(cache.compiles(), 1);
        let plan = k1.plan.as_ref().expect("vectorizes");
        assert_eq!(plan.vectorized.kind, VectorizedKind::FlexVec);

        let (k2, hit2) = cache.get_or_compile(&p.clone(), SpecRequest::Auto);
        assert!(hit2);
        assert_eq!(cache.compiles(), 1, "no second pipeline run");
        assert!(Arc::ptr_eq(&k1, &k2), "same shared entry");
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn spec_request_splits_the_key() {
        let p = cond_min();
        let auto = CompileCache::key(&p, SpecRequest::Auto);
        let rtm = CompileCache::key(&p, SpecRequest::Rtm { tile: 256 });
        let rtm2 = CompileCache::key(&p, SpecRequest::Rtm { tile: 512 });
        assert_ne!(auto, rtm);
        assert_ne!(rtm, rtm2);
    }

    #[test]
    fn coalesced_submission_compiles_once() {
        let cache = CompileCache::new();
        let p = cond_min();
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    let (k, _) = cache.get_or_compile_coalesced(&p, SpecRequest::Auto);
                    assert!(k.plan.is_ok());
                });
            }
        });
        assert_eq!(cache.compiles(), 1, "one pipeline run for 8 submitters");
        let stats = cache.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 7);
    }

    #[test]
    fn bounded_cache_evicts_and_recompiles() {
        // Capacity 16 → 1 entry per shard: distinct kernels churn each
        // other out, and resubmitting an evicted kernel recompiles
        // (correctness preserved, compile count grows).
        let cache = CompileCache::with_capacity(16);
        assert_eq!(cache.capacity(), Some(16));
        let programs: Vec<Program> = (0..64)
            .map(|n| {
                let mut b = ProgramBuilder::new(&format!("k{n}"));
                let i = b.var("i", 0);
                let s = b.var("s", 0);
                let a = b.array("a");
                b.live_out(s);
                b.build_loop(
                    i,
                    c(0),
                    c(64),
                    vec![assign(s, add(var(s), add(ld(a, var(i)), c(n))))],
                )
                .unwrap()
            })
            .collect();
        let cache_ref = &cache;
        std::thread::scope(|scope| {
            for chunk in programs.chunks(16) {
                scope.spawn(move || {
                    for p in chunk {
                        let (k, _) = cache_ref.get_or_compile_coalesced(p, SpecRequest::Auto);
                        assert!(k.plan.is_ok(), "{}", p.name);
                    }
                });
            }
        });
        let stats = cache.stats();
        assert!(stats.entries <= 16, "bounded: {stats:?}");
        assert!(stats.evictions >= 64 - 16, "churned: {stats:?}");
        // Evicted kernels still compile correctly on resubmission.
        let before = cache.compiles();
        let (k, _) = cache.get_or_compile_coalesced(&programs[0], SpecRequest::Auto);
        assert!(k.plan.is_ok());
        assert!(cache.compiles() >= before);
    }

    #[test]
    fn restore_hook_is_tried_before_compiling() {
        let cache = CompileCache::new();
        let p = cond_min();

        // A restore hook that declines: the pipeline must run.
        let (_, outcome) = cache.get_or_compile_restored(&p, SpecRequest::Auto, || None);
        assert_eq!(outcome, CacheOutcome::Compiled);
        assert_eq!(cache.compiles(), 1);

        // Same key again: in-memory hit, hook never consulted.
        let (_, outcome) = cache.get_or_compile_restored(&p, SpecRequest::Auto, || {
            panic!("hook must not run on a hit")
        });
        assert_eq!(outcome, CacheOutcome::Hit);
        assert!(outcome.is_hit());

        // A different spec with a willing hook: restored, no compile.
        let donor = CompileCache::new();
        let (k, _) = donor.get_or_compile(&p, SpecRequest::Rtm { tile: 16 });
        let (restored, outcome) =
            cache.get_or_compile_restored(&p, SpecRequest::Rtm { tile: 16 }, move || {
                Some(CompiledKernel {
                    program_hash: k.program_hash,
                    analysis: k.analysis.clone(),
                    plan: match &k.plan {
                        Ok(plan) => Ok(CompiledPlan {
                            vectorized: plan.vectorized.clone(),
                            compiled: plan.compiled.clone(),
                        }),
                        Err(e) => Err(e.clone()),
                    },
                })
            });
        assert_eq!(outcome, CacheOutcome::Restored);
        assert!(outcome.is_hit());
        assert_eq!(cache.compiles(), 1, "restore skipped the pipeline");
        assert_eq!(restored.program_hash, program_hash(&p));
    }

    #[test]
    fn respecialize_reuses_analysis_and_pins_protect_variants() {
        let cache = CompileCache::with_capacity(16); // 1 entry per shard
        let p = cond_min();
        let (auto, _) = cache.get_or_compile(&p, SpecRequest::Auto);
        assert_eq!(cache.compiles(), 1);

        // Respecialize to an RTM variant off the cached analysis: one
        // more lowering, and the variant caches under its own key.
        let spec = SpecRequest::Rtm { tile: 128 };
        let (rtm, hit) = cache.get_or_respecialize(&p, &auto.analysis, spec);
        assert!(!hit);
        assert_eq!(cache.compiles(), 2);
        assert!(rtm.plan.is_ok());
        assert_eq!(rtm.program_hash, auto.program_hash);
        let (rtm2, hit2) = cache.get_or_respecialize(&p, &auto.analysis, spec);
        assert!(hit2, "variant is cached");
        assert!(Arc::ptr_eq(&rtm, &rtm2));

        // Pin the RTM variant, then churn its shard with distinct
        // kernels: the pinned variant survives where an unpinned one
        // would age out.
        assert!(cache.pin(rtm.program_hash, spec));
        assert!(
            !cache.pin(rtm.program_hash, SpecRequest::Rtm { tile: 64 }),
            "absent variants report non-resident"
        );
        for n in 0..64 {
            let mut b = ProgramBuilder::new(&format!("churn{n}"));
            let i = b.var("i", 0);
            let s = b.var("s", 0);
            let a = b.array("a");
            b.live_out(s);
            let churn = b
                .build_loop(
                    i,
                    c(0),
                    c(64),
                    vec![assign(s, add(var(s), add(ld(a, var(i)), c(n))))],
                )
                .unwrap();
            cache.get_or_compile(&churn, SpecRequest::Auto);
        }
        assert!(
            cache.contains_hash(rtm.program_hash, spec),
            "pinned active variant survives eviction pressure"
        );
        assert!(cache.unpin(rtm.program_hash, spec));
        assert_eq!(cache.stats().pinned, 0);
    }

    #[test]
    fn rejections_are_cached_with_analysis_intact() {
        // A loop-carried scalar recurrence used non-reductively: the
        // vectorizer refuses it, but the verdict is still reportable.
        let mut b = ProgramBuilder::new("carried");
        let i = b.var("i", 0);
        let s = b.var("s", 0);
        let t = b.var("t", 0);
        let a = b.array("a");
        b.live_out(t);
        let p = b
            .build_loop(
                i,
                c(0),
                c(64),
                vec![
                    assign(s, add(var(s), ld(a, var(i)))),
                    assign(t, mul(var(s), c(2))),
                ],
            )
            .unwrap();
        let cache = CompileCache::new();
        let (k, _) = cache.get_or_compile(&p, SpecRequest::Auto);
        assert!(k.plan.is_err());
        assert!(k.verdict_summary().starts_with("not vectorizable"));
        let (_, hit) = cache.get_or_compile(&p, SpecRequest::Auto);
        assert!(hit, "rejection is cached too");
        assert_eq!(cache.compiles(), 1);
    }
}
