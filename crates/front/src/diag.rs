//! Source-span diagnostics with rendered caret snippets.
//!
//! Every token the lexer produces carries a [`Span`]; parse errors carry
//! the offending span, a message, and (for expectation failures) the set
//! of tokens that would have been accepted. [`Diagnostic::render`]
//! produces the familiar compiler-style report:
//!
//! ```text
//! error: expected `;`, found `}`
//!   --> minloc.fv:5:14
//!    |
//!  5 |   best = a[i]
//!    |              ^ expected `;`
//! ```

use core::fmt;

/// A half-open byte range in a source file, with the 1-based line and
/// column of its start.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    /// Byte offset of the first character.
    pub offset: usize,
    /// Length in bytes (0 for end-of-file).
    pub len: usize,
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number (in characters).
    pub col: u32,
}

impl Span {
    /// A zero-length span at the very start of a file.
    pub fn start() -> Self {
        Span {
            offset: 0,
            len: 0,
            line: 1,
            col: 1,
        }
    }
}

/// A parse (or lex) error with location and expectation context.
#[derive(Clone, Debug)]
pub struct Diagnostic {
    /// Name of the source (file path or synthetic name), echoed in the
    /// rendered report.
    pub source_name: String,
    /// The main message, e.g. ``expected `;`, found `}` ``.
    pub message: String,
    /// Where the error is anchored.
    pub span: Span,
    /// What the parser would have accepted here (possibly empty).
    pub expected: Vec<String>,
}

impl Diagnostic {
    /// Creates a diagnostic with no expectation list.
    pub fn new(source_name: &str, message: impl Into<String>, span: Span) -> Self {
        Diagnostic {
            source_name: source_name.to_owned(),
            message: message.into(),
            span,
            expected: Vec::new(),
        }
    }

    /// One-line summary: `minloc.fv:5:14: expected `;`, found `}``.
    pub fn summary(&self) -> String {
        format!(
            "{}:{}:{}: {}",
            self.source_name, self.span.line, self.span.col, self.message
        )
    }

    /// Renders the full report with a caret snippet cut from `source`
    /// (the text the diagnostic was produced from).
    pub fn render(&self, source: &str) -> String {
        let mut out = String::new();
        out.push_str(&format!("error: {}\n", self.message));
        out.push_str(&format!(
            "  --> {}:{}:{}\n",
            self.source_name, self.span.line, self.span.col
        ));
        let line_no = self.span.line.to_string();
        let gutter = " ".repeat(line_no.len());
        out.push_str(&format!(" {gutter} |\n"));
        let line_text = source
            .lines()
            .nth(self.span.line.saturating_sub(1) as usize)
            .unwrap_or("");
        out.push_str(&format!(" {line_no} | {line_text}\n"));
        let col = self.span.col.saturating_sub(1) as usize;
        let caret_len = self.span.len.max(1).min(line_text.chars().count().max(1));
        let carets = "^".repeat(caret_len);
        let hint = if self.expected.is_empty() {
            String::new()
        } else {
            format!(" expected {}", self.expected.join(" or "))
        };
        out.push_str(&format!(" {gutter} | {}{carets}{hint}\n", " ".repeat(col)));
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

impl std::error::Error for Diagnostic {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_caret_under_the_span() {
        let src = "var x = 0;\nbest = a[i]\n";
        let d = Diagnostic {
            source_name: "t.fv".into(),
            message: "expected `;`, found end of line".into(),
            span: Span {
                offset: 21,
                len: 1,
                line: 2,
                col: 11,
            },
            expected: vec!["`;`".into()],
        };
        let text = d.render(src);
        assert!(text.contains("--> t.fv:2:11"), "{text}");
        assert!(text.contains("best = a[i]"), "{text}");
        assert!(text.contains("^ expected `;`"), "{text}");
        assert_eq!(d.summary(), "t.fv:2:11: expected `;`, found end of line");
    }

    #[test]
    fn render_tolerates_out_of_range_spans() {
        let d = Diagnostic::new(
            "t.fv",
            "unexpected end of file",
            Span {
                offset: 99,
                len: 0,
                line: 40,
                col: 7,
            },
        );
        // Must not panic even when the span does not exist in the text.
        let text = d.render("short\n");
        assert!(text.contains("error: unexpected end of file"));
    }
}
