//! # flexvec-front
//!
//! The loop-language front end for the FlexVec reproduction: a lexer and
//! recursive-descent parser for `.fv` files — a small C-like language
//! that expresses exactly the loops `flexvec_ir::Program` can represent
//! (one countable `for` loop, `i64` scalars, symbolic arrays, `if` /
//! `else`, `break`) — plus:
//!
//! * **Diagnostics** ([`Diagnostic`]): every lex/parse error carries a
//!   [`Span`] (line, column, byte range) and renders a compiler-style
//!   caret snippet; parsing never panics, whatever the input.
//! * **A canonical pretty-printer** ([`to_fv`]): any `Program` prints to
//!   `.fv` text that reparses to an identical AST.
//! * **The compile cache** ([`CompileCache`]): analyze → vectorize →
//!   bytecode-compile results memoized in a sharded concurrent map,
//!   keyed by the stable AST hash — resubmitting a kernel is a lookup,
//!   not a recompilation.
//!
//! ```
//! use flexvec_front::{parse_str, to_fv, CompileCache};
//! use flexvec::SpecRequest;
//!
//! let src = "\
//! kernel minloc;
//! var i = 0;
//! var best = 9223372036854775807;
//! array a[64] = seed 1;
//! live_out best;
//! for (i = 0; i < 64; i++) {
//!   if (a[i] < best) {
//!     best = a[i];
//!   }
//! }
//! ";
//! let kernel = parse_str("minloc.fv", src)?;
//! assert_eq!(kernel.program.name, "minloc");
//!
//! // Round-trip: canonical text reparses to the same AST.
//! let reparsed = parse_str("<canonical>", &to_fv(&kernel.program))?;
//! assert_eq!(reparsed.program, kernel.program);
//!
//! // The pipeline runs once; the second submission is a cache hit.
//! let cache = CompileCache::new();
//! let (compiled, hit) = cache.get_or_compile(&kernel.program, SpecRequest::Auto);
//! assert!(!hit && compiled.plan.is_ok());
//! let (_, hit) = cache.get_or_compile(&kernel.program, SpecRequest::Auto);
//! assert!(hit && cache.compiles() == 1);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod diag;
mod lexer;
mod parser;
mod printer;

pub use cache::{verdict_summary, CacheOutcome, CompileCache, CompiledKernel, CompiledPlan};
pub use diag::{Diagnostic, Span};
pub use lexer::{is_keyword, lex, TokKind, Token};
pub use parser::{parse_str, seeded_array, ArrayInit, ArrayInput, ParsedKernel, DEFAULT_ARRAY_LEN};
pub use printer::{to_fv, to_fv_kernel};

/// Reads and parses a `.fv` file from disk. The path (lossily rendered)
/// becomes the diagnostic source name.
///
/// # Errors
///
/// I/O failures are wrapped in a [`Diagnostic`] pointing at the file
/// start; parse failures are returned as-is.
pub fn parse_file(path: &std::path::Path) -> Result<ParsedKernel, Diagnostic> {
    let name = path.display().to_string();
    let src = std::fs::read_to_string(path)
        .map_err(|e| Diagnostic::new(&name, format!("cannot read file: {e}"), Span::start()))?;
    parse_str(&name, &src)
}
