//! Recursive-descent parser: `.fv` text → [`ParsedKernel`].
//!
//! The grammar mirrors exactly the shapes `flexvec_ir::Program` can
//! represent — one countable `for` loop over `i64` scalars and symbolic
//! arrays — so every parse lowers directly through [`ProgramBuilder`]
//! with no desugaring gap, and the canonical printer
//! ([`crate::to_fv`]) round-trips any builder-produced program:
//!
//! ```text
//! kernel minloc;
//!
//! var i = 0;
//! var best = 9223372036854775807;
//! array a[64] = seed 1;
//! live_out best;
//!
//! for (i = 0; i < 64; i++) {
//!   if (a[i] < best) {
//!     best = a[i];
//!   }
//! }
//! ```
//!
//! Array initializers (`[len]`, `= seed s`, `= [1, 2, 3]`) are front-end
//! metadata describing the input data a driver should bind; they never
//! enter the [`Program`] itself, which keeps AST round-trips exact.

use flexvec_ir::build as b;
use flexvec_ir::{ArraySym, Expr, Program, ProgramBuilder, Stmt, VarId};

use crate::diag::{Diagnostic, Span};
use crate::lexer::{lex, TokKind, Token};

/// Nesting limit for expressions and statements: corrupted inputs with
/// pathological `((((...` runs get a diagnostic, not a stack overflow.
/// Each level of the precedence tower costs ~10 stack frames, so this
/// is sized to stay well inside a 2 MiB test-thread stack while being
/// an order of magnitude deeper than any real kernel nests.
const MAX_DEPTH: usize = 64;

/// Largest declarable array length — bounds what
/// [`ParsedKernel::materialize_arrays`] will allocate.
const MAX_ARRAY_LEN: u64 = 1 << 20;

/// How an `array` declaration asks for its input data to be produced.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ArrayInit {
    /// `array a;` — 64 zeros.
    Default,
    /// `array a[LEN];` — `LEN` zeros.
    Len(usize),
    /// `array a[LEN] = seed S;` — `LEN` pseudo-random values in `0..1000`
    /// from the deterministic LCG in [`seeded_array`].
    Seeded {
        /// Element count.
        len: usize,
        /// LCG seed.
        seed: u64,
    },
    /// `array a = [v0, v1, ...];` — the literal values.
    Explicit(Vec<i64>),
}

/// An array declaration plus its input-data recipe.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayInput {
    /// The array's name (matches the `Program` declaration).
    pub name: String,
    /// How to produce its data.
    pub init: ArrayInit,
}

/// A successfully parsed `.fv` file: the validated [`Program`] and the
/// input recipe for each declared array (positional, same order as
/// `program.arrays`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParsedKernel {
    /// The lowered, validated loop program.
    pub program: Program,
    /// One entry per declared array, in declaration order.
    pub inputs: Vec<ArrayInput>,
}

/// The default length for `array a;` declarations.
pub const DEFAULT_ARRAY_LEN: usize = 64;

/// Deterministic input generator: the same LCG the repo's randomized
/// equivalence tests use, so `.fv` seeds reproduce familiar data.
pub fn seeded_array(len: usize, seed: u64) -> Vec<i64> {
    let mut state = seed | 1;
    (0..len)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (((state >> 33) as i64) % 1000).abs()
        })
        .collect()
}

impl ParsedKernel {
    /// Produces the concrete input arrays, positionally matching
    /// `program.arrays`, ready for `AddressSpace::alloc_from`.
    pub fn materialize_arrays(&self) -> Vec<Vec<i64>> {
        self.inputs
            .iter()
            .map(|input| match &input.init {
                ArrayInit::Default => vec![0; DEFAULT_ARRAY_LEN],
                ArrayInit::Len(n) => vec![0; *n],
                ArrayInit::Seeded { len, seed } => seeded_array(*len, *seed),
                ArrayInit::Explicit(values) => values.clone(),
            })
            .collect()
    }
}

/// Parses one `.fv` kernel from `src`. `source_name` is echoed in
/// diagnostics (use the file path, or a synthetic name like `<memory>`).
///
/// # Errors
///
/// Returns a [`Diagnostic`] — with the offending [`Span`] and, for
/// expectation failures, the accepted-token list — on any lex or parse
/// error. Never panics, regardless of input.
pub fn parse_str(source_name: &str, src: &str) -> Result<ParsedKernel, Diagnostic> {
    let toks = lex(source_name, src)?;
    Parser {
        toks,
        pos: 0,
        source_name,
    }
    .file()
}

struct Parser<'a> {
    toks: Vec<Token>,
    pos: usize,
    source_name: &'a str,
}

impl Parser<'_> {
    fn peek(&self) -> &Token {
        // The token stream always ends with Eof; clamp for safety.
        &self.toks[self.pos.min(self.toks.len() - 1)]
    }

    fn peek2(&self) -> &TokKind {
        &self.toks[(self.pos + 1).min(self.toks.len() - 1)].kind
    }

    fn bump(&mut self) -> Token {
        let t = self.peek().clone();
        if self.pos < self.toks.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn at(&self, kind: &TokKind) -> bool {
        self.peek().kind == *kind
    }

    fn eat(&mut self, kind: &TokKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn error(&self, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic::new(self.source_name, message, span)
    }

    fn expected(&self, wanted: &[&str]) -> Diagnostic {
        let tok = self.peek();
        let mut d = self.error(
            format!(
                "expected {}, found {}",
                wanted.join(" or "),
                tok.kind.describe()
            ),
            tok.span,
        );
        d.expected = wanted.iter().map(|s| (*s).to_owned()).collect();
        d
    }

    fn expect(&mut self, kind: &TokKind) -> Result<Token, Diagnostic> {
        if self.at(kind) {
            Ok(self.bump())
        } else {
            Err(self.expected(&[&kind.describe()]))
        }
    }

    /// An identifier or quoted name.
    fn name(&mut self, what: &str) -> Result<(String, Span), Diagnostic> {
        let tok = self.peek().clone();
        match tok.kind {
            TokKind::Ident(name) => {
                self.bump();
                Ok((name, tok.span))
            }
            TokKind::Str(name) => {
                self.bump();
                Ok((name, tok.span))
            }
            _ => Err(self.expected(&[what])),
        }
    }

    /// A possibly-negative integer literal as an `i64`.
    fn int_lit(&mut self) -> Result<(i64, Span), Diagnostic> {
        let neg = self.at(&TokKind::Minus);
        if neg {
            self.bump();
        }
        let tok = self.peek().clone();
        let TokKind::Int(magnitude) = tok.kind else {
            return Err(self.expected(&["integer literal"]));
        };
        self.bump();
        self.to_signed(magnitude, neg, tok.span)
    }

    fn to_signed(&self, magnitude: u64, neg: bool, span: Span) -> Result<(i64, Span), Diagnostic> {
        if neg {
            if magnitude > (i64::MAX as u64) + 1 {
                return Err(self.error("integer literal below i64::MIN", span));
            }
            Ok(((magnitude as i64).wrapping_neg(), span))
        } else {
            if magnitude > i64::MAX as u64 {
                return Err(self.error("integer literal above i64::MAX", span));
            }
            Ok((magnitude as i64, span))
        }
    }

    fn file(mut self) -> Result<ParsedKernel, Diagnostic> {
        self.expect(&TokKind::KwKernel)?;
        let (kernel_name, _) = self.name("kernel name")?;
        self.expect(&TokKind::Semi)?;

        let mut builder = ProgramBuilder::new(&kernel_name);
        let mut vars: Vec<(String, VarId)> = Vec::new();
        let mut arrays: Vec<(String, ArraySym)> = Vec::new();
        let mut inputs: Vec<ArrayInput> = Vec::new();

        loop {
            if self.eat(&TokKind::KwVar) {
                let (name, span) = self.name("variable name")?;
                if vars.iter().any(|(n, _)| *n == name) {
                    return Err(self.error(format!("variable `{name}` declared twice"), span));
                }
                self.expect(&TokKind::Assign)?;
                let (init, _) = self.int_lit()?;
                self.expect(&TokKind::Semi)?;
                let id = builder.var(&name, init);
                vars.push((name, id));
            } else if self.eat(&TokKind::KwArray) {
                let (name, span) = self.name("array name")?;
                if arrays.iter().any(|(n, _)| *n == name) {
                    return Err(self.error(format!("array `{name}` declared twice"), span));
                }
                let init = self.array_init()?;
                let id = builder.array(&name);
                arrays.push((name.clone(), id));
                inputs.push(ArrayInput { name, init });
            } else if self.eat(&TokKind::KwLiveOut) {
                loop {
                    let (name, span) = self.name("variable name")?;
                    let Some((_, id)) = vars.iter().find(|(n, _)| *n == name) else {
                        return Err(self.error(
                            format!("live_out references undeclared variable `{name}`"),
                            span,
                        ));
                    };
                    builder.live_out(*id);
                    if !self.eat(&TokKind::Comma) {
                        break;
                    }
                }
                self.expect(&TokKind::Semi)?;
            } else if self.at(&TokKind::KwFor) {
                break;
            } else {
                return Err(self.expected(&["`var`", "`array`", "`live_out`", "`for`"]));
            }
        }

        let scope = Scope {
            vars: &vars,
            arrays: &arrays,
        };
        let for_span = self.peek().span;
        self.expect(&TokKind::KwFor)?;
        self.expect(&TokKind::LParen)?;
        let (ind_name, ind_span) = self.name("induction variable")?;
        let induction = scope.var(&self, &ind_name, ind_span)?;
        self.expect(&TokKind::Assign)?;
        let start = self.expr(&scope, 0)?;
        self.expect(&TokKind::Semi)?;
        let (cond_name, cond_span) = self.name("induction variable")?;
        if cond_name != ind_name {
            return Err(self.error(
                format!("loop condition must test `{ind_name}`, found `{cond_name}`"),
                cond_span,
            ));
        }
        self.expect(&TokKind::Lt)?;
        let end = self.expr(&scope, 0)?;
        self.expect(&TokKind::Semi)?;
        let (step_name, step_span) = self.name("induction variable")?;
        if step_name != ind_name {
            return Err(self.error(
                format!("loop step must increment `{ind_name}`, found `{step_name}`"),
                step_span,
            ));
        }
        self.expect(&TokKind::PlusPlus)?;
        self.expect(&TokKind::RParen)?;
        let body = self.block(&scope, 0)?;
        self.expect(&TokKind::Eof)?;

        let program = builder
            .build_loop(induction, start, end, body)
            .map_err(|e| self.error(format!("invalid loop: {e}"), for_span))?;
        Ok(ParsedKernel { program, inputs })
    }

    /// Everything after the name in an `array` declaration, through `;`.
    fn array_init(&mut self) -> Result<ArrayInit, Diagnostic> {
        if self.eat(&TokKind::Semi) {
            return Ok(ArrayInit::Default);
        }
        if self.eat(&TokKind::LBracket) {
            let len_tok = self.peek().clone();
            let TokKind::Int(len) = len_tok.kind else {
                return Err(self.expected(&["array length"]));
            };
            self.bump();
            if len > MAX_ARRAY_LEN {
                return Err(self.error(
                    format!("array length {len} exceeds the maximum {MAX_ARRAY_LEN}"),
                    len_tok.span,
                ));
            }
            self.expect(&TokKind::RBracket)?;
            let init = if self.eat(&TokKind::Assign) {
                self.expect(&TokKind::KwSeed)?;
                let seed_tok = self.peek().clone();
                let TokKind::Int(seed) = seed_tok.kind else {
                    return Err(self.expected(&["seed value"]));
                };
                self.bump();
                ArrayInit::Seeded {
                    len: len as usize,
                    seed,
                }
            } else {
                ArrayInit::Len(len as usize)
            };
            self.expect(&TokKind::Semi)?;
            return Ok(init);
        }
        if self.eat(&TokKind::Assign) {
            self.expect(&TokKind::LBracket)?;
            let mut values = Vec::new();
            if !self.at(&TokKind::RBracket) {
                loop {
                    let (v, span) = self.int_lit()?;
                    if values.len() as u64 >= MAX_ARRAY_LEN {
                        return Err(self.error(
                            format!("array literal exceeds the maximum length {MAX_ARRAY_LEN}"),
                            span,
                        ));
                    }
                    values.push(v);
                    if !self.eat(&TokKind::Comma) {
                        break;
                    }
                }
            }
            self.expect(&TokKind::RBracket)?;
            self.expect(&TokKind::Semi)?;
            return Ok(ArrayInit::Explicit(values));
        }
        Err(self.expected(&["`;`", "`[`", "`=`"]))
    }

    fn block(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Vec<Stmt>, Diagnostic> {
        if depth > MAX_DEPTH {
            return Err(self.error("statements nested too deeply", self.peek().span));
        }
        self.expect(&TokKind::LBrace)?;
        let mut body = Vec::new();
        while !self.eat(&TokKind::RBrace) {
            body.push(self.stmt(scope, depth)?);
        }
        Ok(body)
    }

    fn stmt(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Stmt, Diagnostic> {
        if self.eat(&TokKind::KwBreak) {
            self.expect(&TokKind::Semi)?;
            return Ok(b::brk());
        }
        if self.eat(&TokKind::KwIf) {
            self.expect(&TokKind::LParen)?;
            let cond = self.expr(scope, depth + 1)?;
            self.expect(&TokKind::RParen)?;
            let then_ = self.block(scope, depth + 1)?;
            let else_ = if self.eat(&TokKind::KwElse) {
                self.block(scope, depth + 1)?
            } else {
                Vec::new()
            };
            return Ok(b::if_else(cond, then_, else_));
        }
        if matches!(self.peek().kind, TokKind::Ident(_) | TokKind::Str(_)) {
            let (name, span) = self.name("name")?;
            if self.eat(&TokKind::LBracket) {
                let array = scope.array(self, &name, span)?;
                let index = self.expr(scope, depth + 1)?;
                self.expect(&TokKind::RBracket)?;
                self.expect(&TokKind::Assign)?;
                let value = self.expr(scope, depth + 1)?;
                self.expect(&TokKind::Semi)?;
                return Ok(b::store(array, index, value));
            }
            let var = scope.var(self, &name, span)?;
            self.expect(&TokKind::Assign)?;
            let value = self.expr(scope, depth + 1)?;
            self.expect(&TokKind::Semi)?;
            return Ok(b::assign(var, value));
        }
        Err(self.expected(&["`if`", "`break`", "an assignment", "`}`"]))
    }

    fn expr(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Expr, Diagnostic> {
        if depth > MAX_DEPTH {
            return Err(self.error("expression nested too deeply", self.peek().span));
        }
        self.bit_or(scope, depth)
    }

    fn bit_or(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Expr, Diagnostic> {
        let mut lhs = self.bit_xor(scope, depth)?;
        while self.eat(&TokKind::Pipe) {
            lhs = b::bor(lhs, self.bit_xor(scope, depth)?);
        }
        Ok(lhs)
    }

    fn bit_xor(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Expr, Diagnostic> {
        let mut lhs = self.bit_and(scope, depth)?;
        while self.eat(&TokKind::Caret) {
            lhs = b::bxor(lhs, self.bit_and(scope, depth)?);
        }
        Ok(lhs)
    }

    fn bit_and(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Expr, Diagnostic> {
        let mut lhs = self.comparison(scope, depth)?;
        while self.eat(&TokKind::Amp) {
            lhs = b::band(lhs, self.comparison(scope, depth)?);
        }
        Ok(lhs)
    }

    fn comparison(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Expr, Diagnostic> {
        let mut lhs = self.shift(scope, depth)?;
        loop {
            let build = match self.peek().kind {
                TokKind::EqEq => b::eq,
                TokKind::Ne => b::ne,
                TokKind::Lt => b::lt,
                TokKind::Le => b::le,
                TokKind::Gt => b::gt,
                TokKind::Ge => b::ge,
                _ => return Ok(lhs),
            };
            self.bump();
            lhs = build(lhs, self.shift(scope, depth)?);
        }
    }

    fn shift(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Expr, Diagnostic> {
        let mut lhs = self.add_sub(scope, depth)?;
        loop {
            let build = match self.peek().kind {
                TokKind::Shl => b::shl,
                TokKind::Shr => b::shr,
                _ => return Ok(lhs),
            };
            self.bump();
            lhs = build(lhs, self.add_sub(scope, depth)?);
        }
    }

    fn add_sub(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Expr, Diagnostic> {
        let mut lhs = self.mul_div(scope, depth)?;
        loop {
            let build = match self.peek().kind {
                TokKind::Plus => b::add,
                TokKind::Minus => b::sub,
                _ => return Ok(lhs),
            };
            self.bump();
            lhs = build(lhs, self.mul_div(scope, depth)?);
        }
    }

    fn mul_div(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Expr, Diagnostic> {
        let mut lhs = self.unary(scope, depth)?;
        loop {
            let build = match self.peek().kind {
                TokKind::Star => b::mul,
                TokKind::Slash => b::div,
                TokKind::Percent => b::rem,
                _ => return Ok(lhs),
            };
            self.bump();
            lhs = build(lhs, self.unary(scope, depth)?);
        }
    }

    fn unary(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Expr, Diagnostic> {
        if depth > MAX_DEPTH {
            return Err(self.error("expression nested too deeply", self.peek().span));
        }
        if self.eat(&TokKind::Bang) {
            return Ok(b::not(self.unary(scope, depth + 1)?));
        }
        if self.at(&TokKind::Minus) {
            let minus_span = self.peek().span;
            self.bump();
            // `-LITERAL` folds into the constant (the canonical printer
            // emits negative constants this way); `-expr` lowers to
            // `0 - expr`, which has identical wrapping semantics.
            if let TokKind::Int(magnitude) = self.peek().kind {
                let span = self.peek().span;
                self.bump();
                let (v, _) = self.to_signed(magnitude, true, span)?;
                return Ok(b::c(v));
            }
            let _ = minus_span;
            return Ok(b::sub(b::c(0), self.unary(scope, depth + 1)?));
        }
        self.primary(scope, depth)
    }

    fn primary(&mut self, scope: &Scope<'_>, depth: usize) -> Result<Expr, Diagnostic> {
        let tok = self.peek().clone();
        match tok.kind {
            TokKind::Int(magnitude) => {
                self.bump();
                let (v, _) = self.to_signed(magnitude, false, tok.span)?;
                Ok(b::c(v))
            }
            TokKind::LParen => {
                self.bump();
                let e = self.expr(scope, depth + 1)?;
                self.expect(&TokKind::RParen)?;
                Ok(e)
            }
            // `min`/`max` are soft keywords: calls only when followed by
            // `(`, otherwise plain names.
            TokKind::Ident(ref name)
                if (name == "min" || name == "max") && *self.peek2() == TokKind::LParen =>
            {
                let build = if name == "min" { b::min2 } else { b::max2 };
                self.bump();
                self.bump(); // `(`
                let lhs = self.expr(scope, depth + 1)?;
                self.expect(&TokKind::Comma)?;
                let rhs = self.expr(scope, depth + 1)?;
                self.expect(&TokKind::RParen)?;
                Ok(build(lhs, rhs))
            }
            TokKind::Ident(_) | TokKind::Str(_) => {
                let (name, span) = self.name("name")?;
                if self.eat(&TokKind::LBracket) {
                    let array = scope.array(self, &name, span)?;
                    let index = self.expr(scope, depth + 1)?;
                    self.expect(&TokKind::RBracket)?;
                    Ok(b::ld(array, index))
                } else {
                    Ok(b::var(scope.var(self, &name, span)?))
                }
            }
            _ => Err(self.expected(&["an expression"])),
        }
    }
}

/// Name resolution: scalars and arrays live in separate namespaces (use
/// sites are always syntactically unambiguous — `a[...]` vs `a`).
struct Scope<'a> {
    vars: &'a [(String, VarId)],
    arrays: &'a [(String, ArraySym)],
}

impl Scope<'_> {
    fn var(&self, p: &Parser<'_>, name: &str, span: Span) -> Result<VarId, Diagnostic> {
        if let Some((_, id)) = self.vars.iter().find(|(n, _)| n == name) {
            return Ok(*id);
        }
        let msg = if self.arrays.iter().any(|(n, _)| n == name) {
            format!("`{name}` is an array, but is used as a scalar variable")
        } else {
            format!("undeclared variable `{name}`")
        };
        Err(p.error(msg, span))
    }

    fn array(&self, p: &Parser<'_>, name: &str, span: Span) -> Result<ArraySym, Diagnostic> {
        if let Some((_, id)) = self.arrays.iter().find(|(n, _)| n == name) {
            return Ok(*id);
        }
        let msg = if self.vars.iter().any(|(n, _)| n == name) {
            format!("`{name}` is a scalar variable, but is indexed like an array")
        } else {
            format!("undeclared array `{name}`")
        };
        Err(p.error(msg, span))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvec_ir::build::*;

    const MINLOC: &str = "\
kernel minloc;
var i = 0;
var best = 9223372036854775807;
var best_i = -1;
array a[64] = seed 3;
live_out best, best_i;
for (i = 0; i < 64; i++) {
  if (a[i] < best) {
    best = a[i];
    best_i = i;
  }
}
";

    #[test]
    fn parses_minloc() {
        let k = parse_str("minloc.fv", MINLOC).expect("parses");
        assert_eq!(k.program.name, "minloc");
        assert_eq!(k.program.var_count(), 3);
        assert_eq!(k.program.array_count(), 1);
        assert_eq!(k.program.live_out.len(), 2);
        assert_eq!(k.inputs[0].init, ArrayInit::Seeded { len: 64, seed: 3 });
        let data = k.materialize_arrays();
        assert_eq!(data[0].len(), 64);
        assert!(data[0].iter().all(|&v| (0..1000).contains(&v)));
    }

    #[test]
    fn parses_expected_ast_shape() {
        let src = "\
kernel t;
var i = 0;
var s = 0;
array a;
for (i = 0; i < 8; i++) {
  s = min(s + a[i], 100);
}
";
        let k = parse_str("t.fv", src).expect("parses");
        let mut builder = ProgramBuilder::new("t");
        let i = builder.var("i", 0);
        let s = builder.var("s", 0);
        let a = builder.array("a");
        let expected = builder
            .build_loop(
                i,
                c(0),
                c(8),
                vec![assign(s, min2(add(var(s), ld(a, var(i))), c(100)))],
            )
            .unwrap();
        assert_eq!(k.program, expected);
    }

    #[test]
    fn precedence_mul_binds_tighter_than_add() {
        let src = "\
kernel t;
var i = 0;
var x = 0;
for (i = 0; i < 4; i++) {
  x = 1 + 2 * 3;
}
";
        let k = parse_str("t.fv", src).unwrap();
        let Stmt::Assign { value, .. } = &k.program.loop_.body[0] else {
            panic!("expected assign");
        };
        assert_eq!(*value, add(c(1), mul(c(2), c(3))));
    }

    #[test]
    fn negative_literals_and_i64_min() {
        let src = "\
kernel t;
var i = 0;
var x = -9223372036854775808;
for (i = 0; i < 1; i++) {
  x = -5 + -x;
}
";
        let k = parse_str("t.fv", src).unwrap();
        assert_eq!(k.program.vars[1].init, i64::MIN);
        let Stmt::Assign { value, .. } = &k.program.loop_.body[0] else {
            panic!("expected assign");
        };
        assert_eq!(*value, add(c(-5), sub(c(0), var(flexvec_ir::VarId(1)))));
    }

    #[test]
    fn diagnostics_carry_position_and_expectations() {
        let src = "kernel t;\nvar i = 0;\nfor (i = 0; i < 4; i++) {\n  i 5;\n}\n";
        let err = parse_str("t.fv", src).unwrap_err();
        assert_eq!(err.span.line, 4);
        assert!(err.message.contains("expected"), "{}", err.message);
        assert!(!err.expected.is_empty());
        // Render must not panic and must include the caret line.
        assert!(err.render(src).contains('^'));
    }

    #[test]
    fn undeclared_and_misused_names() {
        let base = "kernel t;\nvar i = 0;\narray a;\nfor (i = 0; i < 4; i++) {\n";
        let undeclared = format!("{base}  q = 1;\n}}\n");
        let err = parse_str("t.fv", &undeclared).unwrap_err();
        assert!(err.message.contains("undeclared variable `q`"));

        let misused = format!("{base}  i[0] = 1;\n}}\n");
        let err = parse_str("t.fv", &misused).unwrap_err();
        assert!(
            err.message.contains("indexed like an array"),
            "{}",
            err.message
        );

        let as_scalar = format!("{base}  a = 1;\n}}\n");
        let err = parse_str("t.fv", &as_scalar).unwrap_err();
        assert!(err.message.contains("used as a scalar"), "{}", err.message);
    }

    #[test]
    fn build_errors_become_diagnostics() {
        let src = "\
kernel t;
var i = 0;
for (i = 0; i < 4; i++) {
  i = 0;
}
";
        let err = parse_str("t.fv", src).unwrap_err();
        assert!(err.message.contains("invalid loop"), "{}", err.message);
        assert_eq!(err.span.line, 3); // anchored at the `for`
    }

    #[test]
    fn array_initializer_forms() {
        let src = "\
kernel t;
var i = 0;
array a;
array b[10];
array c_arr[4] = seed 9;
array d = [1, -2, 3];
array e = [];
for (i = 0; i < 1; i++) {
}
";
        let k = parse_str("t.fv", src).unwrap();
        assert_eq!(k.inputs[0].init, ArrayInit::Default);
        assert_eq!(k.inputs[1].init, ArrayInit::Len(10));
        assert_eq!(k.inputs[2].init, ArrayInit::Seeded { len: 4, seed: 9 });
        assert_eq!(k.inputs[3].init, ArrayInit::Explicit(vec![1, -2, 3]));
        assert_eq!(k.inputs[4].init, ArrayInit::Explicit(vec![]));
        let data = k.materialize_arrays();
        assert_eq!(data[0], vec![0; DEFAULT_ARRAY_LEN]);
        assert_eq!(data[1], vec![0; 10]);
        assert_eq!(data[3], vec![1, -2, 3]);
    }

    #[test]
    fn quoted_names_and_keyword_collisions() {
        let src = "\
kernel \"for\";
var \"if\" = 1;
var i = 0;
for (i = 0; i < 2; i++) {
  \"if\" = \"if\" + 1;
}
";
        let k = parse_str("t.fv", src).unwrap();
        assert_eq!(k.program.name, "for");
        assert_eq!(k.program.vars[0].name, "if");
    }

    #[test]
    fn deep_nesting_is_a_diagnostic_not_an_overflow() {
        let mut src =
            String::from("kernel t;\nvar i = 0;\nvar x = 0;\nfor (i = 0; i < 1; i++) {\n  x = ");
        src.push_str(&"(".repeat(5000));
        src.push('1');
        src.push_str(&")".repeat(5000));
        src.push_str(";\n}\n");
        let err = parse_str("t.fv", &src).unwrap_err();
        assert!(err.message.contains("nested too deeply"), "{}", err.message);
    }

    #[test]
    fn loop_header_must_use_one_induction_variable() {
        let src = "\
kernel t;
var i = 0;
var j = 0;
for (i = 0; j < 4; i++) {
}
";
        let err = parse_str("t.fv", src).unwrap_err();
        assert!(err.message.contains("loop condition"), "{}", err.message);
    }
}
