//! Known semantic mutants for mutation-testing the harness.
//!
//! Each mutant is a real bug class from the FlexVec code generator's
//! design space, injected into an otherwise-correct vector program.
//! The harness proves its teeth by catching every mutant and shrinking
//! the witness to a small standalone repro.

use flexvec::{VNode, VOp, VProg};

/// A deliberate semantic corruption of a vectorized program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mutant {
    /// Swap every `KFTM` between inclusive and exclusive mask-to-first
    /// semantics: partition boundaries shift by one lane, so an early
    /// exit executes one lane too few (or a conflicting lane lands in
    /// the same partition as its dependency).
    KftmSwap,
    /// Drop every `VPSLCTLAST` broadcast: the scalar propagated from the
    /// last active lane of a partition never reaches the next one, so
    /// later partitions and chunks compute with stale values.
    DropSelectLast,
}

impl Mutant {
    /// Every known mutant.
    pub const ALL: [Mutant; 2] = [Mutant::KftmSwap, Mutant::DropSelectLast];

    /// Stable short name (used for repro file names and reports).
    pub fn name(self) -> &'static str {
        match self {
            Mutant::KftmSwap => "kftm-swap",
            Mutant::DropSelectLast => "drop-selectlast",
        }
    }

    /// One-line description of the injected bug.
    pub fn describe(self) -> &'static str {
        match self {
            Mutant::KftmSwap => "KFTM inclusive<->exclusive swap",
            Mutant::DropSelectLast => "dropped VPSLCTLAST broadcast",
        }
    }

    /// Applies the mutation in place. Returns whether anything changed
    /// (a program without the targeted instruction cannot express this
    /// bug, so there is nothing to catch).
    pub fn apply(self, vprog: &mut VProg) -> bool {
        mutate_nodes(&mut vprog.body, self)
    }
}

fn mutate_nodes(nodes: &mut Vec<VNode>, mutant: Mutant) -> bool {
    let mut changed = false;
    for node in nodes.iter_mut() {
        match node {
            VNode::Op(VOp::Kftm { inclusive, .. }) if mutant == Mutant::KftmSwap => {
                *inclusive = !*inclusive;
                changed = true;
            }
            VNode::Vpl { body, .. } => changed |= mutate_nodes(body, mutant),
            _ => {}
        }
    }
    if mutant == Mutant::DropSelectLast {
        let before = nodes.len();
        nodes.retain(|n| !matches!(n, VNode::Op(VOp::SelectLast { .. })));
        changed |= nodes.len() != before;
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvec::{vectorize, SpecRequest};
    use flexvec_ir::build::*;
    use flexvec_ir::ProgramBuilder;

    fn cond_min() -> flexvec_ir::Program {
        let mut b = ProgramBuilder::new("cond-min");
        let i = b.var("i", 0);
        let best = b.var("best", i64::MAX);
        let a = b.array("a");
        b.live_out(best);
        b.build_loop(
            i,
            c(0),
            c(64),
            vec![if_(
                lt(ld(a, var(i)), var(best)),
                vec![assign(best, ld(a, var(i)))],
            )],
        )
        .unwrap()
    }

    #[test]
    fn mutants_apply_to_flexvec_codegen() {
        let vectorized = vectorize(&cond_min(), SpecRequest::Auto).unwrap();
        for mutant in Mutant::ALL {
            let mut vprog = vectorized.vprog.clone();
            assert!(mutant.apply(&mut vprog), "{} must apply", mutant.name());
            assert_ne!(
                vprog.body,
                vectorized.vprog.body,
                "{} must change",
                mutant.name()
            );
        }
    }

    #[test]
    fn applying_twice_restores_the_swap() {
        let vectorized = vectorize(&cond_min(), SpecRequest::Auto).unwrap();
        let mut vprog = vectorized.vprog.clone();
        Mutant::KftmSwap.apply(&mut vprog);
        Mutant::KftmSwap.apply(&mut vprog);
        assert_eq!(
            vprog.body, vectorized.vprog.body,
            "double swap is the identity"
        );
    }
}
