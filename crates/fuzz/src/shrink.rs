//! Delta-debugging repro shrinking.
//!
//! Given a failing case and a predicate ("still diverges"), [`shrink`]
//! greedily minimizes along every axis the generator varies — body
//! statements, trip count, live-outs, array contents, initial values,
//! embedded constants, and finally unused declarations — re-running the
//! predicate after each candidate edit and keeping only edits that
//! preserve the failure. The passes repeat to a fixpoint under an
//! evaluation budget, so shrinking a pathological case terminates.

use flexvec_ir::{Expr, Stmt, VarId};

use crate::gen::FuzzCase;

struct Shrinker<'a> {
    fails: &'a mut dyn FnMut(&FuzzCase) -> bool,
    evals: usize,
    max_evals: usize,
}

impl Shrinker<'_> {
    fn exhausted(&self) -> bool {
        self.evals >= self.max_evals
    }

    /// Evaluates a candidate; on a preserved failure it becomes the new
    /// best and `true` is returned.
    fn try_improve(&mut self, best: &mut FuzzCase, candidate: FuzzCase) -> bool {
        if self.exhausted() || candidate == *best {
            return false;
        }
        self.evals += 1;
        if (self.fails)(&candidate) {
            *best = candidate;
            true
        } else {
            false
        }
    }
}

fn count_stmts(body: &[Stmt]) -> usize {
    body.iter()
        .map(|s| match s {
            Stmt::If { then_, else_, .. } => 1 + count_stmts(then_) + count_stmts(else_),
            _ => 1,
        })
        .sum()
}

/// Removes the `k`-th statement in pre-order (an `If` counts before its
/// branches). Returns whether a removal happened.
fn remove_nth(body: &mut Vec<Stmt>, k: &mut usize) -> bool {
    let mut i = 0;
    while i < body.len() {
        if *k == 0 {
            body.remove(i);
            return true;
        }
        *k -= 1;
        if let Stmt::If { then_, else_, .. } = &mut body[i] {
            if remove_nth(then_, k) || remove_nth(else_, k) {
                return true;
            }
        }
        i += 1;
    }
    false
}

fn pass_delete_stmts(sh: &mut Shrinker<'_>, best: &mut FuzzCase) -> bool {
    let mut improved = false;
    'restart: loop {
        let total = count_stmts(&best.program.loop_.body);
        for idx in 0..total {
            let mut candidate = best.clone();
            let mut k = idx;
            if remove_nth(&mut candidate.program.loop_.body, &mut k)
                && sh.try_improve(best, candidate)
            {
                improved = true;
                continue 'restart; // indices shifted; re-enumerate
            }
            if sh.exhausted() {
                return improved;
            }
        }
        return improved;
    }
}

fn pass_trip_count(sh: &mut Shrinker<'_>, best: &mut FuzzCase) -> bool {
    let (Expr::Const(start), Expr::Const(end)) =
        (&best.program.loop_.start, &best.program.loop_.end)
    else {
        return false;
    };
    let (start, end) = (*start, *end);
    for trips in [0i64, 1, 2, 3, 4, 8, 15, 16, 17, 24, 32, 48] {
        let Some(new_end) = start.checked_add(trips) else {
            continue;
        };
        if new_end >= end {
            continue;
        }
        let mut candidate = best.clone();
        candidate.program.loop_.end = Expr::Const(new_end);
        if sh.try_improve(best, candidate) {
            return true; // trips ascend, so the first success is minimal
        }
    }
    false
}

fn pass_live_outs(sh: &mut Shrinker<'_>, best: &mut FuzzCase) -> bool {
    let mut improved = false;
    let mut idx = 0;
    while idx < best.program.live_out.len() && best.program.live_out.len() > 1 {
        let mut candidate = best.clone();
        candidate.program.live_out.remove(idx);
        if sh.try_improve(best, candidate) {
            improved = true; // same index now names the next entry
        } else {
            idx += 1;
        }
    }
    improved
}

fn pass_arrays(sh: &mut Shrinker<'_>, best: &mut FuzzCase) -> bool {
    let mut improved = false;
    for a in 0..best.arrays.len() {
        if best.arrays[a].iter().all(|&v| v == 0) {
            continue;
        }
        let mut candidate = best.clone();
        candidate.arrays[a].fill(0);
        if sh.try_improve(best, candidate) {
            improved = true;
            continue;
        }
        let first = best.arrays[a][0];
        let mut candidate = best.clone();
        candidate.arrays[a].fill(first);
        improved |= sh.try_improve(best, candidate);
        for e in 0..best.arrays[a].len() {
            if best.arrays[a][e] == 0 {
                continue;
            }
            let mut candidate = best.clone();
            candidate.arrays[a][e] = 0;
            improved |= sh.try_improve(best, candidate);
        }
    }
    improved
}

fn pass_var_inits(sh: &mut Shrinker<'_>, best: &mut FuzzCase) -> bool {
    let mut improved = false;
    for v in 0..best.program.vars.len() {
        if best.program.vars[v].init == 0 {
            continue;
        }
        let mut candidate = best.clone();
        candidate.program.vars[v].init = 0;
        improved |= sh.try_improve(best, candidate);
    }
    improved
}

fn visit_consts(e: &mut Expr, f: &mut dyn FnMut(&mut i64)) {
    match e {
        Expr::Const(c) => f(c),
        Expr::Var(_) => {}
        Expr::Load { index, .. } => visit_consts(index, f),
        Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            visit_consts(lhs, f);
            visit_consts(rhs, f);
        }
        Expr::Not(inner) => visit_consts(inner, f),
    }
}

fn visit_body_consts(body: &mut [Stmt], f: &mut dyn FnMut(&mut i64)) {
    for s in body {
        match s {
            Stmt::Assign { value, .. } => visit_consts(value, f),
            Stmt::Store { index, value, .. } => {
                visit_consts(index, f);
                visit_consts(value, f);
            }
            Stmt::If { cond, then_, else_ } => {
                visit_consts(cond, f);
                visit_body_consts(then_, f);
                visit_body_consts(else_, f);
            }
            Stmt::Break => {}
        }
    }
}

/// Shrinks the constants embedded in body expressions toward 0 (the
/// loop bounds are handled by [`pass_trip_count`]).
fn pass_body_consts(sh: &mut Shrinker<'_>, best: &mut FuzzCase) -> bool {
    let mut values = Vec::new();
    visit_body_consts(&mut best.program.loop_.body.clone(), &mut |c| {
        values.push(*c)
    });
    let mut improved = false;
    for (idx, value) in values.into_iter().enumerate() {
        for replacement in [0i64, 1, value / 2] {
            if replacement == value {
                continue;
            }
            let mut candidate = best.clone();
            let mut seen = 0usize;
            visit_body_consts(&mut candidate.program.loop_.body, &mut |c| {
                if seen == idx {
                    *c = replacement;
                }
                seen += 1;
            });
            if sh.try_improve(best, candidate) {
                improved = true;
                break;
            }
        }
        if sh.exhausted() {
            break;
        }
    }
    improved
}

fn mark_expr(e: &Expr, vars: &mut [bool], arrays: &mut [bool]) {
    match e {
        Expr::Const(_) => {}
        Expr::Var(v) => vars[v.0 as usize] = true,
        Expr::Load { array, index } => {
            arrays[array.0 as usize] = true;
            mark_expr(index, vars, arrays);
        }
        Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            mark_expr(lhs, vars, arrays);
            mark_expr(rhs, vars, arrays);
        }
        Expr::Not(inner) => mark_expr(inner, vars, arrays),
    }
}

fn mark_body(body: &[Stmt], vars: &mut [bool], arrays: &mut [bool]) {
    for s in body {
        match s {
            Stmt::Assign { var, value } => {
                vars[var.0 as usize] = true;
                mark_expr(value, vars, arrays);
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                arrays[array.0 as usize] = true;
                mark_expr(index, vars, arrays);
                mark_expr(value, vars, arrays);
            }
            Stmt::If { cond, then_, else_ } => {
                mark_expr(cond, vars, arrays);
                mark_body(then_, vars, arrays);
                mark_body(else_, vars, arrays);
            }
            Stmt::Break => {}
        }
    }
}

fn remap_expr(e: &mut Expr, vmap: &[u32], amap: &[u32]) {
    match e {
        Expr::Const(_) => {}
        Expr::Var(v) => v.0 = vmap[v.0 as usize],
        Expr::Load { array, index } => {
            array.0 = amap[array.0 as usize];
            remap_expr(index, vmap, amap);
        }
        Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
            remap_expr(lhs, vmap, amap);
            remap_expr(rhs, vmap, amap);
        }
        Expr::Not(inner) => remap_expr(inner, vmap, amap),
    }
}

fn remap_body(body: &mut [Stmt], vmap: &[u32], amap: &[u32]) {
    for s in body {
        match s {
            Stmt::Assign { var, value } => {
                var.0 = vmap[var.0 as usize];
                remap_expr(value, vmap, amap);
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                array.0 = amap[array.0 as usize];
                remap_expr(index, vmap, amap);
                remap_expr(value, vmap, amap);
            }
            Stmt::If { cond, then_, else_ } => {
                remap_expr(cond, vmap, amap);
                remap_body(then_, vmap, amap);
                remap_body(else_, vmap, amap);
            }
            Stmt::Break => {}
        }
    }
}

/// Drops declarations nothing references anymore (statement deletion
/// leaves them behind), remapping every `VarId`/`ArraySym`. Semantics
/// are unchanged, so the predicate is still re-checked by the caller's
/// `try_improve`.
fn prune_decls(case: &FuzzCase) -> Option<FuzzCase> {
    let p = &case.program;
    let mut vars = vec![false; p.vars.len()];
    let mut arrays = vec![false; p.arrays.len()];
    vars[p.loop_.induction.0 as usize] = true;
    for v in &p.live_out {
        vars[v.0 as usize] = true;
    }
    mark_expr(&p.loop_.start, &mut vars, &mut arrays);
    mark_expr(&p.loop_.end, &mut vars, &mut arrays);
    mark_body(&p.loop_.body, &mut vars, &mut arrays);
    if vars.iter().all(|&u| u) && arrays.iter().all(|&u| u) {
        return None;
    }

    let mut vmap = vec![0u32; vars.len()];
    let mut next = 0u32;
    for (old, used) in vars.iter().enumerate() {
        if *used {
            vmap[old] = next;
            next += 1;
        }
    }
    let mut amap = vec![0u32; arrays.len()];
    let mut next = 0u32;
    for (old, used) in arrays.iter().enumerate() {
        if *used {
            amap[old] = next;
            next += 1;
        }
    }

    let mut out = case.clone();
    let p = &mut out.program;
    p.vars = p
        .vars
        .iter()
        .zip(&vars)
        .filter(|(_, used)| **used)
        .map(|(d, _)| d.clone())
        .collect();
    p.arrays = p
        .arrays
        .iter()
        .zip(&arrays)
        .filter(|(_, used)| **used)
        .map(|(d, _)| d.clone())
        .collect();
    out.arrays = out
        .arrays
        .iter()
        .zip(&arrays)
        .filter(|(_, used)| **used)
        .map(|(d, _)| d.clone())
        .collect();
    p.loop_.induction = VarId(vmap[p.loop_.induction.0 as usize]);
    for v in &mut p.live_out {
        v.0 = vmap[v.0 as usize];
    }
    let (mut start, mut end) = (p.loop_.start.clone(), p.loop_.end.clone());
    remap_expr(&mut start, &vmap, &amap);
    remap_expr(&mut end, &vmap, &amap);
    p.loop_.start = start;
    p.loop_.end = end;
    let mut body = std::mem::take(&mut p.loop_.body);
    remap_body(&mut body, &vmap, &amap);
    p.loop_.body = body;
    Some(out)
}

fn pass_prune_decls(sh: &mut Shrinker<'_>, best: &mut FuzzCase) -> bool {
    match prune_decls(best) {
        Some(candidate) => sh.try_improve(best, candidate),
        None => false,
    }
}

/// Minimizes `case` while `fails` keeps returning `true`, spending at
/// most `max_evals` predicate evaluations. The input case is assumed to
/// fail; the result is the smallest failing case found.
pub fn shrink(
    case: &FuzzCase,
    max_evals: usize,
    fails: &mut dyn FnMut(&FuzzCase) -> bool,
) -> FuzzCase {
    let mut best = case.clone();
    let mut sh = Shrinker {
        fails,
        evals: 0,
        max_evals,
    };
    loop {
        let mut improved = false;
        improved |= pass_delete_stmts(&mut sh, &mut best);
        improved |= pass_trip_count(&mut sh, &mut best);
        improved |= pass_live_outs(&mut sh, &mut best);
        improved |= pass_arrays(&mut sh, &mut best);
        improved |= pass_var_inits(&mut sh, &mut best);
        improved |= pass_body_consts(&mut sh, &mut best);
        improved |= pass_prune_decls(&mut sh, &mut best);
        if !improved || sh.exhausted() {
            return best;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    #[test]
    fn a_never_satisfied_predicate_leaves_the_case_alone() {
        let case = generate(1, 0);
        let shrunk = shrink(&case, 200, &mut |_| false);
        assert_eq!(shrunk, case);
    }

    #[test]
    fn an_always_satisfied_predicate_minimizes_hard() {
        // With a vacuous failure predicate the shrinker should strip
        // the case down to (nearly) nothing: no statements, no
        // non-zero data, a tiny trip count, a single live-out, and no
        // unused declarations left behind.
        let case = generate(1, 3);
        let shrunk = shrink(&case, 2000, &mut |_| true);
        assert!(count_stmts(&shrunk.program.loop_.body) <= 1);
        assert_eq!(shrunk.program.live_out.len(), 1);
        assert!(shrunk.arrays.iter().flatten().all(|&v| v == 0));
        assert!(
            shrunk.program.vars.len() <= 2,
            "unused declarations pruned: {:?}",
            shrunk.program.vars
        );
        if let Expr::Const(end) = shrunk.program.loop_.end {
            assert!(end <= 8, "trip count shrunk, got end {end}");
        }
    }

    #[test]
    fn pruning_remaps_ids_consistently() {
        // Delete every statement, then prune: the program must stay
        // internally consistent (every id in range).
        let mut case = generate(9, 12);
        case.program.loop_.body.clear();
        let pruned = prune_decls(&case).expect("something to prune");
        let p = &pruned.program;
        assert!((p.loop_.induction.0 as usize) < p.vars.len());
        for v in &p.live_out {
            assert!((v.0 as usize) < p.vars.len());
        }
        assert_eq!(pruned.arrays.len(), p.arrays.len());
    }
}
