//! The differential check: one case, every execution path.
//!
//! The scalar interpreter is the oracle. Each speculation mode that the
//! vectorizer accepts runs under the tree-walking engine, the compiled
//! engine, and — on hosts with the x86-64 back end — the native JIT
//! tier, at **every supported vector length** (8, 16, 32, 64), and
//! every observable — live-out scalars, the induction exit value, the
//! break flag, the iteration count, and final memory — must equal the
//! oracle's. At each width the engines must additionally be
//! bit-identical to each other (statistics and full µop traces). A
//! width above the program's analysis-proven ceiling (`VProg::max_vl`)
//! must be a clean [`flexvec_vm::ExecError::UnsupportedWidth`] refusal
//! from every engine — silently executing past the ceiling, or failing
//! with any other error, is a divergence. When a compile cache is
//! supplied the case also round-trips through the `.fv` printer/parser
//! and the cached-vs-fresh compile path.

use std::sync::Arc;

use flexvec::{vectorize, SpecRequest, VProg};
use flexvec_front::{parse_str, to_fv_kernel, CompileCache};
use flexvec_isa::{with_vlen, SUPPORTED_VLENS};
use flexvec_mem::{AddressSpace, ArrayId};
use flexvec_vm::{
    deserialize_compiled, native_supported, run_scalar, run_vector_precompiled,
    run_vector_with_engine, serialize_compiled, Bindings, CountingSink, Engine, ExecError,
    RunResult, SerialLimits, Uop, VecSink, VectorStats,
};

use crate::explicit_inputs;
use crate::gen::FuzzCase;

/// Every speculation mode the checker exercises, with its display name.
pub const SPECS: [(&str, SpecRequest); 4] = [
    ("ff", SpecRequest::Auto),
    ("rtm:16", SpecRequest::Rtm { tile: 16 }),
    ("rtm:64", SpecRequest::Rtm { tile: 64 }),
    ("rtm:256", SpecRequest::Rtm { tile: 256 }),
];

/// What to check beyond the engine × spec matrix.
pub struct CheckConfig<'a> {
    /// When set, also run the front-end round-trip and the
    /// cached-vs-fresh compile path through this cache.
    pub front_end: Option<&'a CompileCache>,
    /// Mutation-testing hook: applied to each vectorized program before
    /// execution. Returns whether the mutation applied; specs where it
    /// does not apply are skipped. Divergences then demonstrate the
    /// harness catches that class of codegen bug.
    pub mutate: Option<&'a dyn Fn(&mut VProg) -> bool>,
}

/// A detected disagreement between two execution paths.
#[derive(Debug, Clone)]
pub struct Divergence {
    /// Which path disagreed (e.g. `ff/compiled`, `front/reparse`).
    pub config: String,
    /// Expected-vs-actual description.
    pub detail: String,
}

/// Work accounting for a clean check.
#[derive(Debug, Default, Clone, Copy)]
pub struct CheckStats {
    /// Vector executions performed and compared against the oracle.
    pub vector_runs: u64,
    /// Spec modes the vectorizer (legitimately) rejected for this case.
    pub rejected_specs: u64,
    /// (spec, width) combinations above the program's width ceiling
    /// that every engine cleanly refused with `UnsupportedWidth`.
    pub rejected_widths: u64,
}

fn diverged<T>(config: &str, detail: String) -> Result<T, Divergence> {
    Err(Divergence {
        config: config.to_owned(),
        detail,
    })
}

fn bind(case: &FuzzCase, mem: &mut AddressSpace) -> Vec<ArrayId> {
    case.arrays
        .iter()
        .enumerate()
        .map(|(i, d)| mem.alloc_from(&format!("a{i}"), d))
        .collect()
}

struct Oracle {
    result: RunResult,
    memory: Vec<Vec<i64>>,
}

struct VectorRun {
    result: RunResult,
    stats: VectorStats,
    memory: Vec<Vec<i64>>,
    uops: Vec<Uop>,
}

fn run_oracle(case: &FuzzCase) -> Result<Oracle, Divergence> {
    let mut mem = AddressSpace::new();
    let ids = bind(case, &mut mem);
    let mut sink = CountingSink::default();
    match run_scalar(
        &case.program,
        &mut mem,
        Bindings::new(ids.clone()),
        &mut sink,
    ) {
        Ok(result) => Ok(Oracle {
            result,
            memory: ids.iter().map(|id| mem.snapshot_array(*id)).collect(),
        }),
        Err(e) => diverged("scalar", format!("scalar reference failed: {e:?}")),
    }
}

fn run_engine(case: &FuzzCase, vprog: &VProg, engine: Engine) -> Result<VectorRun, ExecError> {
    let mut mem = AddressSpace::new();
    let ids = bind(case, &mut mem);
    let mut sink = VecSink::default();
    let (result, stats) = run_vector_with_engine(
        &case.program,
        vprog,
        &mut mem,
        Bindings::new(ids.clone()),
        &mut sink,
        engine,
    )?;
    Ok(VectorRun {
        result,
        stats,
        memory: ids.iter().map(|id| mem.snapshot_array(*id)).collect(),
        uops: sink.uops,
    })
}

fn compare_to_oracle(
    case: &FuzzCase,
    config: &str,
    oracle: &Oracle,
    result: &RunResult,
    memory: &[Vec<i64>],
) -> Result<(), Divergence> {
    let p = &case.program;
    for v in &p.live_out {
        let (want, got) = (oracle.result.var(*v), result.var(*v));
        if want != got {
            return diverged(
                config,
                format!("live-out `{}`: expected {want}, got {got}", p.var_name(*v)),
            );
        }
    }
    let ind = p.loop_.induction;
    if oracle.result.var(ind) != result.var(ind) {
        return diverged(
            config,
            format!(
                "induction `{}` exit value: expected {}, got {}",
                p.var_name(ind),
                oracle.result.var(ind),
                result.var(ind)
            ),
        );
    }
    if oracle.result.broke != result.broke {
        return diverged(
            config,
            format!(
                "break flag: expected {}, got {}",
                oracle.result.broke, result.broke
            ),
        );
    }
    if oracle.result.iterations != result.iterations {
        return diverged(
            config,
            format!(
                "iteration count: expected {}, got {}",
                oracle.result.iterations, result.iterations
            ),
        );
    }
    for (a, (want, got)) in oracle.memory.iter().zip(memory).enumerate() {
        if let Some(idx) = (0..want.len()).find(|&i| want[i] != got[i]) {
            return diverged(
                config,
                format!(
                    "memory `{}`[{idx}]: expected {}, got {}",
                    p.arrays[a].name, want[idx], got[idx]
                ),
            );
        }
    }
    Ok(())
}

fn compare_engines(config: &str, tree: &VectorRun, other: &VectorRun) -> Result<(), Divergence> {
    if tree.stats != other.stats {
        return diverged(
            config,
            format!(
                "engine statistics differ: tree {:?}, other {:?}",
                tree.stats, other.stats
            ),
        );
    }
    if tree.uops != other.uops {
        let idx = tree
            .uops
            .iter()
            .zip(&other.uops)
            .position(|(a, b)| a != b)
            .unwrap_or_else(|| tree.uops.len().min(other.uops.len()));
        return diverged(
            config,
            format!(
                "µop traces differ at index {idx} (tree {} µops, other {} µops)",
                tree.uops.len(),
                other.uops.len()
            ),
        );
    }
    Ok(())
}

/// The engine matrix: the native tier joins on hosts that have it.
fn engine_matrix() -> Vec<(&'static str, Engine)> {
    let mut engines = vec![
        ("tree", Engine::TreeWalking),
        ("compiled", Engine::Compiled),
    ];
    if native_supported() {
        engines.push(("native", Engine::Native));
    }
    engines
}

fn check_front_end(
    case: &FuzzCase,
    cache: &CompileCache,
    oracle: &Oracle,
) -> Result<u64, Divergence> {
    // Print → reparse: the canonical text must reproduce the exact AST
    // and the exact input data.
    let inputs = explicit_inputs(case);
    let text = to_fv_kernel(&case.program, &inputs);
    let parsed = match parse_str("<fuzz>", &text) {
        Ok(parsed) => parsed,
        Err(d) => {
            return diverged(
                "front/reparse",
                format!("canonical text does not reparse: {}", d.render(&text)),
            )
        }
    };
    if parsed.program != case.program {
        return diverged(
            "front/reparse",
            "printed text reparsed to a different AST".to_owned(),
        );
    }
    if parsed.materialize_arrays() != case.arrays {
        return diverged(
            "front/reparse",
            "printed inputs materialized to different data".to_owned(),
        );
    }

    // Fresh vs cached compile: the second submission must be a shared
    // hit, and executing the cached plan must agree with the oracle.
    let (first, _) = cache.get_or_compile(&case.program, SpecRequest::Auto);
    let (second, hit) = cache.get_or_compile(&case.program, SpecRequest::Auto);
    if !hit || !Arc::ptr_eq(&first, &second) {
        return diverged(
            "front/cache",
            "second submission was not a shared cache hit".to_owned(),
        );
    }
    let Ok(plan) = &second.plan else {
        return Ok(0);
    };
    // The front-end paths run at the ambient width (e.g. `flexvecc
    // fuzz --vl 32`). Past this kernel's proven ceiling the cached
    // plan must refuse cleanly, exactly like the engine matrix.
    if flexvec_isa::vlen() > plan.vectorized.vprog.max_vl {
        let mut mem = AddressSpace::new();
        let ids = bind(case, &mut mem);
        let mut sink = VecSink::default();
        return match run_vector_precompiled(
            &case.program,
            &plan.vectorized.vprog,
            &plan.compiled,
            &mut mem,
            Bindings::new(ids),
            &mut sink,
        ) {
            Err(ExecError::UnsupportedWidth { .. }) => Ok(0),
            Ok(_) => diverged(
                "front/cache",
                format!(
                    "cached plan executed at vl {} past the ceiling {} instead of refusing",
                    flexvec_isa::vlen(),
                    plan.vectorized.vprog.max_vl
                ),
            ),
            Err(e) => diverged(
                "front/cache",
                format!("expected a clean UnsupportedWidth refusal past the ceiling, got {e:?}"),
            ),
        };
    }
    let mut mem = AddressSpace::new();
    let ids = bind(case, &mut mem);
    let mut sink = VecSink::default();
    let cached = match run_vector_precompiled(
        &case.program,
        &plan.vectorized.vprog,
        &plan.compiled,
        &mut mem,
        Bindings::new(ids.clone()),
        &mut sink,
    ) {
        Ok((result, stats)) => {
            let memory: Vec<Vec<i64>> = ids.iter().map(|id| mem.snapshot_array(*id)).collect();
            compare_to_oracle(case, "front/cache", oracle, &result, &memory)?;
            VectorRun {
                result,
                stats,
                memory,
                uops: sink.uops,
            }
        }
        Err(e) => {
            return diverged(
                "front/cache",
                format!("cached plan failed where the scalar reference succeeded: {e:?}"),
            )
        }
    };

    // Serialize → deserialize → execute: the persistent-cache wire
    // format must reproduce a `CompiledVProg` whose execution is
    // trace-identical to the in-memory original, not merely
    // result-equal — the daemon swaps restored snapshots in for fresh
    // compiles, so any drift here is silent behavior skew in prod.
    let bytes = serialize_compiled(&plan.compiled);
    let limits = SerialLimits {
        vregs: plan.vectorized.vprog.num_vregs as usize,
        kregs: plan.vectorized.vprog.num_kregs as usize,
        vars: case.program.vars.len(),
        arrays: case.program.arrays.len(),
    };
    let restored = match deserialize_compiled(&bytes, &limits) {
        Ok(restored) => restored,
        Err(e) => {
            return diverged(
                "front/serial",
                format!("own serialization failed to deserialize: {e:?}"),
            )
        }
    };
    let mut mem = AddressSpace::new();
    let ids = bind(case, &mut mem);
    let mut sink = VecSink::default();
    match run_vector_precompiled(
        &case.program,
        &plan.vectorized.vprog,
        &restored,
        &mut mem,
        Bindings::new(ids.clone()),
        &mut sink,
    ) {
        Ok((result, stats)) => {
            let memory: Vec<Vec<i64>> = ids.iter().map(|id| mem.snapshot_array(*id)).collect();
            compare_to_oracle(case, "front/serial", oracle, &result, &memory)?;
            let run = VectorRun {
                result,
                stats,
                memory,
                uops: sink.uops,
            };
            compare_engines("front/cache-vs-serial", &cached, &run)?;
            Ok(2)
        }
        Err(e) => diverged(
            "front/serial",
            format!("round-tripped plan failed where the scalar reference succeeded: {e:?}"),
        ),
    }
}

/// Runs one vectorized program through the full engine matrix at one
/// ambient vector length (the caller has already set it) and
/// cross-checks every engine against the oracle and each other.
///
/// Above the program's width ceiling every engine must refuse with
/// `UnsupportedWidth` — execution or any other error is a divergence.
fn check_at_width(
    case: &FuzzCase,
    oracle: &Oracle,
    spec_name: &str,
    vl: usize,
    vprog: &VProg,
    stats: &mut CheckStats,
) -> Result<(), Divergence> {
    let engines = engine_matrix();

    if vl > vprog.max_vl {
        for (engine_name, engine) in &engines {
            let config = format!("{spec_name}/vl{vl}/{engine_name}");
            match run_engine(case, vprog, *engine) {
                Ok(_) => {
                    return diverged(
                        &config,
                        format!(
                            "executed at vl {vl} past the kernel's width ceiling {} \
                             instead of refusing",
                            vprog.max_vl
                        ),
                    )
                }
                Err(ExecError::UnsupportedWidth { .. }) => {}
                Err(e) => {
                    return diverged(
                        &config,
                        format!(
                            "expected a clean UnsupportedWidth refusal at vl {vl} \
                             (ceiling {}), got {e:?}",
                            vprog.max_vl
                        ),
                    )
                }
            }
        }
        stats.rejected_widths += 1;
        return Ok(());
    }

    let mut runs: Vec<VectorRun> = Vec::with_capacity(engines.len());
    for (engine_name, engine) in &engines {
        let config = format!("{spec_name}/vl{vl}/{engine_name}");
        match run_engine(case, vprog, *engine) {
            Ok(run) => {
                compare_to_oracle(case, &config, oracle, &run.result, &run.memory)?;
                stats.vector_runs += 1;
                runs.push(run);
            }
            Err(e) => {
                return diverged(
                    &config,
                    format!("vector execution failed where the scalar reference succeeded: {e:?}"),
                )
            }
        }
    }
    for (i, run) in runs.iter().enumerate().skip(1) {
        compare_engines(
            &format!("{spec_name}/vl{vl}/tree-vs-{}", engines[i].0),
            &runs[0],
            run,
        )?;
    }
    Ok(())
}

/// Runs one case through every execution path and cross-checks them.
///
/// # Errors
///
/// Returns the first [`Divergence`] found; `Ok` means every path agreed.
pub fn check_case(case: &FuzzCase, cfg: &CheckConfig<'_>) -> Result<CheckStats, Divergence> {
    let mut stats = CheckStats::default();
    let oracle = run_oracle(case)?;

    for (spec_name, spec) in SPECS {
        let Ok(vectorized) = vectorize(&case.program, spec) else {
            stats.rejected_specs += 1;
            continue;
        };
        let mut vprog = vectorized.vprog;
        if let Some(mutate) = cfg.mutate {
            if !mutate(&mut vprog) {
                continue;
            }
        }

        // The compiled artifact is width-independent; only execution
        // binds a lane count, so each width re-runs the same `vprog`.
        for vl in SUPPORTED_VLENS {
            with_vlen(vl, || {
                check_at_width(case, &oracle, spec_name, vl, &vprog, &mut stats)
            })?;
        }
    }

    if cfg.mutate.is_none() {
        if let Some(cache) = cfg.front_end {
            stats.vector_runs += check_front_end(case, cache, &oracle)?;
        }
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;

    const NO_FRONT_END: CheckConfig<'_> = CheckConfig {
        front_end: None,
        mutate: None,
    };

    /// Generated cases sweep all four widths; every clean case must
    /// log at least one vector run per supported width for each spec
    /// the vectorizer accepted at full width.
    #[test]
    fn clean_cases_sweep_every_supported_width() {
        let mut widths_run = 0u64;
        for index in 0..20 {
            let case = generate(7, index);
            let stats = check_case(&case, &NO_FRONT_END).unwrap_or_else(|d| {
                panic!("case {index} diverged under {}: {}", d.config, d.detail)
            });
            widths_run += stats.vector_runs;
        }
        // 20 cases × ≥1 accepted spec × ≥2 engines × 4 widths.
        assert!(
            widths_run >= 160,
            "width sweep did not run enough matrix cells: {widths_run}"
        );
    }

    /// A carried RAW distance of exactly 16 proves widths 8 and 16 but
    /// refuses 32 and 64: those must count as clean width rejections,
    /// not divergences.
    #[test]
    fn over_ceiling_widths_are_clean_refusals() {
        let parsed = parse_str(
            "<dist16>",
            "kernel dist16;\n\
             var i = 0;\n\
             var t = 0;\n\
             array a[128] = seed 3;\n\
             live_out t;\n\
             for (i = 16; i < 128; i++) {\n\
               t = a[i - 16] + 1;\n\
               a[i] = t;\n\
             }\n",
        )
        .expect("dist16 parses");
        let case = FuzzCase {
            arrays: parsed.materialize_arrays(),
            program: parsed.program,
        };
        let stats = check_case(&case, &NO_FRONT_END)
            .unwrap_or_else(|d| panic!("diverged under {}: {}", d.config, d.detail));
        // Every spec the vectorizer accepts carries the same max_vl of
        // 16, so vl ∈ {32, 64} must each be refused per accepted spec.
        assert!(
            stats.rejected_widths >= 2,
            "expected over-ceiling refusals, got {stats:?}"
        );
        assert!(stats.vector_runs > 0, "widths 8 and 16 must still run");
    }
}
