//! Deterministic random irregular-loop generation.
//!
//! Extends the pattern grammar behind `tests/random_equivalence.rs`
//! (unconditional feed, early exit, conditional update, guarded
//! speculative load, indirect read-modify-write) with the inputs that
//! historically expose engine disagreements: extreme integer literals
//! in every operand position, trip counts straddling the vector length,
//! `else` branches, degenerate all-equal input arrays (which serialize
//! the conflict VPL to one lane per partition), and loop starts other
//! than zero.
//!
//! Everything is derived from a [`Rng`] seeded by `(seed, index)`, so a
//! fuzz campaign is reproducible from two integers and needs no
//! external randomness source.

use flexvec_ir::build::*;
use flexvec_ir::{Expr, Program, ProgramBuilder, Stmt, VarId};

/// Length of every generated input array.
pub const ARRAY_LEN: usize = 16;
/// The in-bounds index mask matching [`ARRAY_LEN`].
pub const IDX_MASK: i64 = 15;

/// A generated differential-test case: a program plus concrete input
/// data for each of its arrays (positional, like `Bindings`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuzzCase {
    /// The loop program under test.
    pub program: Program,
    /// One data vector per declared array, in declaration order.
    pub arrays: Vec<Vec<i64>>,
}

/// SplitMix64: a tiny, high-quality, dependency-free generator. One
/// `u64` of state; every stream is fully determined by its seed.
#[derive(Debug, Clone)]
pub struct Rng(u64);

impl Rng {
    /// Creates a stream from a seed.
    pub fn new(seed: u64) -> Self {
        Rng(seed)
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n == 0` yields 0).
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `pct`%.
    pub fn chance(&mut self, pct: u64) -> bool {
        self.below(100) < pct
    }
}

/// Literals that historically break naive lowering: the wrapping-edge
/// values, the negation fixpoint, and large powers of two.
const EXTREMES: [i64; 8] = [
    i64::MIN,
    i64::MIN + 1,
    i64::MAX,
    i64::MAX - 1,
    1 << 62,
    -(1 << 62),
    -1,
    1 << 31,
];

fn konst(rng: &mut Rng) -> i64 {
    match rng.below(10) {
        0..=6 => rng.below(201) as i64 - 100,
        7 | 8 => rng.below(200_001) as i64 - 100_000,
        _ => EXTREMES[rng.below(EXTREMES.len() as u64) as usize],
    }
}

fn leaf(rng: &mut Rng, vars: &[VarId]) -> Expr {
    if vars.is_empty() || rng.chance(40) {
        c(konst(rng))
    } else {
        var(vars[rng.below(vars.len() as u64) as usize])
    }
}

/// A random arithmetic expression of bounded depth over `vars`. Shift
/// and divide counts are constants, keeping every operator within the
/// IR's total (wrapping/saturating) semantics on both the scalar and
/// vector sides.
fn arith(rng: &mut Rng, vars: &[VarId], depth: u32) -> Expr {
    if depth == 0 || rng.chance(30) {
        return leaf(rng, vars);
    }
    let l = arith(rng, vars, depth - 1);
    let r = arith(rng, vars, depth - 1);
    match rng.below(12) {
        0 | 1 => add(l, r),
        2 => sub(l, r),
        3 => mul(l, r),
        4 => max2(l, r),
        5 => min2(l, r),
        6 => band(l, r),
        7 => bxor(l, r),
        8 => bor(l, r),
        9 => shr(l, c(rng.below(8) as i64)),
        10 => shl(l, c(rng.below(8) as i64)),
        _ => div(l, c(rng.below(7) as i64 + 1)),
    }
}

/// Trip counts that straddle the interesting execution boundaries:
/// empty and single-lane loops, exactly one vector chunk, one chunk
/// plus a remainder lane, and several chunks.
fn trip_count(rng: &mut Rng) -> i64 {
    match rng.below(8) {
        0 => rng.below(4) as i64,      // 0..=3: (sub-)lane loops
        1 => 15 + rng.below(3) as i64, // 15, 16, 17: one-chunk edge
        2 => 31 + rng.below(3) as i64, // two-chunk edge
        _ => 8 + rng.below(88) as i64, // general case
    }
}

fn input_array(rng: &mut Rng) -> Vec<i64> {
    match rng.below(8) {
        // All-equal: pins every conflict lane to one bucket, which
        // serializes the VPL to single-lane partitions.
        0 => vec![rng.below(1000) as i64; ARRAY_LEN],
        1 => vec![0; ARRAY_LEN],
        // Mostly small with a few extreme outliers.
        2 => (0..ARRAY_LEN)
            .map(|_| {
                if rng.chance(25) {
                    EXTREMES[rng.below(EXTREMES.len() as u64) as usize]
                } else {
                    rng.below(100) as i64
                }
            })
            .collect(),
        _ => (0..ARRAY_LEN).map(|_| rng.below(1000) as i64).collect(),
    }
}

/// Generates the `index`-th case of the campaign seeded by `seed`.
pub fn generate(seed: u64, index: u64) -> FuzzCase {
    let mut rng = Rng::new(seed ^ index.wrapping_mul(0xA076_1D64_78BD_642F));

    let mut b = ProgramBuilder::new("fuzz");
    let i = b.var("i", 0);
    let t = b.var("t", konst(&mut rng));
    let data = b.array("data");
    let aux = b.array("aux");
    let mut body: Vec<Stmt> = Vec::new();
    let mut live_outs = vec![t];

    // Unconditional feed: t = data[i & MASK] + f(i).
    body.push(assign(
        t,
        add(
            ld(data, band(var(i), c(IDX_MASK))),
            arith(&mut rng, &[i], 2),
        ),
    ));

    let with_break = rng.chance(40);
    let with_update = rng.chance(70);
    let with_conflict = rng.chance(40);
    // FF speculation with stores inside the VPL is rejected by design,
    // so a guarded load only rides along when there is no conflict.
    let with_guarded_load = !with_conflict && rng.chance(40);
    let with_extra_assign = rng.chance(30);

    if with_break {
        body.push(if_(gt(var(t), c(konst(&mut rng))), vec![brk()]));
    }

    if with_update {
        let best = b.var("best", konst(&mut rng));
        live_outs.push(best);
        if with_guarded_load {
            // h264 shape: the lookup under the condition is speculative.
            let u = b.var("u", 0);
            body.push(if_(
                lt(var(t), var(best)),
                vec![
                    assign(u, add(var(t), ld(aux, band(var(t), c(IDX_MASK))))),
                    if_(lt(var(u), var(best)), vec![assign(best, var(u))]),
                ],
            ));
        } else if rng.chance(30) {
            body.push(if_else(
                lt(var(t), var(best)),
                vec![assign(best, var(t))],
                vec![assign(best, arith(&mut rng, &[t, best], 1))],
            ));
        } else {
            body.push(if_(lt(var(t), var(best)), vec![assign(best, var(t))]));
        }
    }

    if with_extra_assign {
        let u2 = b.var("w", konst(&mut rng));
        live_outs.push(u2);
        body.push(assign(u2, arith(&mut rng, &[i, t], 2)));
    }

    if with_conflict {
        // Indirect accumulate: aux[data-derived index] += t.
        let k = b.var("k", 0);
        body.push(assign(
            k,
            band(ld(data, band(var(i), c(IDX_MASK))), c(IDX_MASK)),
        ));
        body.push(store(aux, var(k), add(ld(aux, var(k)), var(t))));
        if rng.chance(30) {
            live_outs.push(k);
        }
    }

    for v in live_outs {
        b.live_out(v);
    }

    let start = if rng.chance(25) {
        rng.below(8) as i64
    } else {
        0
    };
    let end = start + trip_count(&mut rng);
    let program = b
        .build_loop(i, c(start), c(end), body)
        .expect("generated shapes are always structurally valid");

    let arrays = vec![input_array(&mut rng), input_array(&mut rng)];
    FuzzCase { program, arrays }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = generate(7, 42);
        let b = generate(7, 42);
        assert_eq!(a, b);
        assert_ne!(a, generate(7, 43), "different index, different case");
        assert_ne!(a, generate(8, 42), "different seed, different case");
    }

    #[test]
    fn every_case_builds_and_covers_the_grammar() {
        let mut saw_break = false;
        let mut saw_store = false;
        let mut saw_else = false;
        for index in 0..200 {
            let case = generate(0, index);
            assert_eq!(case.arrays.len(), case.program.arrays.len());
            for a in &case.arrays {
                assert_eq!(a.len(), ARRAY_LEN);
            }
            fn scan(body: &[Stmt], brk: &mut bool, st: &mut bool, el: &mut bool) {
                for s in body {
                    match s {
                        Stmt::Break => *brk = true,
                        Stmt::Store { .. } => *st = true,
                        Stmt::If { then_, else_, .. } => {
                            *el |= !else_.is_empty();
                            scan(then_, brk, st, el);
                            scan(else_, brk, st, el);
                        }
                        Stmt::Assign { .. } => {}
                    }
                }
            }
            scan(
                &case.program.loop_.body,
                &mut saw_break,
                &mut saw_store,
                &mut saw_else,
            );
        }
        assert!(saw_break && saw_store && saw_else, "grammar coverage");
    }
}
