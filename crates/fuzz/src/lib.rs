//! # flexvec-fuzz
//!
//! Differential fuzzing for the FlexVec reproduction. A campaign is
//! fully determined by `(seed, iteration budget)`:
//!
//! 1. [`generate`] builds a random irregular loop plus input data from
//!    the supported pattern grammar (conditional updates, guarded
//!    speculative loads, indirect read-modify-writes, early exits),
//!    salted with the inputs that historically expose disagreements —
//!    extreme literals, boundary trip counts, all-equal conflict data.
//! 2. [`check_case`] runs it through every execution path — the scalar
//!    oracle, the tree-walking and compiled engines under first-faulting
//!    and RTM speculation at several tile sizes, each at **every
//!    supported vector length** (8, 16, 32, 64 lanes), the `.fv`
//!    print→reparse round-trip, and the compile cache's cached-vs-fresh
//!    path — and cross-checks live-outs, induction exit, break flag,
//!    iteration counts, final memory, engine statistics and µop traces.
//!    Widths above a kernel's analysis-proven ceiling must be clean
//!    `UnsupportedWidth` refusals from every engine, never wrong code.
//! 3. On a divergence, [`shrink`] delta-debugs the witness down to a
//!    minimal failing case and the driver emits it as a standalone
//!    `.fv` repro (expected-vs-actual embedded as comments) that
//!    re-runs as an ordinary corpus test.
//!
//! [`run_mutants`] proves the harness has teeth: it injects known
//! semantic bugs ([`Mutant`]) into otherwise-correct vector programs
//! and asserts each is caught and shrunk to a small repro.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diff;
mod gen;
mod mutate;
mod shrink;

pub use diff::{check_case, CheckConfig, CheckStats, Divergence, SPECS};
pub use gen::{generate, FuzzCase, Rng, ARRAY_LEN, IDX_MASK};
pub use mutate::Mutant;
pub use shrink::shrink;

use std::time::Instant;

use flexvec_front::{to_fv_kernel, ArrayInit, ArrayInput, CompileCache};

/// The array input recipes that pin a case's exact data into `.fv`
/// text: one explicit-values declaration per array.
pub fn explicit_inputs(case: &FuzzCase) -> Vec<ArrayInput> {
    case.program
        .arrays
        .iter()
        .zip(&case.arrays)
        .map(|(decl, values)| ArrayInput {
            name: decl.name.clone(),
            init: ArrayInit::Explicit(values.clone()),
        })
        .collect()
}

/// Renders a case as a standalone `.fv` repro: `header` lines become
/// leading comments (newlines flattened), followed by the canonical
/// kernel text with explicit array data.
pub fn render_repro(case: &FuzzCase, header: &[String]) -> String {
    let mut out = String::new();
    for line in header {
        out.push_str("// ");
        out.push_str(&line.replace('\n', " / "));
        out.push('\n');
    }
    out.push_str(&to_fv_kernel(&case.program, &explicit_inputs(case)));
    out
}

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Campaign seed; the whole run is reproducible from it.
    pub seed: u64,
    /// Maximum cases to generate and check.
    pub iters: u64,
    /// Wall-clock budget in milliseconds (0 = unlimited).
    pub budget_ms: u64,
    /// Predicate-evaluation budget for shrinking a divergence.
    pub shrink_evals: usize,
    /// Cooperative stop flag (e.g. set from a SIGINT handler): the
    /// campaign finishes the in-flight case and returns a partial
    /// outcome with [`FuzzOutcome::interrupted`] set.
    pub stop: Option<std::sync::Arc<std::sync::atomic::AtomicBool>>,
}

impl Default for FuzzConfig {
    fn default() -> Self {
        FuzzConfig {
            seed: 0,
            iters: 500,
            budget_ms: 0,
            shrink_evals: 400,
            stop: None,
        }
    }
}

/// A divergence found by a campaign, already shrunk and rendered.
#[derive(Debug, Clone)]
pub struct FuzzDivergence {
    /// Index of the generating case within the campaign.
    pub case_index: u64,
    /// Which execution path disagreed.
    pub config: String,
    /// Expected-vs-actual description.
    pub detail: String,
    /// Standalone minimized `.fv` repro text.
    pub repro: String,
}

/// The result of a fuzzing campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzOutcome {
    /// Cases generated and checked.
    pub cases: u64,
    /// Vector executions compared against the oracle.
    pub vector_runs: u64,
    /// (case, spec) combinations the vectorizer legitimately rejected.
    pub rejected_specs: u64,
    /// (case, spec, width) combinations above a kernel's width ceiling
    /// that every engine cleanly refused with `UnsupportedWidth`.
    pub rejected_widths: u64,
    /// The first divergence found, if any (the campaign stops there).
    pub divergence: Option<FuzzDivergence>,
    /// Whether the campaign stopped early on the cooperative stop
    /// flag (the counters above still describe the completed cases).
    pub interrupted: bool,
}

/// Runs a differential fuzzing campaign. Stops at the first divergence
/// (shrunk and rendered into the outcome), the iteration budget, or the
/// time budget — whichever comes first.
pub fn run_fuzz(config: &FuzzConfig) -> FuzzOutcome {
    let cache = CompileCache::new();
    let started = Instant::now();
    let mut outcome = FuzzOutcome::default();
    for index in 0..config.iters {
        if config.budget_ms > 0 && started.elapsed().as_millis() as u64 >= config.budget_ms {
            break;
        }
        if config
            .stop
            .as_ref()
            .is_some_and(|s| s.load(std::sync::atomic::Ordering::Relaxed))
        {
            outcome.interrupted = true;
            break;
        }
        let case = generate(config.seed, index);
        let check = CheckConfig {
            front_end: Some(&cache),
            mutate: None,
        };
        match check_case(&case, &check) {
            Ok(stats) => {
                outcome.cases += 1;
                outcome.vector_runs += stats.vector_runs;
                outcome.rejected_specs += stats.rejected_specs;
                outcome.rejected_widths += stats.rejected_widths;
            }
            Err(first) => {
                outcome.cases += 1;
                let shrunk = shrink(
                    &case,
                    config.shrink_evals,
                    &mut |c| matches!(check_case(c, &check), Err(d) if d.config != "scalar"),
                );
                let d = check_case(&shrunk, &check).err().unwrap_or(first);
                let header = vec![
                    format!("flexvec-fuzz repro (seed {}, case {index})", config.seed),
                    format!("diverges under {}", d.config),
                    format!("expected vs actual: {}", d.detail),
                ];
                outcome.divergence = Some(FuzzDivergence {
                    case_index: index,
                    config: d.config.clone(),
                    detail: d.detail.clone(),
                    repro: render_repro(&shrunk, &header),
                });
                break;
            }
        }
    }
    outcome
}

/// The verdict for one injected mutant.
#[derive(Debug, Clone)]
pub struct MutantReport {
    /// The injected bug.
    pub mutant: Mutant,
    /// Whether any generated case exposed it.
    pub caught: bool,
    /// Cases generated before it was caught (or the full budget).
    pub cases_tried: u64,
    /// Which execution path caught it.
    pub config: String,
    /// Expected-vs-actual description from the shrunk witness.
    pub detail: String,
    /// Standalone minimized `.fv` repro (present when caught).
    pub repro: Option<String>,
}

/// Mutation-testing mode: for each known [`Mutant`], fuzz until a case
/// whose clean check passes but whose mutated check diverges, then
/// shrink that witness under the same "clean passes, mutated fails"
/// predicate and render it as a repro.
pub fn run_mutants(seed: u64, max_cases: u64, shrink_evals: usize) -> Vec<MutantReport> {
    Mutant::ALL
        .iter()
        .map(|&mutant| {
            let apply = move |vprog: &mut flexvec::VProg| mutant.apply(vprog);
            let clean = CheckConfig {
                front_end: None,
                mutate: None,
            };
            let mutated = CheckConfig {
                front_end: None,
                mutate: Some(&apply),
            };
            // A witness must pass clean (so the repro doubles as an
            // ordinary corpus test) and fail mutated for a non-oracle
            // reason (so the failure is attributable to the mutant).
            let mut witnesses = |case: &FuzzCase| {
                check_case(case, &clean).is_ok()
                    && matches!(check_case(case, &mutated), Err(d) if d.config != "scalar")
            };
            for index in 0..max_cases {
                let case = generate(seed, index);
                if !witnesses(&case) {
                    continue;
                }
                let shrunk = shrink(&case, shrink_evals, &mut witnesses);
                let d =
                    check_case(&shrunk, &mutated).expect_err("shrunk witness still fails mutated");
                let header = vec![
                    format!(
                        "flexvec-fuzz mutant repro: {} ({})",
                        mutant.name(),
                        mutant.describe()
                    ),
                    format!("seed {seed}, case {index}; caught under {}", d.config),
                    format!("expected vs actual: {}", d.detail),
                ];
                return MutantReport {
                    mutant,
                    caught: true,
                    cases_tried: index + 1,
                    config: d.config,
                    detail: d.detail,
                    repro: Some(render_repro(&shrunk, &header)),
                };
            }
            MutantReport {
                mutant,
                caught: false,
                cases_tried: max_cases,
                config: String::new(),
                detail: String::new(),
                repro: None,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvec_front::parse_str;

    #[test]
    fn rendered_repros_reparse_to_the_same_case() {
        for index in 0..25 {
            let case = generate(3, index);
            let text = render_repro(&case, &[format!("case {index}")]);
            let parsed = parse_str("<repro>", &text)
                .unwrap_or_else(|d| panic!("repro must reparse: {}", d.render(&text)));
            assert_eq!(parsed.program, case.program);
            assert_eq!(parsed.materialize_arrays(), case.arrays);
        }
    }

    #[test]
    fn a_short_clean_campaign_runs_clean() {
        let outcome = run_fuzz(&FuzzConfig {
            seed: 11,
            iters: 40,
            ..FuzzConfig::default()
        });
        assert_eq!(outcome.cases, 40);
        assert!(outcome.vector_runs > 0, "some specs must vectorize");
        assert!(
            outcome.divergence.is_none(),
            "clean engines must agree: {:?}",
            outcome.divergence
        );
    }
}
