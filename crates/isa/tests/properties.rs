//! Property-based tests for the FlexVec ISA invariants, parameterized
//! over every supported runtime vector length.
//!
//! The central invariants here are the ones FlexVec's code generation
//! relies on for correctness:
//!
//! * `kftm_*` always returns a subset of the write mask, the subset is a
//!   *prefix* of the enabled lanes, and repeatedly stripping `k_safe` from
//!   `k_todo` terminates (VPL termination).
//! * `vpconflictm` stop bits partition the lanes so that within a
//!   partition, no load address matches an earlier enabled store address
//!   (definitions dominate uses inside a partition).
//! * first-faulting loads never report lanes as completed unless they
//!   actually loaded, and completed lanes form a prefix of the enabled
//!   lanes.
//! * mask algebra and permute wraparound are `vl`-relative: hidden lanes
//!   (index `>= vlen()`) are never observable.
//!
//! Every property draws `vl` from [`SUPPORTED_VLENS`] and runs its body
//! under [`with_vlen`], so each invariant is exercised at 8, 16, 32 and
//! 64 lanes.

use flexvec_isa::{
    kftm_exc, kftm_inc, vgather_ff, vlen, vpconflictm, vpslctlast, with_vlen, LaneMemory, Mask,
    MemFault, Vector, LANE_BYTES, MAX_VLEN, SUPPORTED_VLENS,
};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;

fn vl_strategy() -> impl Strategy<Value = usize> {
    prop::sample::select(SUPPORTED_VLENS.to_vec())
}

/// Raw lane values for the widest width; each case slices the active
/// prefix it needs.
fn lanes_strategy(max: i64) -> impl Strategy<Value = Vec<i64>> {
    prop::collection::vec(0..max, MAX_VLEN)
}

/// Runs a property body at the given width, propagating `prop_assert!`
/// failures out of the `with_vlen` scope.
fn at_width(
    vl: usize,
    body: impl FnOnce() -> Result<(), TestCaseError>,
) -> Result<(), TestCaseError> {
    with_vlen(vl, body)
}

proptest! {
    #[test]
    fn kftm_outputs_are_subsets_of_write_mask(
        vl in vl_strategy(), k2b in any::<u64>(), k3b in any::<u64>(),
    ) {
        at_width(vl, || {
            let (k2, k3) = (Mask::from_bits(k2b), Mask::from_bits(k3b));
            let exc = kftm_exc(k2, k3);
            let inc = kftm_inc(k2, k3);
            prop_assert_eq!(exc & k2, exc);
            prop_assert_eq!(inc & k2, inc);
            // Unless k2 is empty, both variants always produce work:
            // exclusive because a leading stop bit is skipped, inclusive
            // because the stop lane itself is included. This is the VPL
            // progress guarantee.
            prop_assert_eq!(exc.any(), k2.any());
            prop_assert_eq!(inc.any(), k2.any());
            // When the first enabled stop is not on the first enabled lane,
            // inc = exc + stop lane.
            if let (Some(first), Some(stop)) = (k2.first_set(), (k3 & k2).first_set()) {
                if stop != first {
                    prop_assert_eq!(inc, exc | Mask::from_lanes(&[stop]));
                }
            }
            Ok(())
        })?;
    }

    #[test]
    fn kftm_safe_is_prefix_of_enabled_lanes(
        vl in vl_strategy(), k2b in any::<u64>(), k3b in any::<u64>(),
    ) {
        at_width(vl, || {
            // Every enabled lane before a safe lane must itself be safe: the
            // safe set is a prefix of k2's enabled lanes.
            let (k2, k3) = (Mask::from_bits(k2b), Mask::from_bits(k3b));
            let safe = kftm_exc(k2, k3);
            if let Some(last_safe) = safe.last_set() {
                for lane in 0..last_safe {
                    if k2.get(lane) {
                        prop_assert!(safe.get(lane), "hole at lane {}", lane);
                    }
                }
            }
            Ok(())
        })?;
    }

    #[test]
    fn vpl_with_inclusive_kftm_terminates(
        vl in vl_strategy(), k_init_b in any::<u64>(), k3b in any::<u64>(),
    ) {
        at_width(vl, || {
            // The conditional-update VPL peels at least one lane per
            // iteration (inclusive variant), so it finishes in
            // ≤ count(k_todo) steps.
            let (k_init, k3) = (Mask::from_bits(k_init_b), Mask::from_bits(k3b));
            let mut k_todo = k_init;
            let mut steps = 0usize;
            while k_todo.any() {
                let k_safe = kftm_inc(k_todo, k3);
                prop_assert!(k_safe.any(), "inclusive kftm on nonempty todo yields work");
                k_todo = k_todo.and_not(k_safe);
                steps += 1;
                prop_assert!(steps <= vlen());
            }
            prop_assert!(steps <= k_init.count().max(1));
            Ok(())
        })?;
    }

    #[test]
    fn memory_vpl_terminates(
        vl in vl_strategy(), k_init_b in any::<u64>(), idx_lanes in lanes_strategy(8),
    ) {
        at_width(vl, || {
            // The Figure 2(b) loop shape: exclusive kftm driven by conflict
            // detection. k_stop ∧ k_todo recomputed per round.
            let k_init = Mask::from_bits(k_init_b);
            let idx = Vector::from_slice(&idx_lanes[..vlen()]);
            let mut k_todo = k_init;
            let mut k_stop = vpconflictm(k_todo, idx, idx);
            let mut steps = 0usize;
            loop {
                let k_safe = kftm_exc(k_todo, k_stop);
                k_todo = k_todo.and_not(k_safe);
                k_stop &= k_todo;
                steps += 1;
                prop_assert!(steps <= vlen() + 1, "VPL failed to terminate");
                if !k_stop.any() {
                    break;
                }
            }
            // After the final round every lane has been processed...
            let k_safe = kftm_exc(k_todo, k_stop);
            prop_assert_eq!(k_todo.and_not(k_safe), Mask::EMPTY);
            Ok(())
        })?;
    }

    #[test]
    fn conflict_partitions_have_no_internal_raw(
        vl in vl_strategy(), k2b in any::<u64>(), idx_lanes in lanes_strategy(6),
    ) {
        at_width(vl, || {
            // Between two consecutive stop bits, no element of v1 may match
            // an enabled *earlier-in-partition* element of v2 — that is
            // exactly what makes the partition safe to run as one vector
            // operation.
            let k2 = Mask::from_bits(k2b);
            let idx = Vector::from_slice(&idx_lanes[..vlen()]);
            let stops = vpconflictm(k2, idx, idx);
            let mut start = 0usize;
            for j in 0..vlen() {
                if stops.get(j) {
                    start = j;
                    continue;
                }
                for i in start..j {
                    if k2.get(i) {
                        prop_assert!(
                            idx.lane(i) != idx.lane(j),
                            "unflagged RAW: lane {} vs {}",
                            i, j
                        );
                    }
                }
            }
            Ok(())
        })?;
    }

    #[test]
    fn vpslctlast_broadcasts_an_existing_value(
        vl in vl_strategy(), kb in any::<u64>(), v_lanes in lanes_strategy(1000),
    ) {
        at_width(vl, || {
            let k = Mask::from_bits(kb);
            let v = Vector::from_slice(&v_lanes[..vlen()]);
            let out = vpslctlast(k, v);
            let lane = k.last_set().unwrap_or(vlen() - 1);
            prop_assert_eq!(out, Vector::splat(v.lane(lane)));
            Ok(())
        })?;
    }

    #[test]
    fn first_fault_mask_is_prefix_and_loads_are_real(
        vl in vl_strategy(),
        kb in any::<u64>(),
        mapped_until in 0u64..96,
    ) {
        struct Mem { mapped_until: u64 }
        impl LaneMemory for Mem {
            fn load_lane(&self, addr: u64) -> Result<i64, MemFault> {
                if addr / LANE_BYTES < self.mapped_until {
                    Ok((addr / LANE_BYTES) as i64)
                } else {
                    Err(MemFault { addr })
                }
            }
            fn store_lane(&mut self, _: u64, _: i64) -> Result<(), MemFault> {
                unreachable!()
            }
        }
        at_width(vl, || {
            let k = Mask::from_bits(kb);
            let mem = Mem { mapped_until };
            let addrs = Vector::from_fn(|i| (i as i64) * LANE_BYTES as i64);
            let dest = Vector::splat(-77);
            match vgather_ff(&mem, k, dest, addrs) {
                Err(_) => {
                    // Only legal when the non-speculative lane itself faults.
                    let ns = k.first_set().expect("fault requires an enabled lane");
                    prop_assert!(ns as u64 >= mapped_until);
                }
                Ok(out) => {
                    // Completed lanes are a subset of k and form a prefix.
                    prop_assert_eq!(out.mask & k, out.mask);
                    if let Some(last) = out.mask.last_set() {
                        for lane in 0..last {
                            if k.get(lane) {
                                prop_assert!(out.mask.get(lane));
                            }
                        }
                    }
                    for lane in 0..vlen() {
                        if out.mask.get(lane) {
                            prop_assert_eq!(out.value.lane(lane), lane as i64);
                        } else {
                            prop_assert_eq!(out.value.lane(lane), -77);
                        }
                    }
                }
            }
            Ok(())
        })?;
    }

    #[test]
    fn compress_then_expand_is_identity_on_enabled_lanes(
        vl in vl_strategy(),
        kb in any::<u64>(),
        v_lanes in lanes_strategy(1 << 40),
    ) {
        at_width(vl, || {
            let k = Mask::from_bits(kb);
            let v = Vector::from_slice(&v_lanes[..vlen()]);
            let packed = v.compress(k, Vector::ZERO);
            let restored = packed.expand(k, v);
            prop_assert_eq!(restored, v);
            Ok(())
        })?;
    }

    #[test]
    fn permute_wraps_around_active_lanes(
        vl in vl_strategy(),
        v_lanes in lanes_strategy(1 << 40),
        idx_lanes in prop::collection::vec(-200i64..200, MAX_VLEN),
    ) {
        at_width(vl, || {
            // Shuffle indices wrap modulo the *active* lane count, so a
            // permute can never read a hidden lane at any width.
            let v = Vector::from_slice(&v_lanes[..vlen()]);
            let idx = Vector::from_slice(&idx_lanes[..vlen()]);
            let out = v.permute(idx);
            for i in 0..vlen() {
                let src = idx.lane(i).rem_euclid(vlen() as i64) as usize;
                prop_assert!(src < vlen());
                prop_assert_eq!(out.lane(i), v.lane(src));
            }
            for hidden in vlen()..MAX_VLEN {
                prop_assert_eq!(out.lane(hidden), 0);
            }
            Ok(())
        })?;
    }
}

proptest! {
    #[test]
    fn mask_display_parse_roundtrip(vl in vl_strategy(), bits in any::<u64>()) {
        at_width(vl, || {
            let k = Mask::from_bits(bits);
            let text = k.to_string();
            prop_assert_eq!(text.parse::<Mask>().unwrap(), k);
            Ok(())
        })?;
    }

    #[test]
    fn mask_algebra_is_vl_relative(vl in vl_strategy(), ab in any::<u64>(), bb in any::<u64>()) {
        at_width(vl, || {
            // De Morgan + double negation over the active lanes only; no
            // operation may leak bits into hidden lanes.
            let (a, b) = (Mask::from_bits(ab), Mask::from_bits(bb));
            prop_assert_eq!(!(a & b), !a | !b);
            prop_assert_eq!(!(a | b), !a & !b);
            prop_assert_eq!(!!a, a);
            prop_assert_eq!(a.and_not(b), a & !b);
            prop_assert_eq!(a | !a, Mask::full());
            let full_bits = Mask::full().bits();
            for m in [a & b, a | b, a ^ b, !a, a.and_not(b)] {
                prop_assert_eq!(m.bits() & !full_bits, 0, "hidden-lane leak in {:?}", m);
            }
            Ok(())
        })?;
    }

    #[test]
    fn mask_prefix_suffix_partition(vl in vl_strategy(), lane_seed in 0usize..64) {
        at_width(vl, || {
            // prefix_before(l) and suffix_from(l) partition the active lanes.
            let lane = lane_seed % vlen();
            let before = Mask::prefix_before(lane);
            let from = Mask::suffix_from(lane);
            prop_assert_eq!(before & from, Mask::EMPTY);
            prop_assert_eq!(before | from, Mask::full());
            Ok(())
        })?;
    }

    #[test]
    fn conflict_is_monotone_in_enables(
        vl in vl_strategy(),
        idx_lanes in prop::collection::vec(0i64..6, MAX_VLEN),
        k_small in any::<u64>(),
        extra in any::<u64>(),
    ) {
        at_width(vl, || {
            // Enabling more v2 lanes can only reveal more serialization
            // points at each position up to window effects — at minimum, the
            // empty enable set yields no conflicts.
            let v = Vector::from_slice(&idx_lanes[..vlen()]);
            let none = vpconflictm(Mask::EMPTY, v, v);
            prop_assert_eq!(none, Mask::EMPTY);
            let small = vpconflictm(Mask::from_bits(k_small), v, v);
            let big = vpconflictm(Mask::from_bits(k_small | extra), v, v);
            // Both remain valid partitionings (checked by the dedicated
            // property); here: lane 0 has no predecessors at any width.
            prop_assert!(!small.get(0));
            prop_assert!(!big.get(0));
            Ok(())
        })?;
    }
}
