//! Property-based tests for the FlexVec ISA invariants.
//!
//! The central invariants here are the ones FlexVec's code generation
//! relies on for correctness:
//!
//! * `kftm_*` always returns a subset of the write mask, the subset is a
//!   *prefix* of the enabled lanes, and repeatedly stripping `k_safe` from
//!   `k_todo` terminates (VPL termination).
//! * `vpconflictm` stop bits partition the lanes so that within a
//!   partition, no load address matches an earlier enabled store address
//!   (definitions dominate uses inside a partition).
//! * first-faulting loads never report lanes as completed unless they
//!   actually loaded, and completed lanes form a prefix of the enabled
//!   lanes.

use flexvec_isa::{
    kftm_exc, kftm_inc, vgather_ff, vpconflictm, vpslctlast, LaneMemory, Mask, MemFault, Vector,
    LANE_BYTES, VLEN,
};
use proptest::prelude::*;

fn mask_strategy() -> impl Strategy<Value = Mask> {
    any::<u16>().prop_map(Mask::from_bits)
}

fn vector_strategy(max: i64) -> impl Strategy<Value = Vector> {
    prop::array::uniform16(0..max).prop_map(Vector::from_lanes)
}

proptest! {
    #[test]
    fn kftm_outputs_are_subsets_of_write_mask(k2 in mask_strategy(), k3 in mask_strategy()) {
        let exc = kftm_exc(k2, k3);
        let inc = kftm_inc(k2, k3);
        prop_assert_eq!(exc & k2, exc);
        prop_assert_eq!(inc & k2, inc);
        // Unless k2 is empty, both variants always produce work: exclusive
        // because a leading stop bit is skipped, inclusive because the stop
        // lane itself is included. This is the VPL progress guarantee.
        prop_assert_eq!(exc.any(), k2.any());
        prop_assert_eq!(inc.any(), k2.any());
        // When the first enabled stop is not on the first enabled lane,
        // inc = exc + stop lane.
        if let (Some(first), Some(stop)) = (k2.first_set(), (k3 & k2).first_set()) {
            if stop != first {
                prop_assert_eq!(inc, exc | Mask::from_lanes(&[stop]));
            }
        }
    }

    #[test]
    fn kftm_safe_is_prefix_of_enabled_lanes(k2 in mask_strategy(), k3 in mask_strategy()) {
        // Every enabled lane before a safe lane must itself be safe: the
        // safe set is a prefix of k2's enabled lanes.
        let safe = kftm_exc(k2, k3);
        if let Some(last_safe) = safe.last_set() {
            for lane in 0..last_safe {
                if k2.get(lane) {
                    prop_assert!(safe.get(lane), "hole at lane {}", lane);
                }
            }
        }
    }

    #[test]
    fn vpl_with_inclusive_kftm_terminates(k_init in mask_strategy(), k3 in mask_strategy()) {
        // The conditional-update VPL peels at least one lane per iteration
        // (inclusive variant), so it finishes in ≤ count(k_todo) steps.
        let mut k_todo = k_init;
        let mut steps = 0usize;
        while k_todo.any() {
            let k_safe = kftm_inc(k_todo, k3);
            prop_assert!(k_safe.any(), "inclusive kftm on nonempty todo yields work");
            k_todo = k_todo.and_not(k_safe);
            steps += 1;
            prop_assert!(steps <= VLEN);
        }
        prop_assert!(steps <= k_init.count().max(1));
    }

    #[test]
    fn memory_vpl_terminates(k_init in mask_strategy(), idx in vector_strategy(8)) {
        // The Figure 2(b) loop shape: exclusive kftm driven by conflict
        // detection. k_stop ∧ k_todo recomputed per round.
        let mut k_todo = k_init;
        let mut k_stop = vpconflictm(k_todo, idx, idx);
        let mut steps = 0usize;
        loop {
            let k_safe = kftm_exc(k_todo, k_stop);
            k_todo = k_todo.and_not(k_safe);
            k_stop &= k_todo;
            steps += 1;
            prop_assert!(steps <= VLEN + 1, "VPL failed to terminate");
            if !k_stop.any() {
                break;
            }
        }
        // After the final round every lane has been processed...
        let k_safe = kftm_exc(k_todo, k_stop);
        prop_assert_eq!(k_todo.and_not(k_safe), Mask::EMPTY);
    }

    #[test]
    fn conflict_partitions_have_no_internal_raw(k2 in mask_strategy(), idx in vector_strategy(6)) {
        // Between two consecutive stop bits, no element of v1 may match an
        // enabled *earlier-in-partition* element of v2 — that is exactly
        // what makes the partition safe to run as one vector operation.
        let stops = vpconflictm(k2, idx, idx);
        let mut start = 0usize;
        for j in 0..VLEN {
            if stops.get(j) {
                start = j;
                continue;
            }
            for i in start..j {
                if k2.get(i) {
                    prop_assert!(
                        idx.lane(i) != idx.lane(j),
                        "unflagged RAW: lane {} vs {}",
                        i, j
                    );
                }
            }
        }
    }

    #[test]
    fn vpslctlast_broadcasts_an_existing_value(k in mask_strategy(), v in vector_strategy(1000)) {
        let out = vpslctlast(k, v);
        let lane = k.last_set().unwrap_or(VLEN - 1);
        prop_assert_eq!(out, Vector::splat(v.lane(lane)));
    }

    #[test]
    fn first_fault_mask_is_prefix_and_loads_are_real(
        k in mask_strategy(),
        mapped_until in 0u64..24,
    ) {
        struct Mem { mapped_until: u64 }
        impl LaneMemory for Mem {
            fn load_lane(&self, addr: u64) -> Result<i64, MemFault> {
                if addr / LANE_BYTES < self.mapped_until {
                    Ok((addr / LANE_BYTES) as i64)
                } else {
                    Err(MemFault { addr })
                }
            }
            fn store_lane(&mut self, _: u64, _: i64) -> Result<(), MemFault> {
                unreachable!()
            }
        }
        let mem = Mem { mapped_until };
        let addrs = Vector::from_fn(|i| (i as i64) * LANE_BYTES as i64);
        let dest = Vector::splat(-77);
        match vgather_ff(&mem, k, dest, addrs) {
            Err(_) => {
                // Only legal when the non-speculative lane itself faults.
                let ns = k.first_set().expect("fault requires an enabled lane");
                prop_assert!(ns as u64 >= mapped_until);
            }
            Ok(out) => {
                // Completed lanes are a subset of k and form a prefix.
                prop_assert_eq!(out.mask & k, out.mask);
                if let Some(last) = out.mask.last_set() {
                    for lane in 0..last {
                        if k.get(lane) {
                            prop_assert!(out.mask.get(lane));
                        }
                    }
                }
                for lane in 0..VLEN {
                    if out.mask.get(lane) {
                        prop_assert_eq!(out.value.lane(lane), lane as i64);
                    } else {
                        prop_assert_eq!(out.value.lane(lane), -77);
                    }
                }
            }
        }
    }

    #[test]
    fn compress_then_expand_is_identity_on_enabled_lanes(
        k in mask_strategy(),
        v in vector_strategy(1 << 40),
    ) {
        let packed = v.compress(k, Vector::ZERO);
        let restored = packed.expand(k, v);
        prop_assert_eq!(restored, v);
    }
}

proptest! {
    #[test]
    fn mask_display_parse_roundtrip(bits in any::<u16>()) {
        let k = Mask::from_bits(bits);
        let text = k.to_string();
        prop_assert_eq!(text.parse::<Mask>().unwrap(), k);
    }

    #[test]
    fn mask_prefix_suffix_partition(lane in 0usize..16) {
        // prefix_before(l) and suffix_from(l) partition the lanes.
        let before = Mask::prefix_before(lane);
        let from = Mask::suffix_from(lane);
        prop_assert_eq!(before & from, Mask::EMPTY);
        prop_assert_eq!(before | from, Mask::FULL);
    }

    #[test]
    fn conflict_is_monotone_in_enables(
        idx in prop::array::uniform16(0i64..6),
        k_small in any::<u16>(),
        extra in any::<u16>(),
    ) {
        // Enabling more v2 lanes can only reveal more serialization
        // points at each position up to window effects — at minimum, the
        // empty enable set yields no conflicts.
        let v = Vector::from_lanes(idx);
        let none = vpconflictm(Mask::EMPTY, v, v);
        prop_assert_eq!(none, Mask::EMPTY);
        let small = vpconflictm(Mask::from_bits(k_small), v, v);
        let big = vpconflictm(Mask::from_bits(k_small | extra), v, v);
        // Both remain valid partitionings (checked by the dedicated
        // property); here: the all-enabled case dominates lane counts of
        // the empty case trivially and both are subsets of lanes 1..16.
        prop_assert!(!small.get(0));
        prop_assert!(!big.get(0));
    }
}
