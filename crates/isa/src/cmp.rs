//! Predicated vector comparisons (`VPCMP` family).

use core::fmt;

use crate::{vlen, Mask, Vector};

/// Comparison predicate for [`vcmp`], mirroring the AVX-512 `VPCMP`
/// immediate encodings for signed integers.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpOp {
    /// `a == b`
    Eq,
    /// `a != b`
    Ne,
    /// `a < b` (signed)
    Lt,
    /// `a <= b` (signed)
    Le,
    /// `a > b` (signed)
    Gt,
    /// `a >= b` (signed)
    Ge,
}

impl CmpOp {
    /// All predicates, useful for exhaustive tests.
    pub const ALL: [CmpOp; 6] = [
        CmpOp::Eq,
        CmpOp::Ne,
        CmpOp::Lt,
        CmpOp::Le,
        CmpOp::Gt,
        CmpOp::Ge,
    ];

    /// Evaluates the predicate on a pair of scalars.
    #[inline]
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The predicate with its operands swapped (`a op b` ⇔ `b op.swap() a`).
    #[must_use]
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::Le => CmpOp::Ge,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::Ge => CmpOp::Le,
        }
    }

    /// The logical negation (`!(a op b)` ⇔ `a op.negated() b`).
    #[must_use]
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpOp::Eq => "==",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        })
    }
}

/// Masked vector compare (`VPCMP k1 {k2}, v1, v2, imm`): the result bit for
/// lane `i` is set iff `k.get(i)` and `op.eval(a[i], b[i])`. Disabled lanes
/// produce 0, matching AVX-512 zero-masking of compare results.
///
/// # Examples
///
/// ```
/// use flexvec_isa::{vcmp, CmpOp, Mask, Vector};
///
/// let k = vcmp(Mask::full(), CmpOp::Lt, Vector::iota(), Vector::splat(3));
/// assert_eq!(k, Mask::from_lanes(&[0, 1, 2]));
/// ```
#[must_use]
#[inline]
pub fn vcmp(k: Mask, op: CmpOp, a: Vector, b: Vector) -> Mask {
    let mut out = Mask::EMPTY;
    for i in 0..vlen() {
        if k.get(i) && op.eval(a.lane(i), b.lane(i)) {
            out.set(i, true);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_predicates() {
        let a = Vector::from_slice(&[1, 2, 3]);
        let b = Vector::from_slice(&[2, 2, 2]);
        let k3 = Mask::first_n(3);
        assert_eq!(vcmp(k3, CmpOp::Eq, a, b), Mask::from_lanes(&[1]));
        assert_eq!(vcmp(k3, CmpOp::Ne, a, b), Mask::from_lanes(&[0, 2]));
        assert_eq!(vcmp(k3, CmpOp::Lt, a, b), Mask::from_lanes(&[0]));
        assert_eq!(vcmp(k3, CmpOp::Le, a, b), Mask::from_lanes(&[0, 1]));
        assert_eq!(vcmp(k3, CmpOp::Gt, a, b), Mask::from_lanes(&[2]));
        assert_eq!(vcmp(k3, CmpOp::Ge, a, b), Mask::from_lanes(&[1, 2]));
    }

    #[test]
    fn masked_lanes_are_zero() {
        let k = vcmp(
            Mask::from_lanes(&[5]),
            CmpOp::Eq,
            Vector::ZERO,
            Vector::ZERO,
        );
        assert_eq!(k, Mask::from_lanes(&[5]));
    }

    #[test]
    fn swapped_and_negated_laws() {
        for op in CmpOp::ALL {
            for (a, b) in [(1, 2), (2, 2), (3, 2), (i64::MIN, i64::MAX)] {
                assert_eq!(op.eval(a, b), op.swapped().eval(b, a), "{op} swap");
                assert_eq!(op.eval(a, b), !op.negated().eval(a, b), "{op} negate");
            }
        }
    }
}
