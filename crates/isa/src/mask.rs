//! Predicate mask registers.
//!
//! AVX-512 exposes eight architecturally visible mask registers
//! (`k0`–`k7`). FlexVec's code generation gives them *roles* —
//! `k_todo`, `k_safe`, `k_stop`, `k_rem`, `k_loop` — but they are ordinary
//! masks. This module models a mask over the [`vlen()`] active lanes of
//! the ambient runtime vector length.
//!
//! Lane 0 is the **leftmost** (oldest) lane, matching the layout of every
//! worked example in the paper ("vector elements are laid out left to
//! right").
//!
//! [`vlen()`]: crate::vlen

use core::fmt;
use core::ops::{BitAnd, BitAndAssign, BitOr, BitOrAssign, BitXor, BitXorAssign, Not};
use core::str::FromStr;

use crate::{vlen, MAX_VLEN};

/// A predicate mask over the [`vlen()`] active vector lanes.
///
/// Bit `i` corresponds to lane `i`; lane 0 is the leftmost lane in the
/// paper's diagrams and the *oldest* scalar iteration mapped onto the
/// vector. Bits at lane index `>= vlen()` are architecturally invisible
/// and always zero — every constructor and operator maintains that
/// invariant, so `Eq`/`Hash` never observe hidden lanes.
///
/// # Examples
///
/// ```
/// use flexvec_isa::Mask;
///
/// let k = Mask::from_lanes(&[0, 3, 7]);
/// assert!(k.get(3));
/// assert!(!k.get(4));
/// assert_eq!(k.count(), 3);
/// assert_eq!(k.first_set(), Some(0));
/// ```
///
/// [`vlen()`]: crate::vlen
// `repr(transparent)`: a `Mask` is exactly a `u64` in memory, so a
// `&[Mask]` register file can be handed to generated machine code as a
// flat `*mut u64`.
#[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(transparent)]
pub struct Mask(u64);

impl Mask {
    /// The empty mask (no lane enabled).
    pub const EMPTY: Mask = Mask(0);

    /// The full mask: every lane of the ambient vector length enabled.
    #[inline]
    pub fn full() -> Mask {
        Mask(full_bits(vlen()))
    }

    /// Creates a mask from its raw bit representation (bit `i` = lane
    /// `i`). Bits at lane index `>= vlen()` are discarded.
    #[inline]
    pub fn from_bits(bits: u64) -> Self {
        Mask(bits & full_bits(vlen()))
    }

    /// Returns the raw bit representation (bit `i` = lane `i`).
    #[inline]
    pub const fn bits(self) -> u64 {
        self.0
    }

    /// Creates a mask with exactly the given lanes enabled.
    ///
    /// # Panics
    ///
    /// Panics if any lane index is `>= vlen()`.
    ///
    /// [`vlen()`]: crate::vlen
    pub fn from_lanes(lanes: &[usize]) -> Self {
        let vl = vlen();
        let mut bits = 0u64;
        for &lane in lanes {
            assert!(lane < vl, "lane {lane} out of range for vl={vl}");
            bits |= 1 << lane;
        }
        Mask(bits)
    }

    /// Creates a mask from a boolean per lane, lane 0 first.
    pub fn from_bools(bools: &[bool]) -> Self {
        assert!(bools.len() <= vlen(), "too many lanes");
        let mut bits = 0u64;
        for (i, &b) in bools.iter().enumerate() {
            if b {
                bits |= 1 << i;
            }
        }
        Mask(bits)
    }

    /// Creates a mask with the first `n` lanes enabled.
    ///
    /// This is the mask a vector loop uses for a (possibly partial) trip of
    /// `n` remaining scalar iterations.
    ///
    /// # Panics
    ///
    /// Panics if `n > vlen()`.
    ///
    /// [`vlen()`]: crate::vlen
    #[inline]
    pub fn first_n(n: usize) -> Self {
        let vl = vlen();
        assert!(n <= vl, "prefix length {n} out of range for vl={vl}");
        Mask(full_bits(n))
    }

    /// Returns whether lane `lane` is enabled.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= vlen()`.
    ///
    /// [`vlen()`]: crate::vlen
    #[inline]
    pub fn get(self, lane: usize) -> bool {
        let vl = vlen();
        assert!(lane < vl, "lane {lane} out of range for vl={vl}");
        self.0 & (1 << lane) != 0
    }

    /// Returns a copy of the mask with lane `lane` set to `value`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= vlen()`.
    ///
    /// [`vlen()`]: crate::vlen
    #[inline]
    #[must_use]
    pub fn with(self, lane: usize, value: bool) -> Self {
        let vl = vlen();
        assert!(lane < vl, "lane {lane} out of range for vl={vl}");
        if value {
            Mask(self.0 | (1 << lane))
        } else {
            Mask(self.0 & !(1 << lane))
        }
    }

    /// Enables lane `lane` in place.
    #[inline]
    pub fn set(&mut self, lane: usize, value: bool) {
        *self = self.with(lane, value);
    }

    /// Returns `true` if no lane is enabled.
    ///
    /// The hardware analogue is `KTEST` setting ZF.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Returns `true` if at least one lane is enabled.
    #[inline]
    pub fn any(self) -> bool {
        self.0 != 0
    }

    /// Number of enabled lanes (`KPOPCNT`-style).
    #[inline]
    pub fn count(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Index of the first (leftmost / oldest) enabled lane, if any.
    #[inline]
    pub fn first_set(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros() as usize)
        }
    }

    /// Index of the last (rightmost / youngest) enabled lane, if any.
    #[inline]
    pub fn last_set(self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            Some(63 - self.0.leading_zeros() as usize)
        }
    }

    /// Mask of all lanes strictly before `lane` (exclusive prefix).
    #[inline]
    pub fn prefix_before(lane: usize) -> Self {
        Self::first_n(lane.min(vlen()))
    }

    /// Mask of all lanes up to and including `lane` (inclusive prefix).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= vlen()`.
    ///
    /// [`vlen()`]: crate::vlen
    #[inline]
    pub fn prefix_through(lane: usize) -> Self {
        let vl = vlen();
        assert!(lane < vl, "lane {lane} out of range for vl={vl}");
        Self::first_n(lane + 1)
    }

    /// Mask of all lanes at and after `lane` (the "current and succeeding
    /// lanes" used to build `k_rem`).
    #[inline]
    pub fn suffix_from(lane: usize) -> Self {
        !Self::prefix_before(lane)
    }

    /// `self & !other` (`KANDN` with swapped operand order: clears the lanes
    /// enabled in `other`).
    #[inline]
    #[must_use]
    pub fn and_not(self, other: Mask) -> Mask {
        Mask(self.0 & !other.0)
    }

    /// Iterates over the indices of enabled lanes, in increasing order.
    #[inline]
    pub fn iter(self) -> Lanes {
        Lanes(self.0)
    }

    /// Iterates over the indices of enabled (set) lanes, in increasing
    /// order.
    ///
    /// Identical to [`Mask::iter`]; the name makes call sites that walk
    /// only the *active* lanes of a predicated operation read explicitly
    /// ("for each set lane") and mirrors the bit-set vocabulary used by
    /// the executors.
    ///
    /// # Examples
    ///
    /// ```
    /// use flexvec_isa::Mask;
    ///
    /// let k = Mask::from_lanes(&[1, 4, 7]);
    /// assert_eq!(k.iter_set().collect::<Vec<_>>(), vec![1, 4, 7]);
    /// ```
    #[inline]
    pub fn iter_set(self) -> Lanes {
        Lanes(self.0)
    }

    /// Returns the active lanes as booleans, lane 0 first (one entry per
    /// lane of the ambient vector length).
    pub fn to_bools(self) -> Vec<bool> {
        (0..vlen()).map(|i| self.get(i)).collect()
    }
}

/// Bits of a prefix of `n` lanes (`n <= MAX_VLEN`).
#[inline]
fn full_bits(n: usize) -> u64 {
    debug_assert!(n <= MAX_VLEN);
    if n >= MAX_VLEN {
        u64::MAX
    } else {
        (1u64 << n) - 1
    }
}

/// Iterator over the enabled lane indices of a [`Mask`].
#[derive(Clone, Debug)]
pub struct Lanes(u64);

impl Iterator for Lanes {
    type Item = usize;

    #[inline]
    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            None
        } else {
            let lane = self.0.trailing_zeros() as usize;
            self.0 &= self.0 - 1;
            Some(lane)
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.0.count_ones() as usize;
        (n, Some(n))
    }
}

impl ExactSizeIterator for Lanes {}

impl IntoIterator for Mask {
    type Item = usize;
    type IntoIter = Lanes;

    fn into_iter(self) -> Lanes {
        self.iter()
    }
}

impl BitAnd for Mask {
    type Output = Mask;
    #[inline]
    fn bitand(self, rhs: Mask) -> Mask {
        Mask(self.0 & rhs.0)
    }
}

impl BitOr for Mask {
    type Output = Mask;
    #[inline]
    fn bitor(self, rhs: Mask) -> Mask {
        Mask(self.0 | rhs.0)
    }
}

impl BitXor for Mask {
    type Output = Mask;
    #[inline]
    fn bitxor(self, rhs: Mask) -> Mask {
        Mask(self.0 ^ rhs.0)
    }
}

/// Complement over the *active* lanes only: hidden lanes (index
/// `>= vlen()`) stay zero, so `!Mask::EMPTY == Mask::full()`.
impl Not for Mask {
    type Output = Mask;
    #[inline]
    fn not(self) -> Mask {
        Mask(!self.0 & full_bits(vlen()))
    }
}

impl BitAndAssign for Mask {
    #[inline]
    fn bitand_assign(&mut self, rhs: Mask) {
        self.0 &= rhs.0;
    }
}

impl BitOrAssign for Mask {
    #[inline]
    fn bitor_assign(&mut self, rhs: Mask) {
        self.0 |= rhs.0;
    }
}

impl BitXorAssign for Mask {
    #[inline]
    fn bitxor_assign(&mut self, rhs: Mask) {
        self.0 ^= rhs.0;
    }
}

impl fmt::Debug for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Mask({self})")
    }
}

/// Formats the mask in the paper's layout: lane 0 leftmost, one digit per
/// active lane, space separated (`"0 0 1 1 ..."`).
impl fmt::Display for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for lane in 0..vlen() {
            if lane > 0 {
                f.write_str(" ")?;
            }
            f.write_str(if self.get(lane) { "1" } else { "0" })?;
        }
        Ok(())
    }
}

impl fmt::Binary for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Binary::fmt(&self.0, f)
    }
}

impl fmt::LowerHex for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl fmt::UpperHex for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::UpperHex::fmt(&self.0, f)
    }
}

impl fmt::Octal for Mask {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Octal::fmt(&self.0, f)
    }
}

/// Clips to the active lanes, like [`Mask::from_bits`].
impl From<u64> for Mask {
    fn from(bits: u64) -> Mask {
        Mask::from_bits(bits)
    }
}

impl From<Mask> for u64 {
    fn from(mask: Mask) -> u64 {
        mask.bits()
    }
}

/// Error returned when parsing a [`Mask`] from the paper's textual layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseMaskError {
    expected: usize,
    found: String,
}

impl fmt::Display for ParseMaskError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "mask must be {} space-separated 0/1 digits (vl={}), found {:?}",
            self.expected, self.expected, self.found
        )
    }
}

impl std::error::Error for ParseMaskError {}

/// Parses the paper's textual mask layout: lane 0 first, whitespace
/// separated, one digit per active lane, e.g. `"0 0 1 1 1 1 1 1"` at
/// `vl = 8`.
impl FromStr for Mask {
    type Err = ParseMaskError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let vl = vlen();
        let mut bits = 0u64;
        let mut n = 0usize;
        for tok in s.split_whitespace() {
            match tok {
                "0" => {}
                "1" => {
                    if n < vl {
                        bits |= 1 << n;
                    }
                }
                _ => {
                    return Err(ParseMaskError {
                        expected: vl,
                        found: s.to_owned(),
                    })
                }
            }
            n += 1;
        }
        if n != vl {
            return Err(ParseMaskError {
                expected: vl,
                found: s.to_owned(),
            });
        }
        Ok(Mask(bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::with_vlen;

    #[test]
    fn empty_and_full() {
        assert!(Mask::EMPTY.is_empty());
        assert!(!Mask::EMPTY.any());
        for vl in crate::SUPPORTED_VLENS {
            with_vlen(vl, || {
                assert_eq!(Mask::full().count(), vl);
                assert_eq!(Mask::full().first_set(), Some(0));
                assert_eq!(Mask::full().last_set(), Some(vl - 1));
            });
        }
        assert_eq!(Mask::EMPTY.first_set(), None);
        assert_eq!(Mask::EMPTY.last_set(), None);
    }

    #[test]
    fn first_n_prefixes() {
        assert_eq!(Mask::first_n(0), Mask::EMPTY);
        assert_eq!(Mask::first_n(16), Mask::full());
        assert_eq!(Mask::first_n(3).bits(), 0b111);
        assert_eq!(Mask::prefix_before(5).bits(), 0b1_1111);
        assert_eq!(Mask::prefix_through(5).bits(), 0b11_1111);
        assert_eq!(Mask::suffix_from(14).bits(), 0b1100_0000_0000_0000);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn first_n_rejects_oversize() {
        let _ = Mask::first_n(17);
    }

    #[test]
    fn from_bits_clips_hidden_lanes() {
        with_vlen(8, || {
            assert_eq!(Mask::from_bits(u64::MAX).bits(), 0xff);
            assert_eq!(Mask::from_bits(0x100), Mask::EMPTY);
        });
        with_vlen(64, || {
            assert_eq!(Mask::from_bits(u64::MAX).bits(), u64::MAX);
        });
    }

    #[test]
    fn lane_get_set() {
        let mut k = Mask::EMPTY;
        k.set(4, true);
        k.set(9, true);
        assert!(k.get(4) && k.get(9));
        k.set(4, false);
        assert!(!k.get(4));
        assert_eq!(k, Mask::from_lanes(&[9]));
    }

    #[test]
    fn bit_operators() {
        let a = Mask::from_lanes(&[0, 1, 2]);
        let b = Mask::from_lanes(&[2, 3]);
        assert_eq!(a & b, Mask::from_lanes(&[2]));
        assert_eq!(a | b, Mask::from_lanes(&[0, 1, 2, 3]));
        assert_eq!(a ^ b, Mask::from_lanes(&[0, 1, 3]));
        assert_eq!(a.and_not(b), Mask::from_lanes(&[0, 1]));
        assert_eq!((!a).count(), vlen() - 3);
    }

    #[test]
    fn not_clips_to_active_width() {
        for vl in crate::SUPPORTED_VLENS {
            with_vlen(vl, || {
                assert_eq!(!Mask::EMPTY, Mask::full());
                assert_eq!(!Mask::full(), Mask::EMPTY);
                assert_eq!(Mask::suffix_from(0), Mask::full());
            });
        }
    }

    #[test]
    fn iteration_order() {
        let k = Mask::from_lanes(&[7, 2, 11]);
        let lanes: Vec<usize> = k.iter().collect();
        assert_eq!(lanes, vec![2, 7, 11]);
        assert_eq!(k.iter().len(), 3);
    }

    #[test]
    fn display_roundtrip() {
        let k = Mask::from_lanes(&[2, 3, 4, 5]);
        let text = k.to_string();
        assert_eq!(text, "0 0 1 1 1 1 0 0 0 0 0 0 0 0 0 0");
        assert_eq!(text.parse::<Mask>().unwrap(), k);
        with_vlen(8, || {
            let k = Mask::from_lanes(&[1, 2]);
            assert_eq!(k.to_string(), "0 1 1 0 0 0 0 0");
            assert_eq!("0 1 1 0 0 0 0 0".parse::<Mask>().unwrap(), k);
        });
    }

    #[test]
    fn parse_rejects_malformed() {
        assert!("0 1".parse::<Mask>().is_err());
        assert!("0 0 2 1 1 1 1 1 1 1 1 1 1 1 1 1".parse::<Mask>().is_err());
        with_vlen(8, || {
            // Sixteen digits is wrong at vl = 8.
            assert!("0 0 1 1 1 1 1 1 1 1 1 1 1 1 1 1".parse::<Mask>().is_err());
        });
    }

    #[test]
    fn from_bools_partial() {
        let k = Mask::from_bools(&[true, false, true]);
        assert_eq!(k, Mask::from_lanes(&[0, 2]));
        assert_eq!(k.to_bools()[..3], [true, false, true]);
        assert_eq!(k.to_bools().len(), vlen());
    }
}
