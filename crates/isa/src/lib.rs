//! # flexvec-isa
//!
//! A functional (software) model of the vector instruction set used by the
//! FlexVec paper (*FlexVec: Auto-Vectorization for Irregular Loops*, PLDI
//! 2016): the relevant AVX-512 subset — predicated arithmetic, compares,
//! blends, gathers/scatters, compress/expand, permutes — plus the four
//! FlexVec extensions:
//!
//! * [`kftm_exc`] / [`kftm_inc`] — partial mask generation (`KFTM.EXC/INC`)
//! * [`vpslctlast`] — select-last broadcast (`VPSLCTLAST`)
//! * [`vpconflictm`] — running memory-conflict detection (`VPCONFLICTM`)
//! * [`vgather_ff`] / [`vmov_ff`] — first-faulting gather/load
//!   (`VPGATHERFF`, `VMOVFF`)
//!
//! ## Lane model
//!
//! The ISA is **vector-length agnostic** in the style of ARM SVE: the
//! number of active lanes is the ambient *runtime vector length* `vl`,
//! read with [`vlen`] and scoped with [`with_vlen`]. Supported widths are
//! [`SUPPORTED_VLENS`] (8, 16, 32 or 64 lanes); the default,
//! [`DEFAULT_VLEN`] = 16, matches the paper's 512-bit `.D` configuration.
//! Storage is always [`MAX_VLEN`] = 64 lanes wide so that `Mask` and
//! `Vector` stay `Copy` with a fixed `repr(transparent)` layout; lanes at
//! index `>= vlen()` are architecturally invisible and always hold zero.
//!
//! The paper's `.D` forms operate on 32-bit elements; this model widens
//! each element to `i64` so address arithmetic is exact (the separate
//! timing model in `flexvec-sim` charges per active lane, so the widening
//! does not distort costs). Lane 0 is the **leftmost** lane in the paper's
//! diagrams and maps the *oldest* scalar iteration.
//!
//! Every worked example printed in the paper (Sections 3.3.1, 3.4, 3.5,
//! 3.6) is reproduced as a unit test in the corresponding module.
//!
//! ## Example: driving a Vector Partitioning Loop by hand
//!
//! ```
//! use flexvec_isa::{kftm_exc, vpconflictm, vlen, Mask, Vector};
//!
//! // Indices written (and read) by a vector iteration; lanes 2 and 3
//! // touch the same location, so lane 3 must wait for lane 2.
//! let idx = Vector::from_fn(|lane| match lane {
//!     2 | 3 => 7,                 // the conflict
//!     last if last == vlen() - 1 => 3,
//!     other => 100 + other as i64,
//! });
//! let mut k_todo = Mask::full();
//! let mut partitions = 0;
//! while k_todo.any() {
//!     let k_stop = vpconflictm(k_todo, idx, idx);
//!     let k_safe = kftm_exc(k_todo, k_stop);
//!     // ... execute the relaxed SCC under k_safe ...
//!     k_todo = k_todo.and_not(k_safe);
//!     partitions += 1;
//! }
//! assert_eq!(partitions, 2); // one conflict => two partitions
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use core::cell::Cell;
use core::fmt;

/// Maximum number of lanes a register can hold; the fixed storage width of
/// [`Mask`] and [`Vector`]. Lanes at index `>= vlen()` always hold zero.
pub const MAX_VLEN: usize = 64;

/// The default runtime vector length (the paper's 512-bit `.D`
/// configuration: 16 lanes).
pub const DEFAULT_VLEN: usize = 16;

/// The runtime vector lengths this model supports, in increasing order.
pub const SUPPORTED_VLENS: [usize; 4] = [8, 16, 32, 64];

thread_local! {
    static AMBIENT_VLEN: Cell<usize> = const { Cell::new(DEFAULT_VLEN) };
}

/// The ambient runtime vector length for the current thread.
///
/// Every predicated operation in this crate reads its lane count from
/// here, mirroring how an SVE binary reads the hardware vector length.
/// Defaults to [`DEFAULT_VLEN`]; change it with [`set_vlen`] or scope it
/// with [`with_vlen`].
#[inline]
pub fn vlen() -> usize {
    AMBIENT_VLEN.get()
}

/// Returns `true` if `vl` is one of [`SUPPORTED_VLENS`].
#[inline]
pub fn is_supported_vlen(vl: usize) -> bool {
    matches!(vl, 8 | 16 | 32 | 64)
}

/// Sets the ambient runtime vector length for the current thread.
///
/// Values produced under one `vl` must not be reinterpreted under a wider
/// one (their hidden lanes are zero, which is usually what you want, but
/// their *meaning* was fixed at creation); prefer [`with_vlen`] for
/// scoped changes.
pub fn set_vlen(vl: usize) -> Result<(), UnsupportedVlen> {
    if !is_supported_vlen(vl) {
        return Err(UnsupportedVlen { vl });
    }
    AMBIENT_VLEN.set(vl);
    Ok(())
}

/// Runs `f` with the ambient vector length set to `vl`, restoring the
/// previous length afterwards (also on panic).
///
/// # Panics
///
/// Panics if `vl` is not one of [`SUPPORTED_VLENS`]; use
/// [`is_supported_vlen`] to validate untrusted input first.
pub fn with_vlen<R>(vl: usize, f: impl FnOnce() -> R) -> R {
    assert!(
        is_supported_vlen(vl),
        "unsupported vector length {vl} (supported: {SUPPORTED_VLENS:?})"
    );
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            AMBIENT_VLEN.set(self.0);
        }
    }
    let _restore = Restore(AMBIENT_VLEN.replace(vl));
    f()
}

/// Error returned by [`set_vlen`] for a width outside [`SUPPORTED_VLENS`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UnsupportedVlen {
    /// The rejected width.
    pub vl: usize,
}

impl fmt::Display for UnsupportedVlen {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unsupported vector length {} (supported: {SUPPORTED_VLENS:?})",
            self.vl
        )
    }
}

impl std::error::Error for UnsupportedVlen {}

mod cmp;
mod flexvec_ops;
mod mask;
mod memops;
mod vector;

pub use cmp::{vcmp, CmpOp};
pub use flexvec_ops::{kftm_exc, kftm_inc, vpconflictm, vpslctlast};
pub use mask::{Lanes, Mask, ParseMaskError};
pub use memops::{
    vgather, vgather_ff, vload, vmov_ff, vscatter, vstore, FirstFaultResult, LaneMemory, MemFault,
    LANE_BYTES,
};
pub use vector::Vector;

#[cfg(test)]
mod vl_tests {
    use super::*;

    #[test]
    fn default_is_sixteen() {
        assert_eq!(vlen(), DEFAULT_VLEN);
    }

    #[test]
    fn with_vlen_scopes_and_restores() {
        assert_eq!(vlen(), 16);
        let inner = with_vlen(8, vlen);
        assert_eq!(inner, 8);
        assert_eq!(vlen(), 16);
    }

    #[test]
    fn with_vlen_restores_on_panic() {
        let caught = std::panic::catch_unwind(|| with_vlen(32, || panic!("boom")));
        assert!(caught.is_err());
        assert_eq!(vlen(), 16);
    }

    #[test]
    fn set_vlen_rejects_unsupported() {
        assert!(set_vlen(12).is_err());
        assert!(set_vlen(0).is_err());
        assert!(set_vlen(128).is_err());
        assert_eq!(vlen(), 16);
        for vl in SUPPORTED_VLENS {
            assert!(is_supported_vlen(vl));
        }
        set_vlen(64).unwrap();
        assert_eq!(vlen(), 64);
        set_vlen(DEFAULT_VLEN).unwrap();
    }
}
