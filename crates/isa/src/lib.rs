//! # flexvec-isa
//!
//! A functional (software) model of the vector instruction set used by the
//! FlexVec paper (*FlexVec: Auto-Vectorization for Irregular Loops*, PLDI
//! 2016): the relevant AVX-512 subset — predicated arithmetic, compares,
//! blends, gathers/scatters, compress/expand, permutes — plus the four
//! FlexVec extensions:
//!
//! * [`kftm_exc`] / [`kftm_inc`] — partial mask generation (`KFTM.EXC/INC`)
//! * [`vpslctlast`] — select-last broadcast (`VPSLCTLAST`)
//! * [`vpconflictm`] — running memory-conflict detection (`VPCONFLICTM`)
//! * [`vgather_ff`] / [`vmov_ff`] — first-faulting gather/load
//!   (`VPGATHERFF`, `VMOVFF`)
//!
//! ## Lane model
//!
//! One vector register holds [`VLEN`] = 16 lanes. The paper's `.D` forms
//! operate on 16×32-bit elements of a 512-bit register; this model keeps 16
//! lanes but widens each element to `i64` so address arithmetic is exact
//! (the separate timing model in `flexvec-sim` charges per active lane, so
//! the widening does not distort costs). Lane 0 is the **leftmost** lane in
//! the paper's diagrams and maps the *oldest* scalar iteration.
//!
//! Every worked example printed in the paper (Sections 3.3.1, 3.4, 3.5,
//! 3.6) is reproduced as a unit test in the corresponding module.
//!
//! ## Example: driving a Vector Partitioning Loop by hand
//!
//! ```
//! use flexvec_isa::{kftm_exc, vpconflictm, Mask, Vector};
//!
//! // Indices written (and read) by a vector iteration; lanes 2 and 3
//! // touch the same location, so lane 3 must wait for lane 2.
//! let idx = Vector::from_slice(&[0, 1, 7, 7, 4, 5, 6, 8, 9, 10, 11, 12, 13, 14, 15, 3]);
//! let mut k_todo = Mask::FULL;
//! let mut partitions = 0;
//! while k_todo.any() {
//!     let k_stop = vpconflictm(k_todo, idx, idx);
//!     let k_safe = kftm_exc(k_todo, k_stop);
//!     // ... execute the relaxed SCC under k_safe ...
//!     k_todo = k_todo.and_not(k_safe);
//!     partitions += 1;
//! }
//! assert_eq!(partitions, 2); // one conflict => two partitions
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Number of lanes in a vector register (512 bits of `.D` elements).
pub const VLEN: usize = 16;

mod cmp;
mod flexvec_ops;
mod mask;
mod memops;
mod vector;

pub use cmp::{vcmp, CmpOp};
pub use flexvec_ops::{kftm_exc, kftm_inc, vpconflictm, vpslctlast};
pub use mask::{Lanes, Mask, ParseMaskError};
pub use memops::{
    vgather, vgather_ff, vload, vmov_ff, vscatter, vstore, FirstFaultResult, LaneMemory, MemFault,
    LANE_BYTES,
};
pub use vector::Vector;
