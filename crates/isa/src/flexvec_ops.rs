//! The FlexVec ISA extensions (paper Sections 3.4–3.6).
//!
//! These are the four non-memory instructions FlexVec adds on top of
//! AVX-512:
//!
//! * [`kftm_exc`] / [`kftm_inc`] — partial mask generation (`KFTM.EXC`,
//!   `KFTM.INC`): compute the `k_safe` mask that drives one iteration of a
//!   Vector Partitioning Loop.
//! * [`vpslctlast`] — scalar value propagation (`VPSLCTLAST`): broadcast the
//!   last enabled lane to every lane.
//! * [`vpconflictm`] — memory conflict detection (`VPCONFLICTM.D/Q`):
//!   compute runtime serialization points between a vector of store
//!   addresses and a vector of load addresses.
//!
//! Every worked example in the paper is reproduced verbatim as a unit test
//! at the bottom of this module.

use crate::{vlen, Mask, Vector};

/// `KFTM.EXC k1 {k2}, k3` — *exclusive* partial mask generation.
///
/// Scans lanes from the least significant (leftmost/oldest, lane 0) to the
/// most significant. Sets the output bit for every lane enabled by the
/// write mask `k2` **up to but not including** the first lane that is
/// enabled in both `k3` (the stop/dependency mask) and `k2`. Stop bits in
/// `k3` for lanes disabled by `k2` are ignored — in partial vector code
/// those are lanes already processed by an earlier VPL iteration.
///
/// The exclusive variant clobbers the lane in which the dependency bites:
/// it is used when the *current* lane must wait for an earlier lane (e.g. a
/// load that reads a location stored by a preceding lane), and for
/// dependent statements lexically **after** a conditional scalar update.
///
/// A stop bit that falls **on the first enabled lane itself** is skipped:
/// stop bits are serialization points marking where a new partition
/// *starts* (see [`vpconflictm`]'s "from the point of last conflict"
/// window), and once every preceding lane has been retired from the write
/// mask, the dependency that produced that stop bit is satisfied. Without
/// this rule the Figure 2(b) Vector Partitioning Loop would livelock on its
/// second iteration, since `k_todo` then begins exactly at the first stop
/// bit.
///
/// If `k3 & k2` has no enabled bit past the first enabled lane, the whole
/// of `k2` is safe.
///
/// # Examples
///
/// The paper's Section 3.4 example:
///
/// ```
/// use flexvec_isa::{kftm_exc, Mask};
///
/// let k3: Mask = "1 1 0 0 0 1 1 1 0 0 0 0 0 0 0 0".parse()?;
/// let k2: Mask = "0 0 0 1 1 1 0 0 0 0 0 0 0 0 0 0".parse()?;
/// let k1 = kftm_exc(k2, k3);
/// assert_eq!(k1, "0 0 0 1 1 0 0 0 0 0 0 0 0 0 0 0".parse()?);
/// # Ok::<(), flexvec_isa::ParseMaskError>(())
/// ```
#[must_use]
#[inline]
pub fn kftm_exc(k2: Mask, k3: Mask) -> Mask {
    let Some(first_enabled) = k2.first_set() else {
        return Mask::EMPTY;
    };
    // A stop bit on the first enabled lane marks a partition boundary that
    // has already been reached; only stop bits strictly after it clip.
    let stops_after = (k3 & k2) & Mask::suffix_from(first_enabled + 1);
    match stops_after.first_set() {
        Some(stop) => k2 & Mask::prefix_before(stop),
        None => k2,
    }
}

/// `KFTM.INC k1 {k2}, k3` — *inclusive* partial mask generation.
///
/// Like [`kftm_exc`], but the safe region **extends through the lane in
/// which the update happens**. This variant drives statements that are
/// lexically *before* the updating statement: those must still execute in
/// the updating lane itself.
///
/// # Examples
///
/// The paper's Section 3.4 example (same inputs as the exclusive one; lane 5
/// is now included):
///
/// ```
/// use flexvec_isa::{kftm_inc, Mask};
///
/// let k3: Mask = "1 1 0 0 0 1 1 1 0 0 0 0 0 0 0 0".parse()?;
/// let k2: Mask = "0 0 0 1 1 1 0 0 0 0 0 0 0 0 0 0".parse()?;
/// let k1 = kftm_inc(k2, k3);
/// assert_eq!(k1, "0 0 0 1 1 1 0 0 0 0 0 0 0 0 0 0".parse()?);
/// # Ok::<(), flexvec_isa::ParseMaskError>(())
/// ```
#[must_use]
#[inline]
pub fn kftm_inc(k2: Mask, k3: Mask) -> Mask {
    match (k3 & k2).first_set() {
        Some(stop) => k2 & Mask::prefix_through(stop),
        None => k2,
    }
}

/// `VPSLCTLAST v2, k1, v1` — select-last broadcast (scalar value
/// propagation, paper Section 3.5).
///
/// Selects the **last enabled** element of `v1` and broadcasts it to every
/// lane of the result. If no lane is enabled (`k1` empty) the last active
/// lane (lane `vlen() - 1`) is selected — that convention lets a vector
/// loop carry the value of a scalar across vector iterations without a
/// branch.
///
/// [`vlen()`]: crate::vlen
///
/// # Examples
///
/// The paper's Section 3.5 example (`h` lives in lane 7, the last set bit):
///
/// ```
/// use flexvec_isa::{vpslctlast, Mask, Vector};
///
/// let v1 = Vector::from_fn(|i| 100 + i as i64);
/// let k1 = Mask::first_n(8).and_not(Mask::first_n(3)); // lanes 3..=7
/// assert_eq!(vpslctlast(k1, v1), Vector::splat(107));
/// // Empty mask selects the last active lane, whatever the width.
/// let last = 100 + flexvec_isa::vlen() as i64 - 1;
/// assert_eq!(vpslctlast(Mask::EMPTY, v1), Vector::splat(last));
/// # Ok::<(), flexvec_isa::ParseMaskError>(())
/// ```
#[must_use]
#[inline]
pub fn vpslctlast(k1: Mask, v1: Vector) -> Vector {
    let lane = k1.last_set().unwrap_or(vlen() - 1);
    Vector::splat(v1.lane(lane))
}

/// `VPCONFLICTM.D/Q k1 {k2}, v1, v2` — running memory-conflict detection
/// (paper Section 3.6).
///
/// Compares each element of `v1` (typically the *load* addresses/indices)
/// against the **preceding** elements of `v2` (typically the *store*
/// addresses/indices), restarting the comparison window at the point of the
/// last detected conflict. A set bit in the result marks a lane that must
/// wait for the computation of an earlier lane of the same vector
/// instruction: a serialization point. Set bits guarantee that all
/// definitions prior to them dominate succeeding uses.
///
/// The write mask `k2` gates which elements of `v2` participate; conflicts
/// against disabled `v2` elements are not detected (those lanes were
/// already retired by an earlier VPL iteration).
///
/// # Examples
///
/// The paper's first Section 3.6 example (conflicts at lanes 6, 8, 15):
///
/// ```
/// use flexvec_isa::{vpconflictm, Mask, Vector};
///
/// let v1 = Vector::from_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 5, 7, 9, 9, 10, 10]);
/// let v2 = Vector::from_slice(&[0, 0, 0, 1, 5, 7, 9, 2, 0, 2, 3, 4, 0, 9, 10, 10]);
/// let k1 = vpconflictm(Mask::full(), v1, v2);
/// assert_eq!(k1, Mask::from_lanes(&[6, 8, 15]));
/// ```
#[must_use]
#[inline]
pub fn vpconflictm(k2: Mask, v1: Vector, v2: Vector) -> Mask {
    let mut out = Mask::EMPTY;
    let mut window_start = 0usize;
    for j in 0..vlen() {
        let conflicts = (window_start..j).any(|i| k2.get(i) && v2.lane(i) == v1.lane(j));
        if conflicts {
            out.set(j, true);
            window_start = j;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(s: &str) -> Mask {
        s.parse().expect("test mask literal")
    }

    // --- KFTM paper examples (Section 3.4) --------------------------------

    #[test]
    fn kftm_exc_paper_example() {
        let k3 = m("1 1 0 0 0 1 1 1 0 0 0 0 0 0 0 0");
        let k2 = m("0 0 0 1 1 1 0 0 0 0 0 0 0 0 0 0");
        assert_eq!(kftm_exc(k2, k3), m("0 0 0 1 1 0 0 0 0 0 0 0 0 0 0 0"));
    }

    #[test]
    fn kftm_inc_paper_example() {
        let k3 = m("1 1 0 0 0 1 1 1 0 0 0 0 0 0 0 0");
        let k2 = m("0 0 0 1 1 1 0 0 0 0 0 0 0 0 0 0");
        assert_eq!(kftm_inc(k2, k3), m("0 0 0 1 1 1 0 0 0 0 0 0 0 0 0 0"));
    }

    #[test]
    fn kftm_no_stop_passes_all_enabled_lanes() {
        let k2 = Mask::from_lanes(&[2, 4, 9]);
        assert_eq!(kftm_exc(k2, Mask::EMPTY), k2);
        assert_eq!(kftm_inc(k2, Mask::EMPTY), k2);
        // Stop bits only on disabled lanes are ignored too.
        let k3 = Mask::from_lanes(&[0, 3, 8]);
        assert_eq!(kftm_exc(k2, k3), k2);
    }

    #[test]
    fn kftm_stop_on_first_enabled_lane() {
        let k2 = Mask::from_lanes(&[3, 4, 5]);
        let k3 = Mask::from_lanes(&[3]);
        // Exclusive: a stop bit on the first enabled lane is a partition
        // boundary already reached — the whole remainder is safe. (This is
        // what lets the Figure 2(b) VPL make progress on its second
        // iteration.)
        assert_eq!(kftm_exc(k2, k3), k2);
        // Inclusive: the updating lane itself is safe, nothing more.
        assert_eq!(kftm_inc(k2, k3), Mask::from_lanes(&[3]));
    }

    #[test]
    fn kftm_exc_second_vpl_round_makes_progress() {
        // Figure 2(b), round 2: k_todo begins at the serialization point.
        let k_todo = Mask::suffix_from(6);
        let k_stop = Mask::from_lanes(&[6]);
        assert_eq!(kftm_exc(k_todo, k_stop), k_todo);
        // With a further conflict at lane 10 the safe prefix stops there.
        let k_stop2 = Mask::from_lanes(&[6, 10]);
        assert_eq!(kftm_exc(k_todo, k_stop2), Mask::from_lanes(&[6, 7, 8, 9]));
    }

    #[test]
    fn kftm_empty_write_mask() {
        assert_eq!(kftm_exc(Mask::EMPTY, Mask::full()), Mask::EMPTY);
        assert_eq!(kftm_inc(Mask::EMPTY, Mask::full()), Mask::EMPTY);
    }

    #[test]
    fn kftm_inc_is_exc_plus_stop_lane() {
        // When the first enabled stop bit is NOT on the first enabled lane,
        // the inclusive mask is exactly the exclusive mask plus that lane.
        for stop_bits in [0b100100u64, 0b1000_0000_0000_0000, 0x0860] {
            for enabled in [0xffffu64, 0x0ff0, 0xaaab] {
                let k2 = Mask::from_bits(enabled);
                let k3 = Mask::from_bits(stop_bits);
                let first = k2.first_set().unwrap();
                let Some(stop) = (k3 & k2).first_set() else {
                    assert_eq!(kftm_inc(k2, k3), kftm_exc(k2, k3));
                    continue;
                };
                if stop == first {
                    continue; // boundary-skip case, checked separately
                }
                let exc = kftm_exc(k2, k3);
                let inc = kftm_inc(k2, k3);
                assert_eq!(exc & inc, exc, "exc ⊆ inc");
                assert_eq!(inc, exc | Mask::from_lanes(&[stop]));
            }
        }
    }

    // --- VPSLCTLAST paper example (Section 3.5) ---------------------------

    #[test]
    fn vpslctlast_paper_example() {
        // v1 = a b c d e f g h i j k l m n o p, encoded as 0..=15;
        // k1 enables lanes 3..=7, so the broadcast value is lane 7 = 'h'.
        let v1 = Vector::iota();
        let k1 = m("0 0 0 1 1 1 1 1 0 0 0 0 0 0 0 0");
        assert_eq!(vpslctlast(k1, v1), Vector::splat(7));
    }

    #[test]
    fn vpslctlast_empty_mask_selects_last_lane() {
        let v1 = Vector::from_fn(|i| (i * i) as i64);
        assert_eq!(vpslctlast(Mask::EMPTY, v1), Vector::splat(225));
    }

    #[test]
    fn vpslctlast_single_lane() {
        let v1 = Vector::iota();
        assert_eq!(vpslctlast(Mask::from_lanes(&[0]), v1), Vector::splat(0));
        assert_eq!(vpslctlast(Mask::from_lanes(&[15]), v1), Vector::splat(15));
    }

    // --- VPCONFLICTM paper examples (Section 3.6) -------------------------

    /// First example: no write mask (all lanes of v2 enabled).
    /// 'a' is encoded as 10.
    #[test]
    fn vpconflictm_paper_example_unmasked() {
        let v1 = Vector::from_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 5, 7, 9, 9, 10, 10]);
        let v2 = Vector::from_slice(&[0, 0, 0, 1, 5, 7, 9, 2, 0, 2, 3, 4, 0, 9, 10, 10]);
        let k1 = vpconflictm(Mask::full(), v1, v2);
        assert_eq!(k1, m("0 0 0 0 0 0 1 0 1 0 0 0 0 0 0 1"));
    }

    /// Second example: write mask enables only lanes 8..=15 of v2, so the
    /// conflicts through lanes 5 and 6 disappear and only lane 15 remains.
    #[test]
    fn vpconflictm_paper_example_masked() {
        let v1 = Vector::from_slice(&[1, 2, 3, 4, 5, 6, 7, 8, 9, 1, 5, 7, 9, 9, 10, 10]);
        let v2 = Vector::from_slice(&[0, 0, 0, 1, 5, 7, 9, 2, 0, 2, 3, 4, 0, 9, 10, 10]);
        let k2 = m("0 0 0 0 0 0 0 0 1 1 1 1 1 1 1 1");
        let k1 = vpconflictm(k2, v1, v2);
        assert_eq!(k1, m("0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 1"));
    }

    #[test]
    fn vpconflictm_no_conflicts() {
        let v1 = Vector::iota();
        let v2 = Vector::from_fn(|i| 100 + i as i64);
        assert_eq!(vpconflictm(Mask::full(), v1, v2), Mask::EMPTY);
    }

    #[test]
    fn vpconflictm_all_same_address() {
        // Every lane stores to and loads from the same location: each lane
        // after the first conflicts with its immediate predecessor, giving a
        // serialization point per lane — the fully serialized case.
        let v = Vector::splat(42);
        let k1 = vpconflictm(Mask::full(), v, v);
        assert_eq!(k1, !Mask::from_lanes(&[0]));
    }

    #[test]
    fn vpconflictm_window_restarts_at_conflict() {
        // v2 has 7 at lane 0 only. v1 looks for 7 at lanes 3 and 5.
        // Lane 3 conflicts (window 0..3 sees lane 0). The window restarts at
        // 3, so lane 5 does NOT see lane 0's store again.
        let mut v1 = Vector::ZERO;
        v1[3] = 7;
        v1[5] = 7;
        let mut v2 = Vector::from_fn(|i| -(i as i64) - 1);
        v2[0] = 7;
        let k1 = vpconflictm(Mask::full(), v1, v2);
        assert_eq!(k1, Mask::from_lanes(&[3]));
    }

    #[test]
    fn vpconflictm_lane0_never_conflicts() {
        // Lane 0 has no preceding elements, so its bit can never be set.
        let v = Vector::splat(1);
        for bits in [0xffffu64, 0x00ff, 0xf00f] {
            assert!(!vpconflictm(Mask::from_bits(bits), v, v).get(0));
        }
    }
}
