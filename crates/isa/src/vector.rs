//! Vector register values.
//!
//! A 512-bit AVX-512 register holds 16 double-word (`.D`) or 8 quad-word
//! (`.Q`) elements. The functional model widens every lane to `i64` so that
//! address arithmetic and reductions never overflow; the *timing* model in
//! `flexvec-sim` charges memory operations per active lane and ALU
//! operations per instruction, so the widening does not distort costs.
//! Lane 0 is the leftmost lane of the paper's diagrams and maps the oldest
//! scalar iteration.
//!
//! The number of *active* lanes is the ambient runtime vector length
//! ([`vlen()`]); storage is always [`MAX_VLEN`] lanes wide, and hidden
//! lanes (index `>= vlen()`) always hold zero.
//!
//! [`vlen()`]: crate::vlen

use core::fmt;
use core::ops::{Index, IndexMut};

use crate::{vlen, Mask, MAX_VLEN};

/// A vector register value: [`vlen()`] active lanes of `i64`.
///
/// Storage is a fixed [`MAX_VLEN`]-lane array so the type stays `Copy`
/// with a stable layout; lanes at index `>= vlen()` are architecturally
/// invisible and always zero (every constructor and operation maintains
/// this, so `Eq`/`Hash` never observe hidden lanes).
///
/// # Examples
///
/// ```
/// use flexvec_isa::{vlen, Mask, Vector};
///
/// let v = Vector::iota();             // 0, 1, 2, ..., vlen()-1
/// let w = v.add(Vector::splat(10));   // 10, 11, ...
/// assert_eq!(w[0], 10);
/// assert_eq!(w[vlen() - 1], 10 + vlen() as i64 - 1);
///
/// // Predicated merge: disabled lanes keep the destination's old value.
/// let k = Mask::first_n(4);
/// let merged = Vector::splat(-1).merge(k, w);
/// assert_eq!(merged[3], 13);
/// assert_eq!(merged[4], -1);
/// ```
///
/// [`vlen()`]: crate::vlen
// `repr(transparent)`: a `Vector` is exactly `[i64; MAX_VLEN]` in memory,
// so a `&[Vector]` register file can be handed to generated machine code
// as a flat `*mut i64` (lane `l` of register `r` at element
// `r * MAX_VLEN + l`).
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
#[repr(transparent)]
pub struct Vector(pub(crate) [i64; MAX_VLEN]);

// The arithmetic method names deliberately mirror the ISA mnemonics
// (`VPADD` → `add`); they are inherent methods, not operator overloads.
#[allow(clippy::should_implement_trait)]
impl Vector {
    /// All-zero vector.
    pub const ZERO: Vector = Vector([0; MAX_VLEN]);

    /// Creates a vector from a slice of at most [`vlen()`] values; missing
    /// lanes are zero.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() > vlen()`.
    ///
    /// [`vlen()`]: crate::vlen
    #[inline]
    pub fn from_slice(values: &[i64]) -> Self {
        let vl = vlen();
        assert!(
            values.len() <= vl,
            "too many lanes: {} (vl={vl})",
            values.len()
        );
        let mut lanes = [0i64; MAX_VLEN];
        lanes[..values.len()].copy_from_slice(values);
        Vector(lanes)
    }

    /// Creates a vector whose active lane `i` is `f(i)`; hidden lanes are
    /// zero.
    #[inline]
    pub fn from_fn(mut f: impl FnMut(usize) -> i64) -> Self {
        let mut lanes = [0i64; MAX_VLEN];
        for (i, lane) in lanes.iter_mut().enumerate().take(vlen()) {
            *lane = f(i);
        }
        Vector(lanes)
    }

    /// Broadcasts a scalar to all active lanes (`VPBROADCAST`).
    #[inline]
    pub fn splat(value: i64) -> Self {
        let mut lanes = [0i64; MAX_VLEN];
        for lane in lanes.iter_mut().take(vlen()) {
            *lane = value;
        }
        Vector(lanes)
    }

    /// The lane-index vector `0, 1, 2, ..., vlen()-1`, used to materialize
    /// the vectorized induction variable.
    #[inline]
    pub fn iota() -> Self {
        Vector::from_fn(|i| i as i64)
    }

    /// Returns the active lanes as a slice (lane 0 first, `vlen()` long).
    #[inline]
    pub fn as_lanes(&self) -> &[i64] {
        &self.0[..vlen()]
    }

    /// Returns the value of lane `lane`.
    ///
    /// Hidden lanes (`vlen() <= lane < MAX_VLEN`) read as zero.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= MAX_VLEN`.
    #[inline]
    pub fn lane(self, lane: usize) -> i64 {
        self.0[lane]
    }

    /// Returns a copy with lane `lane` replaced by `value`.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= vlen()` (hidden lanes must stay zero).
    ///
    /// [`vlen()`]: crate::vlen
    #[inline]
    #[must_use]
    pub fn with_lane(mut self, lane: usize, value: i64) -> Self {
        let vl = vlen();
        assert!(lane < vl, "lane {lane} out of range for vl={vl}");
        self.0[lane] = value;
        self
    }

    /// Lane-wise merge: enabled lanes take values from `src`, disabled lanes
    /// keep `self`'s value. This is AVX-512 merge-masking with `self` as the
    /// destination's old contents.
    #[inline]
    #[must_use]
    pub fn merge(self, k: Mask, src: Vector) -> Vector {
        Vector::from_fn(|i| {
            if k.bits() & (1 << i) != 0 {
                src.0[i]
            } else {
                self.0[i]
            }
        })
    }

    /// Applies a binary operation lane-wise over the active lanes.
    #[inline]
    pub fn zip_with(self, rhs: Vector, mut f: impl FnMut(i64, i64) -> i64) -> Vector {
        Vector::from_fn(|i| f(self.0[i], rhs.0[i]))
    }

    /// Applies a unary operation lane-wise over the active lanes.
    #[inline]
    pub fn map(self, mut f: impl FnMut(i64) -> i64) -> Vector {
        Vector::from_fn(|i| f(self.0[i]))
    }

    /// Lane-wise wrapping addition (`VPADD`).
    #[inline]
    #[must_use]
    pub fn add(self, rhs: Vector) -> Vector {
        self.zip_with(rhs, i64::wrapping_add)
    }

    /// Lane-wise wrapping subtraction (`VPSUB`).
    #[inline]
    #[must_use]
    pub fn sub(self, rhs: Vector) -> Vector {
        self.zip_with(rhs, i64::wrapping_sub)
    }

    /// Lane-wise wrapping multiplication (`VPMULL`).
    #[inline]
    #[must_use]
    pub fn mul(self, rhs: Vector) -> Vector {
        self.zip_with(rhs, i64::wrapping_mul)
    }

    /// Lane-wise minimum (`VPMINS`).
    #[inline]
    #[must_use]
    pub fn min(self, rhs: Vector) -> Vector {
        self.zip_with(rhs, i64::min)
    }

    /// Lane-wise maximum (`VPMAXS`).
    #[inline]
    #[must_use]
    pub fn max(self, rhs: Vector) -> Vector {
        self.zip_with(rhs, i64::max)
    }

    /// Lane-wise bitwise AND (`VPAND`).
    #[inline]
    #[must_use]
    pub fn and(self, rhs: Vector) -> Vector {
        self.zip_with(rhs, |a, b| a & b)
    }

    /// Lane-wise bitwise OR (`VPOR`).
    #[inline]
    #[must_use]
    pub fn or(self, rhs: Vector) -> Vector {
        self.zip_with(rhs, |a, b| a | b)
    }

    /// Lane-wise bitwise XOR (`VPXOR`).
    #[inline]
    #[must_use]
    pub fn xor(self, rhs: Vector) -> Vector {
        self.zip_with(rhs, |a, b| a ^ b)
    }

    /// Lane-wise absolute value (`VPABS`), wrapping on `i64::MIN`.
    #[inline]
    #[must_use]
    pub fn abs(self) -> Vector {
        self.map(i64::wrapping_abs)
    }

    /// Lane-wise arithmetic shift left by a per-lane count (`VPSLLV`).
    /// Counts outside `0..64` produce 0, matching x86 variable shifts.
    #[inline]
    #[must_use]
    pub fn shl(self, counts: Vector) -> Vector {
        self.zip_with(counts, |a, c| {
            if (0..64).contains(&c) {
                ((a as u64) << c) as i64
            } else {
                0
            }
        })
    }

    /// Lane-wise arithmetic shift right by a per-lane count (`VPSRAV`).
    /// Counts outside `0..64` yield the sign fill.
    #[inline]
    #[must_use]
    pub fn shr(self, counts: Vector) -> Vector {
        self.zip_with(counts, |a, c| {
            if (0..64).contains(&c) {
                a >> c
            } else if a < 0 {
                -1
            } else {
                0
            }
        })
    }

    /// Lane-wise truncating signed division (`x86` has no integer vector
    /// divide; compilers emit a libm-style expansion — the timing model
    /// charges it accordingly). Division by zero yields 0 and
    /// `i64::MIN / -1` wraps, so the functional model is total.
    #[inline]
    #[must_use]
    pub fn div(self, rhs: Vector) -> Vector {
        self.zip_with(rhs, |a, b| if b == 0 { 0 } else { a.wrapping_div(b) })
    }

    /// Lane-wise remainder with the same totalization as [`Vector::div`].
    #[inline]
    #[must_use]
    pub fn rem(self, rhs: Vector) -> Vector {
        self.zip_with(rhs, |a, b| if b == 0 { 0 } else { a.wrapping_rem(b) })
    }

    /// Blend (`VPBLENDM`): lane takes `on` where `k` is set, else `off`.
    #[inline]
    #[must_use]
    pub fn blend(k: Mask, on: Vector, off: Vector) -> Vector {
        off.merge(k, on)
    }

    /// Horizontal reduction over the enabled lanes.
    ///
    /// Returns `init` if no lane is enabled. AVX-512 implements these as
    /// `log2(vl)` shuffle/op pairs; the timing model charges that
    /// sequence.
    #[inline]
    pub fn reduce(self, k: Mask, init: i64, mut f: impl FnMut(i64, i64) -> i64) -> i64 {
        let mut acc = init;
        for lane in k.iter() {
            acc = f(acc, self.0[lane]);
        }
        acc
    }

    /// Masked horizontal minimum; `i64::MAX` when no lane is enabled.
    #[inline]
    pub fn reduce_min(self, k: Mask) -> i64 {
        self.reduce(k, i64::MAX, i64::min)
    }

    /// Masked horizontal maximum; `i64::MIN` when no lane is enabled.
    #[inline]
    pub fn reduce_max(self, k: Mask) -> i64 {
        self.reduce(k, i64::MIN, i64::max)
    }

    /// Masked horizontal wrapping sum; 0 when no lane is enabled.
    #[inline]
    pub fn reduce_add(self, k: Mask) -> i64 {
        self.reduce(k, 0, i64::wrapping_add)
    }

    /// Compress (`VPCOMPRESS`): packs the enabled lanes of `self` into the
    /// low lanes of the result; remaining lanes are taken from `fill`.
    #[inline]
    #[must_use]
    pub fn compress(self, k: Mask, fill: Vector) -> Vector {
        let mut out = fill;
        for (dst, src) in k.iter().enumerate() {
            out.0[dst] = self.0[src];
        }
        out
    }

    /// Expand (`VPEXPAND`): distributes the low lanes of `self` into the
    /// enabled lanes of the result; disabled lanes keep `fill`'s values.
    #[inline]
    #[must_use]
    pub fn expand(self, k: Mask, fill: Vector) -> Vector {
        let mut out = fill;
        for (src, dst) in k.iter().enumerate() {
            out.0[dst] = self.0[src];
        }
        out
    }

    /// All-to-all permute (`VPERMD`): active lane `i` of the result is
    /// `self[idx[i].rem_euclid(vlen())]`, so out-of-range (including
    /// negative) indices wrap around the *active* lane count.
    #[inline]
    #[must_use]
    pub fn permute(self, idx: Vector) -> Vector {
        let vl = vlen() as i64;
        Vector::from_fn(|i| self.0[(idx.0[i].rem_euclid(vl)) as usize])
    }
}

impl Default for Vector {
    fn default() -> Self {
        Vector::ZERO
    }
}

impl Index<usize> for Vector {
    type Output = i64;
    #[inline]
    fn index(&self, lane: usize) -> &i64 {
        &self.0[lane]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, lane: usize) -> &mut i64 {
        &mut self.0[lane]
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector({self})")
    }
}

/// Formats the active lanes left to right (lane 0 first), space separated,
/// matching the paper's examples.
impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, lane) in self.0[..vlen()].iter().enumerate() {
            if i > 0 {
                f.write_str(" ")?;
            }
            write!(f, "{lane}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{with_vlen, SUPPORTED_VLENS};

    #[test]
    fn construction() {
        assert_eq!(Vector::splat(7).lane(11), 7);
        assert_eq!(Vector::iota().lane(5), 5);
        let v = Vector::from_slice(&[1, 2, 3]);
        assert_eq!(v.lane(2), 3);
        assert_eq!(v.lane(3), 0);
    }

    #[test]
    fn hidden_lanes_stay_zero() {
        for vl in SUPPORTED_VLENS {
            with_vlen(vl, || {
                let v = Vector::splat(7).add(Vector::iota()).permute(Vector::iota());
                for hidden in vl..MAX_VLEN {
                    assert_eq!(v.lane(hidden), 0, "vl={vl} lane={hidden}");
                }
                // Equality must not depend on how a value was built.
                assert_eq!(Vector::splat(3), Vector::from_fn(|_| 3));
            });
        }
    }

    #[test]
    fn merge_predication() {
        let old = Vector::splat(9);
        let new = Vector::iota();
        let k = Mask::from_lanes(&[1, 14]);
        let out = old.merge(k, new);
        assert_eq!(out.lane(1), 1);
        assert_eq!(out.lane(14), 14);
        assert_eq!(out.lane(0), 9);
        assert_eq!(out.lane(15), 9);
    }

    #[test]
    fn arithmetic_wraps() {
        let max = Vector::splat(i64::MAX);
        assert_eq!(max.add(Vector::splat(1)).lane(0), i64::MIN);
        assert_eq!(Vector::splat(i64::MIN).abs().lane(0), i64::MIN);
        assert_eq!(Vector::splat(5).div(Vector::splat(0)).lane(0), 0);
        assert_eq!(
            Vector::splat(i64::MIN).div(Vector::splat(-1)).lane(0),
            i64::MIN
        );
    }

    #[test]
    fn shifts_saturate_counts() {
        let v = Vector::splat(-8);
        assert_eq!(v.shl(Vector::splat(70)).lane(0), 0);
        assert_eq!(v.shr(Vector::splat(70)).lane(0), -1);
        assert_eq!(Vector::splat(8).shr(Vector::splat(70)).lane(0), 0);
        assert_eq!(Vector::splat(1).shl(Vector::splat(3)).lane(0), 8);
        assert_eq!(Vector::splat(-16).shr(Vector::splat(2)).lane(0), -4);
    }

    #[test]
    fn masked_reductions() {
        let v = Vector::iota();
        let k = Mask::from_lanes(&[3, 4, 5]);
        assert_eq!(v.reduce_min(k), 3);
        assert_eq!(v.reduce_max(k), 5);
        assert_eq!(v.reduce_add(k), 12);
        assert_eq!(v.reduce_min(Mask::EMPTY), i64::MAX);
        assert_eq!(v.reduce_add(Mask::EMPTY), 0);
    }

    #[test]
    fn compress_expand_roundtrip() {
        let v = Vector::iota();
        let k = Mask::from_lanes(&[2, 5, 9]);
        let packed = v.compress(k, Vector::splat(-1));
        assert_eq!(packed.lane(0), 2);
        assert_eq!(packed.lane(1), 5);
        assert_eq!(packed.lane(2), 9);
        assert_eq!(packed.lane(3), -1);
        let unpacked = packed.expand(k, Vector::splat(-1));
        assert_eq!(unpacked.lane(2), 2);
        assert_eq!(unpacked.lane(5), 5);
        assert_eq!(unpacked.lane(9), 9);
        assert_eq!(unpacked.lane(0), -1);
    }

    #[test]
    fn permute_wraps_indices() {
        let v = Vector::iota();
        let idx = Vector::splat(17); // 17 mod 16 == 1
        assert_eq!(v.permute(idx), Vector::splat(1));
        let neg = Vector::splat(-1); // -1 rem_euclid 16 == 15
        assert_eq!(v.permute(neg), Vector::splat(15));
        with_vlen(8, || {
            let v = Vector::iota();
            // Wraparound is vl-relative: 9 mod 8 == 1, -1 rem_euclid 8 == 7.
            assert_eq!(v.permute(Vector::splat(9)), Vector::splat(1));
            assert_eq!(v.permute(Vector::splat(-1)), Vector::splat(7));
        });
    }

    #[test]
    fn blend_selects() {
        let k = Mask::from_lanes(&[0, 15]);
        let out = Vector::blend(k, Vector::splat(1), Vector::splat(2));
        assert_eq!(out.lane(0), 1);
        assert_eq!(out.lane(15), 1);
        assert_eq!(out.lane(7), 2);
    }

    #[test]
    fn display_layout() {
        let v = Vector::from_slice(&[1, 2]);
        assert!(v.to_string().starts_with("1 2 0"));
        with_vlen(8, || {
            assert_eq!(Vector::ZERO.to_string().split(' ').count(), 8);
        });
    }
}
