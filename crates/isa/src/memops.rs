//! Vector memory operations: loads, stores, gathers, scatters, and the
//! FlexVec *first-faulting* variants (`VPGATHERFF.D/Q`, `VMOVFF.D/Q`,
//! paper Section 3.3.1).
//!
//! The ISA model is independent of any concrete memory implementation: all
//! operations go through the [`LaneMemory`] trait, which `flexvec-mem`
//! implements for its paged address space. Addresses are byte addresses;
//! every lane transfers one 8-byte element (the functional model's lane
//! width — see `flexvec-isa` crate docs).

use core::fmt;

use crate::{vlen, Mask, Vector};

/// Number of bytes transferred per lane by the functional model.
pub const LANE_BYTES: u64 = 8;

/// A memory access fault (unmapped page / protection violation).
///
/// For regular loads/gathers/scatters a fault is an exception. For the
/// first-faulting instructions a fault on a *speculative* lane is absorbed
/// into the write mask instead.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MemFault {
    /// The faulting byte address.
    pub addr: u64,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory fault at address {:#x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

/// Lane-granular memory used by the vector memory instructions.
///
/// Implementations decide which addresses are mapped; unmapped accesses
/// return [`MemFault`]. `flexvec-mem`'s paged address space is the primary
/// implementation; tests use flat arrays.
pub trait LaneMemory {
    /// Reads the 8-byte element at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the address (or any byte of the element) is
    /// not readable.
    fn load_lane(&self, addr: u64) -> Result<i64, MemFault>;

    /// Writes the 8-byte element at byte address `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if the address is not writable.
    fn store_lane(&mut self, addr: u64, value: i64) -> Result<(), MemFault>;

    /// Reads `dst.len()` consecutive 8-byte elements starting at byte
    /// address `base` (element `i` comes from `base + 8*i`).
    ///
    /// This is the unit-stride fast-path hook: the default walks the span
    /// lane by lane, but implementations backed by contiguous pages can
    /// service the whole run with a single address translation.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for the first unreadable element, scanning in
    /// increasing address order (the same fault `load_lane` would report).
    /// Elements of `dst` before the fault may already have been written.
    fn load_span(&self, base: u64, dst: &mut [i64]) -> Result<(), MemFault> {
        for (i, slot) in dst.iter_mut().enumerate() {
            *slot = self.load_lane(base.wrapping_add(i as u64 * LANE_BYTES))?;
        }
        Ok(())
    }

    /// Writes `src.len()` consecutive 8-byte elements starting at byte
    /// address `base` (element `i` goes to `base + 8*i`).
    ///
    /// Unit-stride fast-path hook, see [`LaneMemory::load_span`].
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] for the first unwritable element in increasing
    /// address order; earlier elements may already have been stored
    /// (matching the restartable-store semantics of `vstore`).
    fn store_span(&mut self, base: u64, src: &[i64]) -> Result<(), MemFault> {
        for (i, &value) in src.iter().enumerate() {
            self.store_lane(base.wrapping_add(i as u64 * LANE_BYTES), value)?;
        }
        Ok(())
    }
}

impl<M: LaneMemory + ?Sized> LaneMemory for &mut M {
    fn load_lane(&self, addr: u64) -> Result<i64, MemFault> {
        (**self).load_lane(addr)
    }
    fn store_lane(&mut self, addr: u64, value: i64) -> Result<(), MemFault> {
        (**self).store_lane(addr, value)
    }
    fn load_span(&self, base: u64, dst: &mut [i64]) -> Result<(), MemFault> {
        (**self).load_span(base, dst)
    }
    fn store_span(&mut self, base: u64, src: &[i64]) -> Result<(), MemFault> {
        (**self).store_span(base, src)
    }
}

/// Result of a first-faulting load or gather.
///
/// `value` is the destination register after merge-masking; `mask` is the
/// (possibly clipped) output write mask. After the instruction executes,
/// software compares `mask` against the input mask to detect clipping and
/// fall back to scalar code (paper Section 4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FirstFaultResult {
    /// Destination register contents (loaded lanes merged over `dest`).
    pub value: Vector,
    /// Output write mask; bits from the leftmost faulting speculative lane
    /// rightward are zeroed.
    pub mask: Mask,
}

impl FirstFaultResult {
    /// Whether any speculative lane faulted, i.e. the mask was clipped
    /// relative to the input mask `k`.
    pub fn clipped(&self, k: Mask) -> bool {
        self.mask != k
    }
}

/// `VPGATHER.D/Q v1 {k1}, [addrs]` — regular masked gather.
///
/// Loads one element per enabled lane. Disabled lanes keep `dest`'s old
/// value (merge masking, as with the AVX-512 gather whose write mask is
/// both input and output).
///
/// # Errors
///
/// A fault on **any** enabled lane is an exception.
pub fn vgather<M: LaneMemory + ?Sized>(
    mem: &M,
    k: Mask,
    dest: Vector,
    addrs: Vector,
) -> Result<Vector, MemFault> {
    let mut out = dest;
    for lane in k.iter() {
        out[lane] = mem.load_lane(addrs.lane(lane) as u64)?;
    }
    Ok(out)
}

/// `VMOV.D/Q v1 {k1}, [base]` — regular masked unit-stride load: lane `i`
/// reads `base + 8*i`.
///
/// # Errors
///
/// A fault on any enabled lane is an exception.
pub fn vload<M: LaneMemory + ?Sized>(
    mem: &M,
    k: Mask,
    dest: Vector,
    base: u64,
) -> Result<Vector, MemFault> {
    let mut out = dest;
    for lane in k.iter() {
        out[lane] = mem.load_lane(base.wrapping_add(lane as u64 * LANE_BYTES))?;
    }
    Ok(out)
}

/// `VPSCATTER.D/Q [addrs] {k1}, v1` — masked scatter.
///
/// Lanes are written from lane 0 upward, so when two enabled lanes target
/// the same address the **youngest** (highest-index) lane wins, matching
/// AVX-512 scatter ordering.
///
/// # Errors
///
/// A fault on any enabled lane is an exception; lanes preceding the fault
/// may already have been written (x86 scatters are restartable, and FlexVec
/// only issues scatters under non-speculative masks).
pub fn vscatter<M: LaneMemory + ?Sized>(
    mem: &mut M,
    k: Mask,
    addrs: Vector,
    values: Vector,
) -> Result<(), MemFault> {
    for lane in k.iter() {
        mem.store_lane(addrs.lane(lane) as u64, values.lane(lane))?;
    }
    Ok(())
}

/// Masked unit-stride store: lane `i` writes `base + 8*i`.
///
/// # Errors
///
/// A fault on any enabled lane is an exception.
pub fn vstore<M: LaneMemory + ?Sized>(
    mem: &mut M,
    k: Mask,
    base: u64,
    values: Vector,
) -> Result<(), MemFault> {
    for lane in k.iter() {
        mem.store_lane(
            base.wrapping_add(lane as u64 * LANE_BYTES),
            values.lane(lane),
        )?;
    }
    Ok(())
}

/// `VPGATHERFF.D/Q v1 {k1}, [addrs]` — first-faulting gather (paper
/// Section 3.3.1).
///
/// The leftmost enabled lane is the **non-speculative element**: a fault
/// there is a real exception. Every other enabled lane is gathered
/// *speculatively*: if one faults, the fault is not serviced — instead the
/// output mask is zeroed from the leftmost faulting speculative lane all
/// the way to the rightmost lane, and the destination keeps its old
/// contents for those lanes. Write-mask bits to the left of the fault are
/// unmodified, indicating completion.
///
/// # Errors
///
/// Returns [`MemFault`] only for a fault on the non-speculative element.
///
/// # Examples
///
/// The paper's Section 3.3.1 example: lanes 0–1 disabled, faults at lanes
/// 1, 6 and 12. Lane 1's fault is ignored (disabled), lane 2 is
/// non-speculative, lane 6 is the leftmost faulting speculative element, so
/// the mask is zeroed from lane 6 rightward and only lanes 2–5 load.
///
/// ```
/// use flexvec_isa::{vgather_ff, LaneMemory, Mask, MemFault, Vector};
///
/// struct Mem;
/// impl LaneMemory for Mem {
///     fn load_lane(&self, addr: u64) -> Result<i64, MemFault> {
///         let lane = addr / 8;
///         if [1, 6, 12].contains(&lane) {
///             Err(MemFault { addr })
///         } else {
///             Ok(lane as i64 + 100)
///         }
///     }
///     fn store_lane(&mut self, _: u64, _: i64) -> Result<(), MemFault> {
///         unreachable!()
///     }
/// }
///
/// let k1 = Mask::suffix_from(2); // lanes 2..vlen() enabled
/// let addrs = Vector::from_fn(|i| 8 * i as i64);
/// let out = vgather_ff(&Mem, k1, Vector::splat(7), addrs)?;
/// // Clipped from the faulting speculative lane 6 rightward: only 2..=5.
/// assert_eq!(out.mask, Mask::suffix_from(2) & Mask::prefix_before(6));
/// assert_eq!(out.value.lane(2), 102);
/// assert_eq!(out.value.lane(5), 105);
/// assert_eq!(out.value.lane(6), 7); // old value kept
/// # Ok::<(), flexvec_isa::MemFault>(())
/// ```
pub fn vgather_ff<M: LaneMemory + ?Sized>(
    mem: &M,
    k: Mask,
    dest: Vector,
    addrs: Vector,
) -> Result<FirstFaultResult, MemFault> {
    first_faulting(k, dest, |lane| mem.load_lane(addrs.lane(lane) as u64))
}

/// `VMOVFF.D/Q v1 {k1}, [base]` — first-faulting unit-stride load: the
/// load analogue of [`vgather_ff`]. Lane `i` reads `base + 8*i`; if the
/// data straddles into an unmapped page, the elements on the first page
/// load and the write mask is clipped at the page boundary.
///
/// # Errors
///
/// Returns [`MemFault`] only for a fault on the non-speculative (leftmost
/// enabled) element.
pub fn vmov_ff<M: LaneMemory + ?Sized>(
    mem: &M,
    k: Mask,
    dest: Vector,
    base: u64,
) -> Result<FirstFaultResult, MemFault> {
    first_faulting(k, dest, |lane| {
        mem.load_lane(base.wrapping_add(lane as u64 * LANE_BYTES))
    })
}

fn first_faulting(
    k: Mask,
    dest: Vector,
    mut load: impl FnMut(usize) -> Result<i64, MemFault>,
) -> Result<FirstFaultResult, MemFault> {
    let mut value = dest;
    let mut mask = k;
    let non_speculative = k.first_set();
    for lane in k.iter() {
        match load(lane) {
            Ok(v) => value[lane] = v,
            Err(fault) => {
                if Some(lane) == non_speculative {
                    return Err(fault);
                }
                // Zero the mask from the faulting lane rightward and keep
                // the destination's old contents there (discard any lanes
                // that were architecturally gathered out of order).
                mask &= Mask::prefix_before(lane);
                for undo in lane..vlen() {
                    value[undo] = dest.lane(undo);
                }
                return Ok(FirstFaultResult { value, mask });
            }
        }
    }
    Ok(FirstFaultResult { value, mask })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Word-addressed test memory: element `i` lives at byte `8*i` and
    /// holds `100 + i`; the `faults` list marks unmapped elements.
    struct TestMem {
        len: u64,
        faults: Vec<u64>,
        cells: Vec<i64>,
    }

    impl TestMem {
        fn new(len: u64, faults: &[u64]) -> Self {
            TestMem {
                len,
                faults: faults.to_vec(),
                cells: (0..len).map(|i| 100 + i as i64).collect(),
            }
        }
    }

    impl LaneMemory for TestMem {
        fn load_lane(&self, addr: u64) -> Result<i64, MemFault> {
            let idx = addr / LANE_BYTES;
            if idx >= self.len || self.faults.contains(&idx) || !addr.is_multiple_of(LANE_BYTES) {
                Err(MemFault { addr })
            } else {
                Ok(self.cells[idx as usize])
            }
        }
        fn store_lane(&mut self, addr: u64, value: i64) -> Result<(), MemFault> {
            let idx = addr / LANE_BYTES;
            if idx >= self.len || self.faults.contains(&idx) || !addr.is_multiple_of(LANE_BYTES) {
                Err(MemFault { addr })
            } else {
                self.cells[idx as usize] = value;
                Ok(())
            }
        }
    }

    fn byte_addrs_identity() -> Vector {
        Vector::from_fn(|i| (i as i64) * LANE_BYTES as i64)
    }

    #[test]
    fn gather_merges_disabled_lanes() {
        let mem = TestMem::new(32, &[]);
        let k = Mask::from_lanes(&[1, 3]);
        let out = vgather(&mem, k, Vector::splat(-5), byte_addrs_identity()).unwrap();
        assert_eq!(out.lane(1), 101);
        assert_eq!(out.lane(3), 103);
        assert_eq!(out.lane(0), -5);
    }

    #[test]
    fn gather_fault_is_exception() {
        let mem = TestMem::new(32, &[3]);
        let k = Mask::from_lanes(&[1, 3]);
        let err = vgather(&mem, k, Vector::ZERO, byte_addrs_identity()).unwrap_err();
        assert_eq!(err.addr, 24);
    }

    #[test]
    fn gather_disabled_fault_ignored() {
        let mem = TestMem::new(32, &[3]);
        let k = Mask::from_lanes(&[1]);
        assert!(vgather(&mem, k, Vector::ZERO, byte_addrs_identity()).is_ok());
    }

    #[test]
    fn scatter_youngest_lane_wins() {
        let mut mem = TestMem::new(8, &[]);
        let addrs = Vector::splat(0);
        let vals = Vector::iota();
        vscatter(&mut mem, Mask::first_n(4), addrs, vals).unwrap();
        assert_eq!(mem.cells[0], 3);
    }

    #[test]
    fn load_store_roundtrip() {
        let mut mem = TestMem::new(32, &[]);
        let k = Mask::first_n(16);
        vstore(&mut mem, k, 0, Vector::iota()).unwrap();
        let out = vload(&mem, k, Vector::ZERO, 0).unwrap();
        assert_eq!(out, Vector::iota());
    }

    /// The paper's VPGATHERFFD worked example (Section 3.3.1).
    #[test]
    fn gather_ff_paper_example() {
        let mem = TestMem::new(16, &[1, 6, 12]);
        let k1: Mask = "0 0 1 1 1 1 1 1 1 1 1 1 1 1 1 1".parse().unwrap();
        let out = vgather_ff(&mem, k1, Vector::splat(7), byte_addrs_identity()).unwrap();
        assert_eq!(
            out.mask,
            "0 0 1 1 1 1 0 0 0 0 0 0 0 0 0 0".parse::<Mask>().unwrap()
        );
        // Lanes 2..=5 loaded; everything else keeps the old value 7.
        for lane in 0..16 {
            let expect = if (2..=5).contains(&lane) {
                100 + lane as i64
            } else {
                7
            };
            assert_eq!(out.value.lane(lane), expect, "lane {lane}");
        }
        assert!(out.clipped(k1));
    }

    #[test]
    fn gather_ff_non_speculative_fault_is_exception() {
        let mem = TestMem::new(16, &[2]);
        let k1: Mask = "0 0 1 1 1 1 1 1 1 1 1 1 1 1 1 1".parse().unwrap();
        let err = vgather_ff(&mem, k1, Vector::ZERO, byte_addrs_identity()).unwrap_err();
        assert_eq!(err.addr, 16);
    }

    #[test]
    fn gather_ff_no_fault_mask_unmodified() {
        let mem = TestMem::new(16, &[]);
        let k1 = Mask::from_lanes(&[0, 5, 9]);
        let out = vgather_ff(&mem, k1, Vector::ZERO, byte_addrs_identity()).unwrap();
        assert_eq!(out.mask, k1);
        assert!(!out.clipped(k1));
        assert_eq!(out.value.lane(9), 109);
    }

    #[test]
    fn gather_ff_fault_on_last_lane() {
        let mem = TestMem::new(16, &[15]);
        let out = vgather_ff(&mem, Mask::full(), Vector::ZERO, byte_addrs_identity()).unwrap();
        assert_eq!(out.mask, Mask::first_n(15));
        assert_eq!(out.value.lane(14), 114);
        assert_eq!(out.value.lane(15), 0);
    }

    #[test]
    fn gather_ff_empty_mask_is_noop() {
        let mem = TestMem::new(1, &[]);
        let out = vgather_ff(&mem, Mask::EMPTY, Vector::splat(3), Vector::splat(1 << 40)).unwrap();
        assert_eq!(out.mask, Mask::EMPTY);
        assert_eq!(out.value, Vector::splat(3));
    }

    /// VMOVFF straddling an "unmapped page": elements 0..8 mapped, the rest
    /// fault, like a vector load crossing into an unmapped page.
    #[test]
    fn mov_ff_straddles_boundary() {
        let mem = TestMem::new(8, &[]);
        let out = vmov_ff(&mem, Mask::full(), Vector::splat(-1), 0).unwrap();
        assert_eq!(out.mask, Mask::first_n(8));
        assert_eq!(out.value.lane(7), 107);
        assert_eq!(out.value.lane(8), -1);
    }

    #[test]
    fn mov_ff_base_offset() {
        let mem = TestMem::new(32, &[]);
        let out = vmov_ff(&mem, Mask::first_n(4), Vector::ZERO, 16).unwrap();
        assert_eq!(out.value.lane(0), 102);
        assert_eq!(out.value.lane(3), 105);
    }

    #[test]
    fn store_fault_reports_address() {
        let mut mem = TestMem::new(4, &[]);
        let err = vstore(&mut mem, Mask::first_n(8), 0, Vector::ZERO).unwrap_err();
        assert_eq!(err.addr, 32);
    }
}
