//! Shared command-line handling for every `flexvec-bench` binary.
//!
//! All seven binaries (`flexvecc`, `fig8`, `table1`, `table2`,
//! `rtm_sweep`, `ablation`, `heuristics`) accept the same core flags, so
//! `--engine tree` and `--spec rtm:128` mean the same thing everywhere:
//!
//! ```text
//! --engine tree|compiled|native   execution engine (default: compiled)
//! --spec ff|rtm[:TILE]            speculation strategy (default: ff; rtm
//!                                 tile defaults to 256)
//! --json                          machine-readable output where supported
//! --help                          usage
//! ```
//!
//! `--engine native` asks for the x86-64 JIT tier; on hosts without the
//! back end it degrades to `compiled` with a note on stderr rather than
//! erroring, so scripts are portable.
//!
//! Values may be attached (`--engine=tree`) or separate (`--engine
//! tree`). Binaries can register extra `--name VALUE` flags; anything
//! that is not a flag is collected as a positional argument (the
//! `flexvecc` subcommand and its paths).

use flexvec::SpecRequest;
use flexvec_vm::Engine;

/// Parsed common flags plus whatever else the binary registered.
#[derive(Clone, Debug)]
pub struct CommonFlags {
    /// `--engine`: which execution engine runs vector code.
    pub engine: Engine,
    /// Whether `--engine` was given explicitly. `flexvecc client` uses
    /// this to decide between forcing the engine on the daemon and
    /// deferring to its tier policy (the wire default, `auto`).
    pub engine_explicit: bool,
    /// `--spec`: first-faulting (the paper's default) or RTM speculation.
    pub spec: SpecRequest,
    /// Whether `--spec` was given explicitly. `flexvecc client` uses
    /// this to decide between pinning the spec on the daemon (even
    /// `--spec ff`) and leaving the kernel autotunable: the serve wire
    /// protocol treats a *present* `spec` field as an explicit pin.
    pub spec_explicit: bool,
    /// `--json`: emit machine-readable output where the binary supports it.
    pub json: bool,
    /// Non-flag arguments, in order.
    pub positional: Vec<String>,
    extras: Vec<(String, String)>,
}

/// Declaration of a binary-specific `--name VALUE` flag.
#[derive(Clone, Copy, Debug)]
pub struct ExtraFlag {
    /// Flag name without the leading `--`.
    pub name: &'static str,
    /// One-line help text.
    pub help: &'static str,
}

fn usage(bin: &str, about: &str, extras: &[ExtraFlag]) -> String {
    let mut out = format!(
        "{about}\n\nUsage: {bin} [OPTIONS] [ARGS...]\n\nOptions:\n  \
         --engine tree|compiled|native  execution engine (default: compiled;\n                           \
         native falls back to compiled off x86-64)\n  \
         --spec ff|rtm[:TILE]     speculation strategy (default: ff; rtm tile 256)\n  \
         --json                   machine-readable output where supported\n  \
         --help                   show this help\n"
    );
    for e in extras {
        out.push_str(&format!("  --{:<22} {}\n", format!("{} N", e.name), e.help));
    }
    out
}

/// Parses `--engine` values.
///
/// # Errors
///
/// Describes the accepted values on anything else.
pub fn parse_engine(value: &str) -> Result<Engine, String> {
    match value {
        "tree" | "tree-walking" => Ok(Engine::TreeWalking),
        "compiled" => Ok(Engine::Compiled),
        "native" => {
            if flexvec_vm::native_supported() {
                Ok(Engine::Native)
            } else {
                eprintln!(
                    "--engine native: this host has no x86-64 JIT back end; \
                     falling back to compiled"
                );
                Ok(Engine::Compiled)
            }
        }
        other => Err(format!(
            "invalid --engine `{other}` (expected `tree`, `compiled`, or `native`)"
        )),
    }
}

/// Parses `--spec` values: `ff` (alias `auto`), `rtm`, or `rtm:TILE`.
///
/// # Errors
///
/// Describes the accepted values on anything else.
pub fn parse_spec(value: &str) -> Result<SpecRequest, String> {
    match value {
        "ff" | "auto" => Ok(SpecRequest::Auto),
        "rtm" => Ok(SpecRequest::Rtm { tile: 256 }),
        other => {
            if let Some(tile) = other.strip_prefix("rtm:") {
                let tile: u32 = tile
                    .parse()
                    .map_err(|_| format!("invalid RTM tile `{tile}` in --spec"))?;
                if tile == 0 {
                    return Err("RTM tile must be positive".to_owned());
                }
                Ok(SpecRequest::Rtm { tile })
            } else {
                Err(format!(
                    "invalid --spec `{other}` (expected `ff`, `rtm`, or `rtm:TILE`)"
                ))
            }
        }
    }
}

impl CommonFlags {
    /// Parses an explicit argument list (no program name).
    ///
    /// # Errors
    ///
    /// Returns the error text to print (unknown flag, missing or invalid
    /// value); `Ok(Err(usage))`-style help is reported as an error string
    /// starting with the usage text when `--help` is present.
    pub fn parse_from<I>(
        bin: &str,
        about: &str,
        extra: &[ExtraFlag],
        args: I,
    ) -> Result<CommonFlags, String>
    where
        I: IntoIterator<Item = String>,
    {
        let mut flags = CommonFlags {
            engine: Engine::default(),
            engine_explicit: false,
            spec: SpecRequest::Auto,
            spec_explicit: false,
            json: false,
            positional: Vec::new(),
            extras: Vec::new(),
        };
        let mut it = args.into_iter().peekable();
        while let Some(arg) = it.next() {
            if arg == "--help" || arg == "-h" {
                return Err(usage(bin, about, extra));
            }
            let Some(flag) = arg.strip_prefix("--") else {
                flags.positional.push(arg);
                continue;
            };
            if flag == "json" {
                flags.json = true;
                continue;
            }
            // `--name=value` or `--name value`.
            let (name, value) = match flag.split_once('=') {
                Some((n, v)) => (n.to_owned(), v.to_owned()),
                None => {
                    let v = it
                        .next()
                        .ok_or_else(|| format!("--{flag} requires a value (see --help)"))?;
                    (flag.to_owned(), v)
                }
            };
            match name.as_str() {
                "engine" => {
                    flags.engine = parse_engine(&value)?;
                    flags.engine_explicit = true;
                }
                "spec" => {
                    flags.spec = parse_spec(&value)?;
                    flags.spec_explicit = true;
                }
                _ if extra.iter().any(|e| e.name == name) => {
                    flags.extras.push((name, value));
                }
                _ => return Err(format!("unknown flag --{name} (see --help)")),
            }
        }
        Ok(flags)
    }

    /// Parses the process arguments; prints usage and exits on `--help`
    /// or any error (exit code 0 and 2 respectively).
    pub fn parse(bin: &str, about: &str, extra: &[ExtraFlag]) -> CommonFlags {
        match Self::parse_from(bin, about, extra, std::env::args().skip(1)) {
            Ok(flags) => flags,
            Err(text) => {
                let help = text.starts_with(about);
                eprintln!("{text}");
                std::process::exit(if help { 0 } else { 2 });
            }
        }
    }

    /// The value of a registered extra flag, parsed as `u64`, or
    /// `default` when absent or unparsable.
    pub fn u64_flag(&self, name: &str, default: u64) -> u64 {
        self.extras
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.parse().ok())
            .unwrap_or(default)
    }

    /// The raw string value of a registered extra flag, or `default`
    /// when absent.
    pub fn str_flag(&self, name: &str, default: &str) -> String {
        self.extras
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map_or_else(|| default.to_owned(), |(_, v)| v.clone())
    }
}

/// Serializes an `f64` as a JSON number, mapping non-finite values
/// (NaN/±inf from degenerate timings, e.g. a scalar wall time of zero)
/// to `null` — bare `NaN` or `inf` tokens are not valid JSON.
///
/// Every bench binary that emits `--json` reports must route floating
/// point fields through this.
pub fn json_f64(value: f64) -> String {
    if value.is_finite() {
        format!("{value:.6}")
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CommonFlags, String> {
        CommonFlags::parse_from(
            "test",
            "about",
            &[ExtraFlag {
                name: "repeat",
                help: "repeat count",
            }],
            args.iter().map(|s| (*s).to_owned()),
        )
    }

    #[test]
    fn defaults() {
        let f = parse(&[]).unwrap();
        assert_eq!(f.engine, Engine::Compiled);
        assert!(!f.engine_explicit, "default engine is not explicit");
        assert_eq!(f.spec, SpecRequest::Auto);
        assert!(!f.json);
        assert!(f.positional.is_empty());
    }

    #[test]
    fn engine_and_spec_both_forms() {
        let f = parse(&["--engine", "tree", "--spec=rtm:128", "--json"]).unwrap();
        assert_eq!(f.engine, Engine::TreeWalking);
        assert!(f.engine_explicit);
        assert_eq!(f.spec, SpecRequest::Rtm { tile: 128 });
        assert!(f.json);

        let f = parse(&["--engine=compiled", "--spec", "rtm"]).unwrap();
        assert_eq!(f.engine, Engine::Compiled);
        assert_eq!(f.spec, SpecRequest::Rtm { tile: 256 });

        assert_eq!(parse(&["--spec", "ff"]).unwrap().spec, SpecRequest::Auto);
    }

    #[test]
    fn native_engine_degrades_gracefully_off_x86() {
        let f = parse(&["--engine", "native"]).unwrap();
        if flexvec_vm::native_supported() {
            assert_eq!(f.engine, Engine::Native);
        } else {
            assert_eq!(f.engine, Engine::Compiled, "fallback, not an error");
        }
    }

    #[test]
    fn positional_and_extras() {
        let f = parse(&["run", "a.fv", "--repeat", "5", "b.fv"]).unwrap();
        assert_eq!(f.positional, vec!["run", "a.fv", "b.fv"]);
        assert_eq!(f.u64_flag("repeat", 1), 5);
        assert_eq!(f.u64_flag("missing", 7), 7);
    }

    #[test]
    fn str_flag_returns_raw_value_or_default() {
        let f = parse(&["--repeat", "out/dir"]).unwrap();
        assert_eq!(f.str_flag("repeat", "x"), "out/dir");
        assert_eq!(f.str_flag("missing", "x"), "x");
    }

    #[test]
    fn json_f64_maps_degenerate_values_to_null() {
        assert_eq!(json_f64(1.5), "1.500000");
        assert_eq!(json_f64(0.0), "0.000000");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(f64::NEG_INFINITY), "null");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse(&["--engine", "quantum"])
            .unwrap_err()
            .contains("--engine"));
        assert!(parse(&["--spec", "maybe"]).unwrap_err().contains("--spec"));
        assert!(parse(&["--spec", "rtm:0"])
            .unwrap_err()
            .contains("positive"));
        assert!(parse(&["--wat", "1"]).unwrap_err().contains("unknown flag"));
        assert!(parse(&["--engine"])
            .unwrap_err()
            .contains("requires a value"));
        let help = parse(&["--help"]).unwrap_err();
        assert!(
            help.contains("Usage:") && help.contains("--repeat"),
            "{help}"
        );
    }
}
