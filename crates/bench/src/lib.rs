//! # flexvec-bench
//!
//! The harness that regenerates every table and figure of the paper's
//! evaluation:
//!
//! | Binary        | Paper artifact |
//! |---------------|----------------|
//! | `table1`      | Table 1 — simulation parameters |
//! | `table2`      | Table 2 — coverage, trip counts, instruction mix |
//! | `fig8`        | Figure 8 — overall application speedups + geomeans |
//! | `rtm_sweep`   | Sections 3.3.2/4.1 — RTM tile-size sensitivity |
//! | `heuristics`  | Section 5 — candidate-selection thresholds |
//! | `ablation`    | Section 2 — VPL vs. all-or-nothing speculation |
//!
//! The `flexvecc` binary is the batch front-end driver: it checks,
//! vectorizes, runs and benches directories of `.fv` kernels through the
//! content-addressed compile cache (see the [`fv`] module). All binaries
//! share the flag conventions of the [`flags`] module (`--engine
//! tree|compiled`, `--spec ff|rtm[:TILE]`, `--json`).
//!
//! The Criterion benches (`benches/`) measure the wall-clock cost of the
//! reproduction pipeline itself (vectorization, execution, simulation) so
//! regressions in the library are caught; the *paper's* numbers are
//! simulated cycles and come from the binaries above.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod flags;
pub mod fv;

use flexvec::SpecRequest;
use flexvec_sim::{geomean, SimConfig};
use flexvec_vm::Engine;
use flexvec_workloads::{evaluate_with_engine, Evaluation, Suite, VectorMode, Workload};

/// Evaluates a set of workloads in parallel (one worker thread per
/// workload — the suites are small and each evaluation is independent),
/// panicking with context on failure (the harness treats any failure as
/// fatal — numbers from a partially failed run would be misleading).
/// Results keep the input order.
pub fn evaluate_all(workloads: &[Workload], spec: SpecRequest) -> Vec<Evaluation> {
    evaluate_all_with_engine(workloads, spec, Engine::default())
}

/// [`evaluate_all`] on an explicit execution [`Engine`].
pub fn evaluate_all_with_engine(
    workloads: &[Workload],
    spec: SpecRequest,
    engine: Engine,
) -> Vec<Evaluation> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|w| {
                scope.spawn(move || {
                    evaluate_with_engine(w, spec, &SimConfig::table1(), VectorMode::FlexVec, engine)
                        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(e) => e,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

/// Renders the per-workload execution-engine throughput counters
/// (chunks/s, µops/s, inline page-cache hit rate) collected during an
/// evaluation run.
pub fn render_throughput(evals: &[Evaluation]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>12} {:>10}\n",
        "benchmark", "engine", "chunks/s", "uops/s", "pg$ hit"
    ));
    for e in evals {
        out.push_str(&format!(
            "{:<14} {:>12} {:>12.3e} {:>12.3e} {:>9.1}%\n",
            e.name,
            e.throughput.label,
            e.throughput.chunks_per_sec(),
            e.throughput.uops_per_sec(),
            e.throughput.page_cache.hit_rate() * 100.0
        ));
    }
    out
}

/// Renders the Figure 8 bar chart as ASCII: one row per benchmark plus
/// the group geomean.
pub fn render_fig8(evals: &[Evaluation], title: &str) -> String {
    let mut out = String::new();
    out.push_str(&format!("{title}\n"));
    out.push_str(&format!(
        "{:<14} {:>8} {:>9} {:>9}  speedup over baseline\n",
        "benchmark", "region", "coverage", "overall"
    ));
    for e in evals {
        let bar_len = ((e.overall_speedup - 1.0).max(0.0) * 200.0).round() as usize;
        out.push_str(&format!(
            "{:<14} {:>7.2}x {:>8.1}% {:>8.3}x  |{}\n",
            e.name,
            e.region_speedup,
            e.coverage * 100.0,
            e.overall_speedup,
            "#".repeat(bar_len.min(60))
        ));
    }
    let g = geomean(&evals.iter().map(|e| e.overall_speedup).collect::<Vec<_>>());
    out.push_str(&format!(
        "{:<14} {:>26} {:>8.3}x  (geomean)\n",
        "GEOMEAN", "", g
    ));
    out
}

/// One rendered row of Table 2.
#[derive(Clone, Debug)]
pub struct Table2Row {
    /// Benchmark name.
    pub name: &'static str,
    /// Coverage (metadata).
    pub coverage: f64,
    /// Measured average trip count.
    pub avg_trip: f64,
    /// Measured effective vector length.
    pub effective_vl: f64,
    /// Average VPL partitions per chunk (measured).
    pub avg_partitions: f64,
    /// Generated FlexVec instruction mix.
    pub mix: String,
}

/// Renders Table 2: coverage, average trip count, and FlexVec
/// instruction mix per benchmark, from the *measured* profile and the
/// *generated* code.
pub fn render_table2(rows: &[Table2Row]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:>6} {:>10} {:>10} {:>6}  {}\n",
        "Benchmark", "Cvrg.", "AvgTrip", "EffVL", "Part.", "Instruction Mix"
    ));
    for r in rows {
        out.push_str(&format!(
            "{:<14} {:>5.1}% {:>10.0} {:>10.1} {:>6.2}  {}\n",
            r.name,
            r.coverage * 100.0,
            r.avg_trip,
            r.effective_vl,
            r.avg_partitions,
            r.mix
        ));
    }
    out
}

/// Splits evaluations by suite.
pub fn by_suite(evals: &[Evaluation]) -> (Vec<Evaluation>, Vec<Evaluation>) {
    let spec: Vec<_> = evals
        .iter()
        .filter(|e| e.suite == Suite::Spec2006)
        .cloned()
        .collect();
    let apps: Vec<_> = evals
        .iter()
        .filter(|e| e.suite == Suite::App)
        .cloned()
        .collect();
    (spec, apps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexvec::InstMix;
    use flexvec_vm::VectorStats;

    fn fake_eval(name: &'static str, suite: Suite, region: f64, cov: f64) -> Evaluation {
        Evaluation {
            name,
            suite,
            coverage: cov,
            scalar_cycles: 1000,
            flexvec_cycles: (1000.0 / region) as u64,
            region_speedup: region,
            overall_speedup: flexvec_sim::amdahl_overall(region, cov),
            stats: VectorStats::default(),
            mix: InstMix::default(),
            scalar_uops: 0,
            vector_uops: 0,
            throughput: flexvec_profiler::ThroughputReport::new(
                "compiled",
                std::time::Duration::from_millis(1),
                100,
                1000,
                flexvec_mem::PageCacheStats::default(),
            ),
        }
    }

    #[test]
    fn fig8_rendering_contains_geomean() {
        let evals = vec![
            fake_eval("a", Suite::Spec2006, 1.5, 0.5),
            fake_eval("b", Suite::Spec2006, 1.2, 0.2),
        ];
        let text = render_fig8(&evals, "test");
        assert!(text.contains("GEOMEAN"));
        assert!(text.contains("1.5"));
    }

    #[test]
    fn suite_split() {
        let evals = vec![
            fake_eval("s", Suite::Spec2006, 1.1, 0.1),
            fake_eval("p", Suite::App, 1.1, 0.1),
        ];
        let (spec, apps) = by_suite(&evals);
        assert_eq!(spec.len(), 1);
        assert_eq!(apps.len(), 1);
    }

    #[test]
    fn parallel_evaluate_keeps_input_order() {
        let workloads = vec![
            flexvec_workloads::spec::h264ref(),
            flexvec_workloads::apps::gzip(),
        ];
        let evals = evaluate_all(&workloads, SpecRequest::Auto);
        let names: Vec<_> = evals.iter().map(|e| e.name).collect();
        assert_eq!(names, workloads.iter().map(|w| w.name).collect::<Vec<_>>());
        assert!(evals.iter().all(|e| e.throughput.chunks > 0));
    }

    #[test]
    fn throughput_rendering() {
        let evals = vec![fake_eval("a", Suite::Spec2006, 1.5, 0.5)];
        let text = render_throughput(&evals);
        assert!(text.contains("chunks/s"));
        assert!(text.contains("compiled"));
    }

    #[test]
    fn table2_rendering() {
        let rows = vec![Table2Row {
            name: "x",
            coverage: 0.5,
            avg_trip: 100.0,
            effective_vl: 12.0,
            avg_partitions: 1.5,
            mix: "KFTM".into(),
        }];
        let text = render_table2(&rows);
        assert!(text.contains("KFTM"));
        assert!(text.contains("50.0%"));
    }
}
