//! Regenerates the Section 5 candidate-selection study (experiment E6):
//! applies the paper's profile-guided thresholds (trip >= 16, effective
//! vector length >= 6, coverage >= 5%, memory/compute ratio <= 2) to
//! every workload plus a set of loops constructed to trip each rejection
//! rule.

use flexvec::vectorize;
use flexvec_bench::flags::CommonFlags;
use flexvec_ir::build::*;
use flexvec_ir::ProgramBuilder;
use flexvec_mem::AddressSpace;
use flexvec_profiler::{profile_loop, select, Thresholds};
use flexvec_vm::Bindings;
use flexvec_workloads::all;

fn main() {
    let flags = CommonFlags::parse(
        "heuristics",
        "heuristics: the Section 5 profile-guided candidate-selection study",
        &[],
    );
    let th = Thresholds::default();
    println!("=== Candidate selection (trip>=16, EVL>=6, cvrg>=5%, mem/compute<=2) ===\n");
    println!(
        "{:<24} {:>8} {:>6} {:>6} {:>6}  verdict",
        "loop", "avgtrip", "EVL", "cvrg", "m/c"
    );
    for w in all() {
        let mut mem = AddressSpace::new();
        let ids: Vec<_> = w
            .arrays
            .iter()
            .enumerate()
            .map(|(i, d)| mem.alloc_from(&format!("a{i}"), d))
            .collect();
        let prof = profile_loop(&w.program, &mut mem, Bindings::new(ids), w.invocations)
            .expect("profiles");
        let mix = vectorize(&w.program, flags.spec)
            .expect("vectorizes")
            .vprog
            .inst_mix();
        let sel = select(&prof, w.coverage, &mix, &th);
        println!(
            "{:<24} {:>8.0} {:>6.1} {:>5.1}% {:>6.2}  {}",
            w.name,
            sel.avg_trip_count,
            sel.effective_vl,
            sel.coverage * 100.0,
            sel.mem_compute_ratio,
            if sel.accepted {
                "VECTORIZE".to_owned()
            } else {
                format!("reject: {}", sel.rejections.join("; "))
            }
        );
    }

    // Loops engineered to trip each threshold.
    println!("\n--- rejection cases ---");
    let mut b = ProgramBuilder::new("short_trip");
    let i = b.var("i", 0);
    let best = b.var("best", i64::MAX);
    let a = b.array("a");
    b.live_out(best);
    let p = b
        .build_loop(
            i,
            c(0),
            c(8),
            vec![if_(
                lt(ld(a, var(i)), var(best)),
                vec![assign(best, ld(a, var(i)))],
            )],
        )
        .unwrap();
    let mut mem = AddressSpace::new();
    let a_id = mem.alloc_from("a", &[5; 8]);
    let prof = profile_loop(&p, &mut mem, Bindings::new(vec![a_id]), 4).unwrap();
    let mix = vectorize(&p, flags.spec).unwrap().vprog.inst_mix();
    let sel = select(&prof, 0.5, &mix, &th);
    println!(
        "short_trip (trip 8): accepted={} [{}]",
        sel.accepted,
        sel.rejections.join("; ")
    );

    let mut b2 = ProgramBuilder::new("dense_updates");
    let i2 = b2.var("i", 0);
    let best2 = b2.var("best", i64::MAX);
    let a2 = b2.array("a");
    b2.live_out(best2);
    let p2 = b2
        .build_loop(
            i2,
            c(0),
            c(256),
            vec![if_(
                lt(ld(a2, var(i2)), var(best2)),
                vec![assign(best2, ld(a2, var(i2)))],
            )],
        )
        .unwrap();
    let mut mem2 = AddressSpace::new();
    let desc: Vec<i64> = (0..256).map(|k| 100_000 - k).collect();
    let a2_id = mem2.alloc_from("a", &desc);
    let prof2 = profile_loop(&p2, &mut mem2, Bindings::new(vec![a2_id]), 1).unwrap();
    let mix2 = vectorize(&p2, flags.spec).unwrap().vprog.inst_mix();
    let sel2 = select(&prof2, 0.5, &mix2, &th);
    println!(
        "dense_updates (EVL 1): accepted={} [{}]",
        sel2.accepted,
        sel2.rejections.join("; ")
    );
}
