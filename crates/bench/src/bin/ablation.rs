//! Ablation studies for the design choices DESIGN.md calls out
//! (experiment index, "ablation benches"):
//!
//! 1. **VPL vs. all-or-nothing speculation** (the PACT'13 comparison of
//!    Section 2): as the conditional-update rate grows, the
//!    all-or-nothing baseline experiences "constant rollbacks" while the
//!    FlexVec VPL degrades gracefully.
//! 2. **VPCONFLICTM cost sensitivity**: how the memory-conflict
//!    workloads respond to the conflict instruction's latency (the paper
//!    measured 20 cycles for its micro-op sequence).
//! 3. **Hardware-prefetcher page-boundary effect** (Section 5's
//!    memory-boundness note).

use flexvec_bench::flags::CommonFlags;
use flexvec_sim::SimConfig;
use flexvec_workloads::{evaluate_with_engine, spec, VectorMode};

fn main() {
    let flags = CommonFlags::parse(
        "ablation",
        "ablation: VPL vs all-or-nothing, VPCONFLICTM latency, prefetcher clamp",
        &[],
    );
    println!("=== Ablation 1: FlexVec VPL vs all-or-nothing speculation ===\n");
    println!(
        "{:<12} {:>12} {:>14} {:>12}",
        "update rate", "FlexVec", "all-or-nothing", "VPL gain"
    );
    let cfg = SimConfig::table1();
    for rate in [0.0, 0.01, 0.02, 0.05, 0.10, 0.20, 0.50] {
        let w = spec::h264_parametric(rate, 4096);
        let flex = evaluate_with_engine(&w, flags.spec, &cfg, VectorMode::FlexVec, flags.engine)
            .expect("flexvec evaluates");
        let aon =
            evaluate_with_engine(&w, flags.spec, &cfg, VectorMode::AllOrNothing, flags.engine)
                .expect("aon evaluates");
        println!(
            "{:<12.2} {:>11.2}x {:>13.2}x {:>11.2}x",
            rate,
            flex.region_speedup,
            aon.region_speedup,
            flex.region_speedup / aon.region_speedup
        );
    }

    println!("\n=== Ablation 2: VPCONFLICTM latency sensitivity (region speedup) ===\n");
    print!("{:<14}", "benchmark");
    let lats = [5u32, 10, 20, 40];
    for l in lats {
        print!("{:>10}", format!("lat={l}"));
    }
    println!();
    for w in [spec::astar(), spec::milc(), spec::calculix()] {
        print!("{:<14}", w.name);
        for l in lats {
            let mut cfg = SimConfig::table1();
            cfg.vpconflictm.latency = l;
            let e = evaluate_with_engine(&w, flags.spec, &cfg, VectorMode::FlexVec, flags.engine)
                .expect("evaluates");
            print!("{:>9.2}x", e.region_speedup);
        }
        println!();
    }

    println!("\n=== Ablation 3: prefetcher page-boundary clamp ===\n");
    println!(
        "{:<14} {:>12} {:>14}",
        "benchmark", "prefetch on", "prefetch off"
    );
    for w in [spec::h264ref(), spec::milc()] {
        let on = evaluate_with_engine(
            &w,
            flags.spec,
            &SimConfig::table1(),
            VectorMode::FlexVec,
            flags.engine,
        )
        .expect("evaluates");
        let mut cfg = SimConfig::table1();
        cfg.memory.prefetch_degree = 0;
        let off = evaluate_with_engine(&w, flags.spec, &cfg, VectorMode::FlexVec, flags.engine)
            .expect("evaluates");
        println!(
            "{:<14} {:>11.2}x {:>13.2}x",
            w.name, on.region_speedup, off.region_speedup
        );
    }
}
