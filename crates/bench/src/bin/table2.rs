//! Regenerates the paper's Table 2: per-benchmark coverage, measured
//! average trip count, effective vector length, VPL partitioning rate,
//! and the FlexVec instruction mix of the generated code (experiment E4
//! in DESIGN.md).

use flexvec::vectorize;
use flexvec_bench::flags::CommonFlags;
use flexvec_bench::{render_table2, Table2Row};
use flexvec_mem::AddressSpace;
use flexvec_profiler::profile_loop;
use flexvec_sim::SimConfig;
use flexvec_vm::Bindings;
use flexvec_workloads::{all, evaluate_with_engine, VectorMode};

fn main() {
    let flags = CommonFlags::parse(
        "table2",
        "table2: regenerate the paper's Table 2 coverage/trip/mix data",
        &[],
    );
    let mut rows = Vec::new();
    for w in all() {
        // Profile on a fresh memory image.
        let mut mem = AddressSpace::new();
        let ids: Vec<_> = w
            .arrays
            .iter()
            .enumerate()
            .map(|(i, d)| mem.alloc_from(&format!("a{i}"), d))
            .collect();
        let profile = profile_loop(&w.program, &mut mem, Bindings::new(ids), w.invocations)
            .unwrap_or_else(|e| panic!("{}: profile failed: {e}", w.name));
        let mix = vectorize(&w.program, flags.spec)
            .unwrap_or_else(|e| panic!("{}: {e}", w.name))
            .vprog
            .inst_mix();
        let eval = evaluate_with_engine(
            &w,
            flags.spec,
            &SimConfig::table1(),
            VectorMode::FlexVec,
            flags.engine,
        )
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
        rows.push(Table2Row {
            name: w.name,
            coverage: w.coverage,
            avg_trip: profile.avg_trip_count(),
            effective_vl: profile.effective_vector_length(),
            avg_partitions: eval.stats.vpl_iterations as f64 / eval.stats.chunks.max(1) as f64,
            mix: mix.flexvec_summary(),
        });
    }
    println!("=== Table 2: Coverage, Average Trip Count and FlexVec Instructions Used ===\n");
    print!("{}", render_table2(&rows));
    println!("\n(Trip counts above ~16K are simulated at a scaled-down extent; see DESIGN.md.)");
}
