//! Regenerates the RTM tile-size study (paper Sections 3.3.2 and 4.1,
//! experiment E5): strip-mined transactional speculation approaches the
//! first-faulting configuration as the tile amortizes the XBEGIN/XEND
//! overhead — "the inner loop should have a tile size of 128 to 256
//! scalar iterations to get performance within 1% to 2% of the code that
//! is vectorized using first faulting load/gather".

use flexvec::SpecRequest;
use flexvec_bench::flags::CommonFlags;
use flexvec_sim::SimConfig;
use flexvec_vm::Engine;
use flexvec_workloads::{applications, evaluate_with_engine, spec2006, VectorMode, Workload};

fn eval(w: &Workload, spec: SpecRequest, engine: Engine) -> flexvec_workloads::Evaluation {
    evaluate_with_engine(w, spec, &SimConfig::table1(), VectorMode::FlexVec, engine)
        .unwrap_or_else(|e| panic!("{}: {e}", w.name))
}

fn main() {
    let flags = CommonFlags::parse(
        "rtm_sweep",
        "rtm_sweep: RTM tile-size sensitivity vs the first-faulting baseline \
         (--spec sets the baseline codegen, default ff)",
        &[],
    );
    // The FF-using workloads (the only ones where the two code paths
    // differ materially).
    let ff_workloads: Vec<Workload> = spec2006()
        .into_iter()
        .chain(applications())
        .filter(|w| w.expected_mix.contains("FF"))
        .collect();
    let tiles = [16u32, 32, 64, 128, 256, 512, 1024];

    println!("=== RTM tile-size sweep (cycles relative to first-faulting codegen) ===\n");
    print!("{:<22}", "benchmark \\ tile");
    for t in tiles {
        print!("{t:>8}");
    }
    println!("{:>8}", "FF=1.0");
    for w in &ff_workloads {
        let ff = eval(w, flags.spec, flags.engine);
        print!("{:<22}", w.name);
        for t in tiles {
            let rtm = eval(w, SpecRequest::Rtm { tile: t }, flags.engine);
            print!(
                "{:>8.3}",
                rtm.flexvec_cycles as f64 / ff.flexvec_cycles as f64
            );
        }
        println!("{:>8.3}", 1.0);
    }
    println!("\n(1.00 = parity with first-faulting; the paper reports 128-256 within 1-2%.)");
}
