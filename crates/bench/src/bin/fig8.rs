//! Regenerates the paper's Figure 8: overall application speedup of
//! FlexVec vectorization over the baseline (which executes FlexVec
//! candidate loops as scalar code) on the Table 1 out-of-order model,
//! for 11 SPEC 2006 benchmarks and 7 real applications (experiments
//! E1/E2 in DESIGN.md).
//!
//! Run with `--release`; the full sweep simulates ~18 × 2 executions.

use flexvec_bench::flags::CommonFlags;
use flexvec_bench::{by_suite, evaluate_all_with_engine, render_fig8, render_throughput};
use flexvec_workloads::all;

fn main() {
    let flags = CommonFlags::parse(
        "fig8",
        "fig8: regenerate the paper's Figure 8 application speedups",
        &[],
    );
    let evals = evaluate_all_with_engine(&all(), flags.spec, flags.engine);
    let (spec, apps) = by_suite(&evals);
    println!("=== Figure 8: Application Speedup over an Aggressive OOO Processor ===\n");
    println!("{}", render_fig8(&spec, "SPEC 2006 (paper geomean: 1.09x)"));
    println!(
        "{}",
        render_fig8(&apps, "Real applications (paper geomean: 1.11x)")
    );
    println!("=== Execution-engine throughput (host wall clock) ===\n");
    println!("{}", render_throughput(&evals));
}
