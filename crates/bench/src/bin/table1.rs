//! Regenerates the paper's Table 1: the simulation parameters actually
//! used by `flexvec-sim` (experiment E3 in DESIGN.md).

use flexvec_sim::SimConfig;

fn main() {
    println!("=== Table 1: Simulation Parameters ===\n");
    print!("{}", SimConfig::table1().render_table1());
}
