//! Regenerates the paper's Table 1: the simulation parameters actually
//! used by `flexvec-sim` (experiment E3 in DESIGN.md).

use flexvec_bench::flags::CommonFlags;
use flexvec_sim::SimConfig;

fn main() {
    // Uniform flag handling across the harness binaries; Table 1 is
    // static configuration, so `--engine`/`--spec` have no effect here.
    let _flags = CommonFlags::parse(
        "table1",
        "table1: print the Table 1 simulation parameters",
        &[],
    );
    println!("=== Table 1: Simulation Parameters ===\n");
    print!("{}", SimConfig::table1().render_table1());
}
