//! `flexvecc` — the batch driver for `.fv` loop kernels.
//!
//! ```text
//! flexvecc check     <files|dirs...>   parse + vectorize, report verdicts
//! flexvecc vectorize <files|dirs...>   verdicts plus the generated instruction mix
//! flexvecc run       <files|dirs...>   execute scalar vs FlexVec, report speedups
//! flexvecc bench     <files|dirs...>   submit the corpus repeatedly, report cache hit rates
//! ```
//!
//! Common flags: `--engine tree|compiled`, `--spec ff|rtm[:TILE]`,
//! `--json`; `run`/`bench` also take `--invocations N` and `bench` takes
//! `--waves N`. Exit status: 0 on success, 1 if any kernel failed to
//! parse or execute, 2 on usage errors.

use flexvec_bench::flags::{CommonFlags, ExtraFlag};
use flexvec_bench::fv::{
    check_fv_file, collect_fv_files, evaluate_fv_all, fv_reports_json, render_cache_line,
    render_fv_reports, FvReport,
};
use flexvec_front::CompileCache;

const ABOUT: &str = "flexvecc: check, vectorize, run and bench directories of .fv loop kernels";

fn main() {
    let flags = CommonFlags::parse(
        "flexvecc <check|vectorize|run|bench> <files|dirs...>",
        ABOUT,
        &[
            ExtraFlag {
                name: "invocations",
                help: "loop invocations per kernel for run/bench (default 3)",
            },
            ExtraFlag {
                name: "waves",
                help: "corpus submission waves for bench (default 2)",
            },
        ],
    );
    let Some((cmd, paths)) = flags.positional.split_first() else {
        eprintln!(
            "{ABOUT}\nusage: flexvecc <check|vectorize|run|bench> <files|dirs...> (see --help)"
        );
        std::process::exit(2);
    };
    if paths.is_empty() {
        eprintln!("flexvecc {cmd}: no input files (see --help)");
        std::process::exit(2);
    }
    let files = collect_fv_files(paths).unwrap_or_else(|e| {
        eprintln!("flexvecc: {e}");
        std::process::exit(2);
    });

    let cache = CompileCache::new();
    let invocations = flags.u64_flag("invocations", 3);
    let failed = match cmd.as_str() {
        "check" | "vectorize" => {
            let detailed = cmd == "vectorize";
            let reports: Vec<FvReport> = files
                .iter()
                .map(|f| check_fv_file(f, &cache, flags.spec))
                .collect();
            for (report, file) in reports.iter().zip(&files) {
                match &report.error {
                    Some(rendered) => eprintln!("{rendered}"),
                    None => {
                        println!(
                            "{}: ok — kernel `{}`: {}",
                            report.source, report.kernel, report.verdict
                        );
                        if detailed {
                            if let Some(mix) = kernel_mix(file, &cache, flags.spec) {
                                println!("    mix: {mix}");
                            }
                        }
                    }
                }
            }
            if flags.json {
                print!("{}", fv_reports_json(&reports, &cache));
            }
            reports.iter().any(FvReport::is_failure)
        }
        "run" => {
            let reports = evaluate_fv_all(&files, &cache, flags.spec, flags.engine, invocations);
            emit_run(&reports, &cache, flags.json);
            reports.iter().any(FvReport::is_failure)
        }
        "bench" => {
            let waves = flags.u64_flag("waves", 2).max(1);
            let mut any_failed = false;
            let mut last_reports = Vec::new();
            for wave in 1..=waves {
                cache.reset_counters();
                let start = std::time::Instant::now();
                let reports =
                    evaluate_fv_all(&files, &cache, flags.spec, flags.engine, invocations);
                let elapsed = start.elapsed();
                let stats = cache.stats();
                if !flags.json {
                    println!(
                        "wave {wave}/{waves}: {} kernels in {elapsed:.2?} — cache {:.0}% hit ({} compiles total)",
                        reports.len(),
                        stats.hit_rate() * 100.0,
                        cache.compiles()
                    );
                }
                any_failed |= reports.iter().any(FvReport::is_failure);
                last_reports = reports;
            }
            if !flags.json {
                println!();
            }
            emit_run(&last_reports, &cache, flags.json);
            any_failed
        }
        other => {
            eprintln!(
                "flexvecc: unknown command `{other}` (expected check, vectorize, run or bench)"
            );
            std::process::exit(2);
        }
    };
    if failed {
        std::process::exit(1);
    }
}

fn emit_run(reports: &[FvReport], cache: &CompileCache, json: bool) {
    if json {
        print!("{}", fv_reports_json(reports, cache));
    } else {
        print!("{}", render_fv_reports(reports));
        println!("{}", render_cache_line(cache));
        for report in reports {
            if let Some(e) = &report.error {
                eprintln!("\n{}: {e}", report.source);
            }
        }
    }
}

/// The FlexVec instruction mix of a kernel that vectorized (for
/// `flexvecc vectorize`).
fn kernel_mix(
    file: &std::path::Path,
    cache: &CompileCache,
    spec: flexvec::SpecRequest,
) -> Option<String> {
    let kernel = flexvec_front::parse_file(file).ok()?;
    let (compiled, _) = cache.get_or_compile(&kernel.program, spec);
    let plan = compiled.plan.as_ref().ok()?;
    Some(plan.vectorized.vprog.inst_mix().flexvec_summary())
}
