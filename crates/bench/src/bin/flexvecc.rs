//! `flexvecc` — the batch driver for `.fv` loop kernels.
//!
//! ```text
//! flexvecc check     <files|dirs...>   parse + vectorize, report verdicts
//! flexvecc vectorize <files|dirs...>   verdicts plus the generated instruction mix
//! flexvecc run       <files|dirs...>   execute scalar vs FlexVec, report speedups
//! flexvecc bench     <files|dirs...>   submit the corpus repeatedly, report cache hit rates
//! flexvecc fuzz [mutants]              differential fuzzing / mutation testing
//! flexvecc serve                       resident compile-and-execute daemon
//! flexvecc client <op> [file.fv]       talk to a running daemon (or pipe stdin)
//! ```
//!
//! Common flags: `--engine tree|compiled`, `--spec ff|rtm[:TILE]`,
//! `--vl 8|16|32|64` (ambient vector length for the local drivers and
//! fuzzer; forwarded per-request by `client`), `--json`; `run`/`bench`
//! also take `--invocations N` and `bench` takes `--waves N`. `fuzz`
//! takes `--seed N`, `--iters N`, `--budget-ms N`
//! and `--repro-dir PATH` (where divergence/mutant repros are written).
//! `serve` takes `--addr`, `--metrics-addr` (or `off`), `--workers`,
//! `--queue`, `--cache`, `--deadline-ms`, `--cache-dir PATH` (persist
//! compiled kernels across restarts), `--cache-dir-max-bytes N`
//! (bound the store, oldest evicted first), `--accept-mode
//! auto|threads`, and `--cluster A,B,...` with `--advertise ADDR`
//! (consistent-hash ring across daemons) plus `--gossip-interval-ms`
//! and `--gossip-gc-rounds` (snapshot replication cadence); `client`
//! takes `--addr` plus the run flags, retrying refused connects with
//! capped backoff. `--version` prints the build identity.
//!
//! SIGINT in the long-running modes (`serve`, `fuzz`, `bench`) drains
//! gracefully: the in-flight unit of work finishes and a partial report
//! is emitted; a second SIGINT aborts.
//!
//! Exit status: 0 on success, 1 if any kernel failed to parse or
//! execute (or the fuzzer found a divergence / an escaped mutant, or a
//! client request returned an error), 2 on usage errors.

use flexvec_bench::flags::{CommonFlags, ExtraFlag};
use flexvec_bench::fv::{
    check_fv_file, collect_fv_files, evaluate_fv_all, fv_reports_json, json_escape,
    render_cache_line, render_fv_reports, FvReport,
};
use flexvec_front::CompileCache;
use flexvec_serve::Json;

const ABOUT: &str = "flexvecc: check, vectorize, run, bench, fuzz and serve .fv loop kernels";

/// Default daemon address shared by `serve` and `client`.
const DEFAULT_ADDR: &str = "127.0.0.1:9941";
const DEFAULT_METRICS_ADDR: &str = "127.0.0.1:9942";

fn main() {
    if std::env::args()
        .skip(1)
        .any(|a| a == "--version" || a == "-V")
    {
        println!("flexvecc {}", flexvec_serve::build_info());
        return;
    }
    let flags = CommonFlags::parse(
        "flexvecc <check|vectorize|run|bench|fuzz|serve|client> <files|dirs...>",
        ABOUT,
        &[
            ExtraFlag {
                name: "invocations",
                help: "loop invocations per kernel for run/bench (default 3)",
            },
            ExtraFlag {
                name: "waves",
                help: "corpus submission waves for bench (default 2)",
            },
            ExtraFlag {
                name: "seed",
                help: "fuzz campaign seed (default 0)",
            },
            ExtraFlag {
                name: "iters",
                help: "fuzz case budget (default 500)",
            },
            ExtraFlag {
                name: "budget-ms",
                help: "fuzz wall-clock budget in ms (default unlimited)",
            },
            ExtraFlag {
                name: "repro-dir",
                help: "where fuzz writes minimized repros (default tests/repros)",
            },
            ExtraFlag {
                name: "addr",
                help: "daemon request address for serve/client (default 127.0.0.1:9941)",
            },
            ExtraFlag {
                name: "metrics-addr",
                help: "daemon /metrics address for serve, or `off` (default 127.0.0.1:9942)",
            },
            ExtraFlag {
                name: "workers",
                help: "serve worker pool size (default 4)",
            },
            ExtraFlag {
                name: "queue",
                help: "serve admission queue capacity (default 64)",
            },
            ExtraFlag {
                name: "cache",
                help: "serve compile-cache capacity, 0 = unbounded (default 1024)",
            },
            ExtraFlag {
                name: "deadline-ms",
                help: "request deadline in ms for serve defaults / client requests",
            },
            ExtraFlag {
                name: "cache-dir",
                help: "serve persistent compile-cache directory (default off)",
            },
            ExtraFlag {
                name: "cache-dir-max-bytes",
                help: "byte bound on the serve cache dir, 0 = unbounded (default 0)",
            },
            ExtraFlag {
                name: "cluster",
                help: "comma-separated member list for serve cluster mode (default off)",
            },
            ExtraFlag {
                name: "advertise",
                help: "this node's address in the --cluster member list (default --addr)",
            },
            ExtraFlag {
                name: "gossip-interval-ms",
                help: "snapshot-manifest gossip period in cluster mode (default 1000)",
            },
            ExtraFlag {
                name: "gossip-gc-rounds",
                help: "gossip rounds a snapshot may stay memory-cold everywhere before disk GC, 0 = off (default 10)",
            },
            ExtraFlag {
                name: "vl",
                help: "vector length in lanes for run/bench/fuzz, or per-request for client (8, 16, 32 or 64; default 16)",
            },
            ExtraFlag {
                name: "accept-mode",
                help: "serve accept path: auto (reactor where available) or threads (default auto)",
            },
        ],
    );
    // `--vl` sets the ambient vector length for the local engines (the
    // batch drivers and the fuzzer); `client` additionally forwards it
    // on the wire so the daemon executes at that width.
    let vl = flags.u64_flag("vl", 0) as usize;
    if vl != 0 && flexvec_isa::set_vlen(vl).is_err() {
        eprintln!(
            "flexvecc: --vl must be one of {:?}",
            flexvec_isa::SUPPORTED_VLENS
        );
        std::process::exit(2);
    }
    let Some((cmd, paths)) = flags.positional.split_first() else {
        eprintln!(
            "{ABOUT}\nusage: flexvecc <check|vectorize|run|bench|fuzz|serve|client> <files|dirs...> (see --help)"
        );
        std::process::exit(2);
    };
    if cmd == "fuzz" {
        std::process::exit(if fuzz_cmd(&flags, paths) { 1 } else { 0 });
    }
    if cmd == "serve" {
        std::process::exit(serve_cmd(&flags));
    }
    if cmd == "client" {
        std::process::exit(client_cmd(&flags, paths));
    }
    if paths.is_empty() {
        eprintln!("flexvecc {cmd}: no input files (see --help)");
        std::process::exit(2);
    }
    let files = collect_fv_files(paths).unwrap_or_else(|e| {
        eprintln!("flexvecc: {e}");
        std::process::exit(2);
    });

    let cache = CompileCache::new();
    let invocations = flags.u64_flag("invocations", 3);
    let failed = match cmd.as_str() {
        "check" | "vectorize" => {
            let detailed = cmd == "vectorize";
            let reports: Vec<FvReport> = files
                .iter()
                .map(|f| check_fv_file(f, &cache, flags.spec))
                .collect();
            for (report, file) in reports.iter().zip(&files) {
                match &report.error {
                    Some(rendered) => eprintln!("{rendered}"),
                    None => {
                        println!(
                            "{}: ok — kernel `{}`: {}",
                            report.source, report.kernel, report.verdict
                        );
                        if detailed {
                            if let Some(mix) = kernel_mix(file, &cache, flags.spec) {
                                println!("    mix: {mix}");
                            }
                        }
                    }
                }
            }
            if flags.json {
                print!("{}", fv_reports_json(&reports, &cache));
            }
            reports.iter().any(FvReport::is_failure)
        }
        "run" => {
            let reports = evaluate_fv_all(&files, &cache, flags.spec, flags.engine, invocations);
            emit_run(&reports, &cache, flags.json);
            reports.iter().any(FvReport::is_failure)
        }
        "bench" => {
            flexvec_serve::install_sigint_handler();
            let waves = flags.u64_flag("waves", 2).max(1);
            let mut any_failed = false;
            let mut last_reports = Vec::new();
            for wave in 1..=waves {
                if flexvec_serve::interrupted() {
                    eprintln!(
                        "flexvecc bench: interrupted after wave {} of {waves} — partial report follows",
                        wave - 1
                    );
                    break;
                }
                cache.reset_counters();
                let start = std::time::Instant::now();
                let reports =
                    evaluate_fv_all(&files, &cache, flags.spec, flags.engine, invocations);
                let elapsed = start.elapsed();
                let stats = cache.stats();
                if !flags.json {
                    println!(
                        "wave {wave}/{waves}: {} kernels in {elapsed:.2?} — cache {:.0}% hit ({} compiles total)",
                        reports.len(),
                        stats.hit_rate() * 100.0,
                        cache.compiles()
                    );
                }
                any_failed |= reports.iter().any(FvReport::is_failure);
                last_reports = reports;
            }
            if !flags.json {
                println!();
            }
            emit_run(&last_reports, &cache, flags.json);
            any_failed
        }
        other => {
            eprintln!(
                "flexvecc: unknown command `{other}` (expected check, vectorize, run, bench or fuzz)"
            );
            std::process::exit(2);
        }
    };
    if failed {
        std::process::exit(1);
    }
}

/// `flexvecc fuzz [mutants]` — differential fuzzing (default) or
/// mutation testing (`mutants`). Returns whether the run failed.
fn fuzz_cmd(flags: &CommonFlags, modes: &[String]) -> bool {
    let seed = flags.u64_flag("seed", 0);
    let iters = flags.u64_flag("iters", 500);
    let budget_ms = flags.u64_flag("budget-ms", 0);
    let repro_dir = std::path::PathBuf::from(flags.str_flag("repro-dir", "tests/repros"));
    match modes.first().map(String::as_str) {
        Some("mutants") => fuzz_mutants(flags, seed, iters, &repro_dir),
        None => fuzz_campaign(flags, seed, iters, budget_ms, &repro_dir),
        Some(other) => {
            eprintln!("flexvecc fuzz: unknown mode `{other}` (expected nothing or `mutants`)");
            std::process::exit(2);
        }
    }
}

fn write_repro(dir: &std::path::Path, name: &str, text: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, text)) {
        eprintln!("flexvecc fuzz: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    path
}

fn fuzz_campaign(
    flags: &CommonFlags,
    seed: u64,
    iters: u64,
    budget_ms: u64,
    repro_dir: &std::path::Path,
) -> bool {
    flexvec_serve::install_sigint_handler();
    let stop = std::sync::Arc::new(std::sync::atomic::AtomicBool::new(false));
    {
        // Bridge the process-wide SIGINT flag into the campaign's
        // cooperative stop flag; the watcher dies with the process.
        let stop = std::sync::Arc::clone(&stop);
        std::thread::spawn(move || loop {
            if flexvec_serve::interrupted() {
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
                return;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        });
    }
    let started = std::time::Instant::now();
    let outcome = flexvec_fuzz::run_fuzz(&flexvec_fuzz::FuzzConfig {
        seed,
        iters,
        budget_ms,
        stop: Some(stop),
        ..flexvec_fuzz::FuzzConfig::default()
    });
    let elapsed = started.elapsed();
    if outcome.interrupted {
        eprintln!(
            "flexvecc fuzz: interrupted after {} case(s) — partial report follows",
            outcome.cases
        );
    }
    if flags.json {
        let divergence = match &outcome.divergence {
            None => "null".to_owned(),
            Some(d) => format!(
                "{{\"case\": {}, \"config\": \"{}\", \"detail\": \"{}\", \"repro\": \"{}\"}}",
                d.case_index,
                json_escape(&d.config),
                json_escape(&d.detail),
                json_escape(&d.repro)
            ),
        };
        println!(
            "{{\n  \"seed\": {seed},\n  \"cases\": {},\n  \"vector_runs\": {},\n  \"rejected_specs\": {},\n  \"rejected_widths\": {},\n  \"elapsed_ms\": {},\n  \"interrupted\": {},\n  \"divergence\": {divergence}\n}}",
            outcome.cases,
            outcome.vector_runs,
            outcome.rejected_specs,
            outcome.rejected_widths,
            elapsed.as_millis(),
            outcome.interrupted
        );
    }
    match &outcome.divergence {
        None => {
            if !flags.json {
                println!(
                    "fuzz: seed {seed}: {} cases, {} vector runs, {} rejected spec combos, {} over-ceiling widths refused in {elapsed:.2?} — no divergence{}",
                    outcome.cases,
                    outcome.vector_runs,
                    outcome.rejected_specs,
                    outcome.rejected_widths,
                    if outcome.interrupted { " (partial: interrupted)" } else { "" }
                );
            }
            false
        }
        Some(d) => {
            let path = write_repro(
                repro_dir,
                &format!("fuzz_seed{seed}_case{}.fv", d.case_index),
                &d.repro,
            );
            eprintln!(
                "fuzz: seed {seed}, case {}: DIVERGENCE under {} — {}\nminimized repro written to {}",
                d.case_index,
                d.config,
                d.detail,
                path.display()
            );
            true
        }
    }
}

fn fuzz_mutants(flags: &CommonFlags, seed: u64, iters: u64, repro_dir: &std::path::Path) -> bool {
    let reports = flexvec_fuzz::run_mutants(seed, iters.max(1), 400);
    let mut failed = false;
    let mut json_items = Vec::new();
    for report in &reports {
        let name = report.mutant.name();
        match &report.repro {
            Some(repro) => {
                let lines = repro.lines().count();
                let path = write_repro(repro_dir, &format!("mutant_{name}.fv"), repro);
                if !flags.json {
                    println!(
                        "mutant {name}: caught under {} after {} case(s); {lines}-line repro -> {}",
                        report.config,
                        report.cases_tried,
                        path.display()
                    );
                }
                if lines > 20 {
                    eprintln!("mutant {name}: repro is {lines} lines (limit 20)");
                    failed = true;
                }
            }
            None => {
                eprintln!(
                    "mutant {name}: NOT caught in {} case(s)",
                    report.cases_tried
                );
                failed = true;
            }
        }
        json_items.push(format!(
            "{{\"mutant\": \"{name}\", \"caught\": {}, \"cases\": {}, \"config\": \"{}\", \"detail\": \"{}\"}}",
            report.caught,
            report.cases_tried,
            json_escape(&report.config),
            json_escape(&report.detail)
        ));
    }
    if flags.json {
        println!(
            "{{\"seed\": {seed}, \"mutants\": [{}]}}",
            json_items.join(", ")
        );
    }
    failed
}

fn emit_run(reports: &[FvReport], cache: &CompileCache, json: bool) {
    if json {
        print!("{}", fv_reports_json(reports, cache));
    } else {
        print!("{}", render_fv_reports(reports));
        println!("{}", render_cache_line(cache));
        for report in reports {
            if let Some(e) = &report.error {
                eprintln!("\n{}: {e}", report.source);
            }
        }
    }
}

/// The FlexVec instruction mix of a kernel that vectorized (for
/// `flexvecc vectorize`).
fn kernel_mix(
    file: &std::path::Path,
    cache: &CompileCache,
    spec: flexvec::SpecRequest,
) -> Option<String> {
    let kernel = flexvec_front::parse_file(file).ok()?;
    let (compiled, _) = cache.get_or_compile(&kernel.program, spec);
    let plan = compiled.plan.as_ref().ok()?;
    Some(plan.vectorized.vprog.inst_mix().flexvec_summary())
}

/// `flexvecc serve` — runs the resident daemon until SIGINT, then
/// drains gracefully. Returns the process exit code.
fn serve_cmd(flags: &CommonFlags) -> i32 {
    let metrics_addr = match flags.str_flag("metrics-addr", DEFAULT_METRICS_ADDR) {
        s if s == "off" => None,
        s => Some(s),
    };
    let accept_mode = match flags.str_flag("accept-mode", "auto").as_str() {
        "auto" => flexvec_serve::AcceptMode::Auto,
        "threads" => flexvec_serve::AcceptMode::Threads,
        other => {
            eprintln!("flexvecc serve: unknown --accept-mode `{other}` (expected auto or threads)");
            return 2;
        }
    };
    let config = flexvec_serve::ServerConfig {
        addr: flags.str_flag("addr", DEFAULT_ADDR),
        metrics_addr,
        workers: flags.u64_flag("workers", 4).max(1) as usize,
        queue_capacity: flags.u64_flag("queue", 64).max(1) as usize,
        cache_capacity: flags.u64_flag("cache", 1024) as usize,
        default_deadline_ms: match flags.u64_flag("deadline-ms", 0) {
            0 => None,
            n => Some(n),
        },
        cache_dir: match flags.str_flag("cache-dir", "") {
            s if s.is_empty() => None,
            s => Some(s),
        },
        cache_dir_max_bytes: match flags.u64_flag("cache-dir-max-bytes", 0) {
            0 => None,
            n => Some(n),
        },
        cluster: flags
            .str_flag("cluster", "")
            .split(',')
            .map(str::trim)
            .filter(|s| !s.is_empty())
            .map(str::to_owned)
            .collect(),
        advertise: match flags.str_flag("advertise", "") {
            s if s.is_empty() => None,
            s => Some(s),
        },
        gossip_interval_ms: flags.u64_flag("gossip-interval-ms", 1000),
        gossip_gc_rounds: flags.u64_flag("gossip-gc-rounds", 10),
        accept_mode,
    };
    flexvec_serve::install_sigint_handler();
    let handle = match flexvec_serve::start(config.clone()) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("flexvecc serve: cannot start: {e}");
            return 2;
        }
    };
    println!("{}", flexvec_serve::startup_line(&handle, &config));
    while !flexvec_serve::interrupted() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    eprintln!("flexvecc serve: SIGINT received — draining (press ^C again to abort)");
    handle.shutdown();
    eprintln!("flexvecc serve: drained cleanly");
    0
}

/// `flexvecc client` — one request against a running daemon, or a
/// stdin pipeline of raw protocol lines. Returns the exit code.
fn client_cmd(flags: &CommonFlags, args: &[String]) -> i32 {
    let addr = flags.str_flag("addr", DEFAULT_ADDR);
    // Retried connect: a daemon that is restarting (or still binding
    // its listener) refuses briefly; back off 100 ms → 200 ms rather
    // than failing a scripted pipeline on the race.
    let mut client = match flexvec_serve::Client::connect_with_retry(
        &addr,
        flexvec_serve::client::CONNECT_ATTEMPTS,
    ) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("flexvecc client: cannot connect to {addr}: {e}");
            return 2;
        }
    };
    match args.first().map(String::as_str) {
        // Pipeline mode: forward raw request lines from stdin, print
        // one response line each.
        None | Some("-") => {
            use std::io::BufRead;
            let stdin = std::io::stdin();
            let mut failed = false;
            for line in stdin.lock().lines() {
                let line = match line {
                    Ok(l) => l,
                    Err(e) => {
                        eprintln!("flexvecc client: stdin: {e}");
                        return 2;
                    }
                };
                if line.trim().is_empty() {
                    continue;
                }
                match client.request_raw(&line) {
                    Ok(response) => {
                        failed |= response.contains("\"ok\":false");
                        println!("{response}");
                    }
                    Err(e) => {
                        eprintln!("flexvecc client: {e}");
                        return 2;
                    }
                }
            }
            i32::from(failed)
        }
        Some("stats") => emit_client_response(
            &mut client,
            &flexvec_serve::Json::obj([("op", Json::from("stats"))]),
        ),
        Some(op @ ("compile" | "run" | "bench")) => {
            let Some(file) = args.get(1) else {
                eprintln!("flexvecc client: `{op}` needs a .fv file (see --help)");
                return 2;
            };
            let source = match std::fs::read_to_string(file) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("flexvecc client: cannot read {file}: {e}");
                    return 2;
                }
            };
            let mut request = vec![
                ("op", Json::from(op)),
                ("source", Json::from(source)),
                (
                    "invocations",
                    Json::from(flags.u64_flag("invocations", 3).max(1)),
                ),
            ];
            // A *present* spec field pins the variant on the daemon and
            // bypasses its autotuner (even `--spec ff`); without
            // --spec the kernel stays autotunable.
            if flags.spec_explicit {
                let spec = match flags.spec {
                    flexvec::SpecRequest::Auto => "ff".to_owned(),
                    flexvec::SpecRequest::Rtm { tile } => format!("rtm:{tile}"),
                };
                request.push(("spec", Json::from(spec)));
            }
            // Without an explicit --engine the daemon's tier policy
            // picks the engine per kernel hash (wire default `auto`).
            if flags.engine_explicit {
                let engine = match flags.engine {
                    flexvec_vm::Engine::TreeWalking => "tree",
                    flexvec_vm::Engine::Compiled => "compiled",
                    flexvec_vm::Engine::Native => "native",
                };
                request.push(("engine", Json::from(engine)));
            }
            if let n @ 1.. = flags.u64_flag("deadline-ms", 0) {
                request.push(("deadline_ms", Json::from(n)));
            }
            // An explicit --vl rides the request so the daemon runs the
            // kernel at that width (its compile cache entry is shared
            // across widths either way).
            if let n @ 1.. = flags.u64_flag("vl", 0) {
                request.push(("vl", Json::from(n)));
            }
            emit_client_response(&mut client, &Json::obj(request))
        }
        Some(other) => {
            eprintln!(
                "flexvecc client: unknown op `{other}` (expected compile, run, bench, stats or `-`)"
            );
            2
        }
    }
}

/// Sends one request, prints the response line, and maps `ok` to the
/// exit code.
fn emit_client_response(client: &mut flexvec_serve::Client, request: &Json) -> i32 {
    match client.request(request) {
        Ok(response) => {
            println!("{response}");
            i32::from(response.get("ok").and_then(Json::as_bool) != Some(true))
        }
        Err(e) => {
            eprintln!("flexvecc client: {e}");
            2
        }
    }
}
