//! `flexvecc` — the batch driver for `.fv` loop kernels.
//!
//! ```text
//! flexvecc check     <files|dirs...>   parse + vectorize, report verdicts
//! flexvecc vectorize <files|dirs...>   verdicts plus the generated instruction mix
//! flexvecc run       <files|dirs...>   execute scalar vs FlexVec, report speedups
//! flexvecc bench     <files|dirs...>   submit the corpus repeatedly, report cache hit rates
//! flexvecc fuzz [mutants]              differential fuzzing / mutation testing
//! ```
//!
//! Common flags: `--engine tree|compiled`, `--spec ff|rtm[:TILE]`,
//! `--json`; `run`/`bench` also take `--invocations N` and `bench` takes
//! `--waves N`. `fuzz` takes `--seed N`, `--iters N`, `--budget-ms N`
//! and `--repro-dir PATH` (where divergence/mutant repros are written).
//! Exit status: 0 on success, 1 if any kernel failed to parse or
//! execute (or the fuzzer found a divergence / an escaped mutant), 2 on
//! usage errors.

use flexvec_bench::flags::{CommonFlags, ExtraFlag};
use flexvec_bench::fv::{
    check_fv_file, collect_fv_files, evaluate_fv_all, fv_reports_json, json_escape,
    render_cache_line, render_fv_reports, FvReport,
};
use flexvec_front::CompileCache;

const ABOUT: &str = "flexvecc: check, vectorize, run, bench and fuzz .fv loop kernels";

fn main() {
    let flags = CommonFlags::parse(
        "flexvecc <check|vectorize|run|bench|fuzz> <files|dirs...>",
        ABOUT,
        &[
            ExtraFlag {
                name: "invocations",
                help: "loop invocations per kernel for run/bench (default 3)",
            },
            ExtraFlag {
                name: "waves",
                help: "corpus submission waves for bench (default 2)",
            },
            ExtraFlag {
                name: "seed",
                help: "fuzz campaign seed (default 0)",
            },
            ExtraFlag {
                name: "iters",
                help: "fuzz case budget (default 500)",
            },
            ExtraFlag {
                name: "budget-ms",
                help: "fuzz wall-clock budget in ms (default unlimited)",
            },
            ExtraFlag {
                name: "repro-dir",
                help: "where fuzz writes minimized repros (default tests/repros)",
            },
        ],
    );
    let Some((cmd, paths)) = flags.positional.split_first() else {
        eprintln!(
            "{ABOUT}\nusage: flexvecc <check|vectorize|run|bench|fuzz> <files|dirs...> (see --help)"
        );
        std::process::exit(2);
    };
    if cmd == "fuzz" {
        std::process::exit(if fuzz_cmd(&flags, paths) { 1 } else { 0 });
    }
    if paths.is_empty() {
        eprintln!("flexvecc {cmd}: no input files (see --help)");
        std::process::exit(2);
    }
    let files = collect_fv_files(paths).unwrap_or_else(|e| {
        eprintln!("flexvecc: {e}");
        std::process::exit(2);
    });

    let cache = CompileCache::new();
    let invocations = flags.u64_flag("invocations", 3);
    let failed = match cmd.as_str() {
        "check" | "vectorize" => {
            let detailed = cmd == "vectorize";
            let reports: Vec<FvReport> = files
                .iter()
                .map(|f| check_fv_file(f, &cache, flags.spec))
                .collect();
            for (report, file) in reports.iter().zip(&files) {
                match &report.error {
                    Some(rendered) => eprintln!("{rendered}"),
                    None => {
                        println!(
                            "{}: ok — kernel `{}`: {}",
                            report.source, report.kernel, report.verdict
                        );
                        if detailed {
                            if let Some(mix) = kernel_mix(file, &cache, flags.spec) {
                                println!("    mix: {mix}");
                            }
                        }
                    }
                }
            }
            if flags.json {
                print!("{}", fv_reports_json(&reports, &cache));
            }
            reports.iter().any(FvReport::is_failure)
        }
        "run" => {
            let reports = evaluate_fv_all(&files, &cache, flags.spec, flags.engine, invocations);
            emit_run(&reports, &cache, flags.json);
            reports.iter().any(FvReport::is_failure)
        }
        "bench" => {
            let waves = flags.u64_flag("waves", 2).max(1);
            let mut any_failed = false;
            let mut last_reports = Vec::new();
            for wave in 1..=waves {
                cache.reset_counters();
                let start = std::time::Instant::now();
                let reports =
                    evaluate_fv_all(&files, &cache, flags.spec, flags.engine, invocations);
                let elapsed = start.elapsed();
                let stats = cache.stats();
                if !flags.json {
                    println!(
                        "wave {wave}/{waves}: {} kernels in {elapsed:.2?} — cache {:.0}% hit ({} compiles total)",
                        reports.len(),
                        stats.hit_rate() * 100.0,
                        cache.compiles()
                    );
                }
                any_failed |= reports.iter().any(FvReport::is_failure);
                last_reports = reports;
            }
            if !flags.json {
                println!();
            }
            emit_run(&last_reports, &cache, flags.json);
            any_failed
        }
        other => {
            eprintln!(
                "flexvecc: unknown command `{other}` (expected check, vectorize, run, bench or fuzz)"
            );
            std::process::exit(2);
        }
    };
    if failed {
        std::process::exit(1);
    }
}

/// `flexvecc fuzz [mutants]` — differential fuzzing (default) or
/// mutation testing (`mutants`). Returns whether the run failed.
fn fuzz_cmd(flags: &CommonFlags, modes: &[String]) -> bool {
    let seed = flags.u64_flag("seed", 0);
    let iters = flags.u64_flag("iters", 500);
    let budget_ms = flags.u64_flag("budget-ms", 0);
    let repro_dir = std::path::PathBuf::from(flags.str_flag("repro-dir", "tests/repros"));
    match modes.first().map(String::as_str) {
        Some("mutants") => fuzz_mutants(flags, seed, iters, &repro_dir),
        None => fuzz_campaign(flags, seed, iters, budget_ms, &repro_dir),
        Some(other) => {
            eprintln!("flexvecc fuzz: unknown mode `{other}` (expected nothing or `mutants`)");
            std::process::exit(2);
        }
    }
}

fn write_repro(dir: &std::path::Path, name: &str, text: &str) -> std::path::PathBuf {
    let path = dir.join(name);
    if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, text)) {
        eprintln!("flexvecc fuzz: cannot write {}: {e}", path.display());
        std::process::exit(2);
    }
    path
}

fn fuzz_campaign(
    flags: &CommonFlags,
    seed: u64,
    iters: u64,
    budget_ms: u64,
    repro_dir: &std::path::Path,
) -> bool {
    let started = std::time::Instant::now();
    let outcome = flexvec_fuzz::run_fuzz(&flexvec_fuzz::FuzzConfig {
        seed,
        iters,
        budget_ms,
        ..flexvec_fuzz::FuzzConfig::default()
    });
    let elapsed = started.elapsed();
    if flags.json {
        let divergence = match &outcome.divergence {
            None => "null".to_owned(),
            Some(d) => format!(
                "{{\"case\": {}, \"config\": \"{}\", \"detail\": \"{}\", \"repro\": \"{}\"}}",
                d.case_index,
                json_escape(&d.config),
                json_escape(&d.detail),
                json_escape(&d.repro)
            ),
        };
        println!(
            "{{\n  \"seed\": {seed},\n  \"cases\": {},\n  \"vector_runs\": {},\n  \"rejected_specs\": {},\n  \"elapsed_ms\": {},\n  \"divergence\": {divergence}\n}}",
            outcome.cases,
            outcome.vector_runs,
            outcome.rejected_specs,
            elapsed.as_millis()
        );
    }
    match &outcome.divergence {
        None => {
            if !flags.json {
                println!(
                    "fuzz: seed {seed}: {} cases, {} vector runs, {} rejected spec combos in {elapsed:.2?} — no divergence",
                    outcome.cases, outcome.vector_runs, outcome.rejected_specs
                );
            }
            false
        }
        Some(d) => {
            let path = write_repro(
                repro_dir,
                &format!("fuzz_seed{seed}_case{}.fv", d.case_index),
                &d.repro,
            );
            eprintln!(
                "fuzz: seed {seed}, case {}: DIVERGENCE under {} — {}\nminimized repro written to {}",
                d.case_index,
                d.config,
                d.detail,
                path.display()
            );
            true
        }
    }
}

fn fuzz_mutants(flags: &CommonFlags, seed: u64, iters: u64, repro_dir: &std::path::Path) -> bool {
    let reports = flexvec_fuzz::run_mutants(seed, iters.max(1), 400);
    let mut failed = false;
    let mut json_items = Vec::new();
    for report in &reports {
        let name = report.mutant.name();
        match &report.repro {
            Some(repro) => {
                let lines = repro.lines().count();
                let path = write_repro(repro_dir, &format!("mutant_{name}.fv"), repro);
                if !flags.json {
                    println!(
                        "mutant {name}: caught under {} after {} case(s); {lines}-line repro -> {}",
                        report.config,
                        report.cases_tried,
                        path.display()
                    );
                }
                if lines > 20 {
                    eprintln!("mutant {name}: repro is {lines} lines (limit 20)");
                    failed = true;
                }
            }
            None => {
                eprintln!(
                    "mutant {name}: NOT caught in {} case(s)",
                    report.cases_tried
                );
                failed = true;
            }
        }
        json_items.push(format!(
            "{{\"mutant\": \"{name}\", \"caught\": {}, \"cases\": {}, \"config\": \"{}\", \"detail\": \"{}\"}}",
            report.caught,
            report.cases_tried,
            json_escape(&report.config),
            json_escape(&report.detail)
        ));
    }
    if flags.json {
        println!(
            "{{\"seed\": {seed}, \"mutants\": [{}]}}",
            json_items.join(", ")
        );
    }
    failed
}

fn emit_run(reports: &[FvReport], cache: &CompileCache, json: bool) {
    if json {
        print!("{}", fv_reports_json(reports, cache));
    } else {
        print!("{}", render_fv_reports(reports));
        println!("{}", render_cache_line(cache));
        for report in reports {
            if let Some(e) = &report.error {
                eprintln!("\n{}: {e}", report.source);
            }
        }
    }
}

/// The FlexVec instruction mix of a kernel that vectorized (for
/// `flexvecc vectorize`).
fn kernel_mix(
    file: &std::path::Path,
    cache: &CompileCache,
    spec: flexvec::SpecRequest,
) -> Option<String> {
    let kernel = flexvec_front::parse_file(file).ok()?;
    let (compiled, _) = cache.get_or_compile(&kernel.program, spec);
    let plan = compiled.plan.as_ref().ok()?;
    Some(plan.vectorized.vprog.inst_mix().flexvec_summary())
}
