//! `serve_load` — load generator for the flexvec-serve daemon.
//!
//! Starts an in-process daemon on an ephemeral port, drives it over
//! real TCP from a pool of client threads, and reports p50/p95/p99
//! latency plus sustained req/s for three traffic shapes:
//!
//! * **repeat** — the same small kernel set over and over: every
//!   request after the warmup is a compile-cache hit;
//! * **one-shot** — every request is a distinct kernel: every request
//!   pays the full analyze→vectorize→bytecode-compile pipeline;
//! * **run** — end-to-end execute requests (scalar baseline + vector
//!   + verification) for execution-latency percentiles;
//! * **width sweep** — the run traffic repeated at every supported
//!   vector length (`"vl": 8/16/32/64` on the wire), reporting a
//!   per-width throughput table off one shared compile-cache set.
//!
//! The headline number is the repeat/one-shot throughput ratio: the
//! service exists so that repeat-kernel traffic skips compilation, and
//! this driver fails (exit 1) if that ratio drops below 5× — both
//! shapes travel the same wire and queue, so the ratio isolates the
//! cache.
//!
//! A fourth phase demonstrates tiered execution end to end: one
//! straight-line-heavy kernel is submitted with the engine omitted
//! (`auto`), so the daemon's tier policy walks it cold→tree,
//! warm→bytecode, hot→native across successive requests. The final hot
//! request's `chunks_per_sec` (measured by the daemon around its own
//! exec loop, so the wire cancels out) is compared against a forced
//! `"engine":"compiled"` bench of the same kernel, and on x86-64 hosts
//! the run fails unless the promoted native tier beats the bytecode
//! tier by a measurable margin.
//!
//! Four further regression-failing scenarios cover the scale-out and
//! adaptive layers:
//!
//! * `--scenario warm-restart` — compiles a kernel set against a
//!   `--cache-dir`, restarts the daemon, and requires the *first*
//!   repeat-kernel request after the restart to be a disk-warm cache
//!   hit (no recompilation); reports restart-to-first-response time.
//! * `--scenario cluster` — drives skewed hot-key traffic at a 3-node
//!   consistent-hash ring and fails unless aggregate throughput beats
//!   the single-node baseline by ≥ 2.5× with bounded p99, and the
//!   reactor holds `--idle-conns` (default 5000) idle connections
//!   without spawning per-connection threads.
//! * `--scenario autotune` — a mixed trace over three kernel families
//!   with conflicting best specs (RTM-only, fault-tail, store-heavy)
//!   against every fixed `(spec, tile)` in a sweep grid and against an
//!   autotuned daemon; fails unless the autotuner beats *every* fixed
//!   configuration on aggregate req/s, and unless explicit `--spec` /
//!   `--engine` pins demonstrably bypass it.
//! * `--scenario replica-warmup` — warms a 3-node ring, joins a fourth
//!   node, and fails unless the joiner serves its owned working set
//!   with zero recompiles (snapshots arrive via anti-entropy sync and
//!   lazy peer pulls) and reaches steady-state p50 ≥ 3× faster than a
//!   cold join that compiles the same set on first touch.
//!
//! ```text
//! serve_load [--scenario warm-restart|cluster|autotune|replica-warmup]
//!            [--clients N] [--requests N] [--kernels K] [--workers N]
//!            [--idle-conns N] [--warmup N] [--json]
//! ```

use std::time::{Duration, Instant};

use flexvec_bench::flags::{json_f64, CommonFlags, ExtraFlag};
use flexvec_serve::{start, Client, Json, ServerConfig};

/// Minimum repeat/one-shot throughput ratio the run must demonstrate.
const MIN_SPEEDUP: f64 = 5.0;

/// Minimum native-over-bytecode throughput ratio the promoted hot
/// kernel must demonstrate on hosts with the x86-64 back end. The
/// in-process bar (vm_throughput) is 1.5×; over the daemon we only
/// require a measurable margin, leaving headroom for scheduler noise.
const MIN_TIER_SPEEDUP: f64 = 1.05;

/// How many conditional-update patterns each generated kernel carries.
/// Sized so the analyze→vectorize→bytecode-compile pipeline (what the
/// cache amortizes) dominates one TCP round-trip, as it does for
/// production-sized kernels.
const PATTERNS: u64 = 12;

fn kernel_source(n: u64) -> String {
    kernel_source_shaped(n, PATTERNS, 64)
}

/// Distinct constants give distinct ASTs (and so distinct cache keys);
/// the shape is the paper's conditional-update minimum, repeated over
/// `patterns` independent arrays with an `iters`-iteration loop —
/// `patterns` scales the compile cost, `iters` the execution cost.
fn kernel_source_shaped(n: u64, patterns: u64, iters: u64) -> String {
    let mut src = format!("kernel k{n};\nvar i = 0;\n");
    for p in 0..patterns {
        src.push_str(&format!("var b{p} = 9223372036854775807;\n"));
    }
    for p in 0..patterns {
        src.push_str(&format!("array a{p}[{iters}] = seed {};\n", n + p + 1));
    }
    for p in 0..patterns {
        src.push_str(&format!("live_out b{p};\n"));
    }
    src.push_str(&format!("for (i = 0; i < {iters}; i++) {{\n"));
    for p in 0..patterns {
        src.push_str(&format!(
            "  if (a{p}[i] + {n} < b{p}) {{\n    b{p} = a{p}[i] + {n};\n  }}\n"
        ));
    }
    src.push_str("}\n");
    src
}

/// The hot kernel for the tier-promotion phase: a long unguarded
/// arithmetic chain, the shape the native tier compiles (almost)
/// entirely to inline machine code. Same family as the `straightline`
/// kernel in the `vm_throughput` bench, expressed in `.fv`.
const HOT_KERNEL: &str = "\
kernel hotline;
var i = 0;
var acc = 0;
var t = 0;
array data[512] = seed 7;
array out[512] = seed 1;
live_out acc;
for (i = 0; i < 2048; i++) {
  t = data[i & 511] * 3 + i - 7;
  t = (t + t * 5) & 65535;
  t = t + t * 2 - i;
  t = t & 65535;
  if (t > acc) {
    acc = t;
  }
  out[i & 511] = t;
}
";

/// What the tier-promotion phase observed.
struct TierReport {
    /// Engine labels of the auto requests, in order (expected to walk
    /// tree-walking → compiled → native on x86-64 hosts).
    labels: Vec<String>,
    /// Daemon-measured chunks/s of the final (hot) auto request.
    hot_cps: f64,
    /// Daemon-measured chunks/s of the forced-bytecode baseline.
    bytecode_cps: f64,
    /// `flexvec_tier_promotions_total` after the walk.
    promotions: u64,
    /// Whether the daemon's host has the native back end.
    native_supported: bool,
}

impl TierReport {
    fn ratio(&self) -> f64 {
        self.hot_cps / self.bytecode_cps.max(1e-9)
    }
}

/// Walks one kernel through the daemon's tier policy and measures the
/// promoted hot tier against a forced-bytecode baseline.
fn drive_tiers(addr: &str) -> TierReport {
    let mut client = Client::connect(addr).expect("connect tier client");
    let mut bench = |engine: Option<&str>, invocations: u64| -> Json {
        let mut fields = vec![
            ("op", Json::from("bench")),
            ("source", Json::from(HOT_KERNEL)),
            ("invocations", Json::from(invocations)),
        ];
        if let Some(engine) = engine {
            fields.push(("engine", Json::from(engine)));
        }
        let response = client
            .request(&Json::obj(fields))
            .expect("tier bench request");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "tier bench failed: {response}"
        );
        response
    };

    // The policy promotes on cumulative run count (warm at 2, hot at
    // 16), and each request counts `invocations` runs. Three auto
    // requests therefore land on three different tiers: 0 runs seen →
    // tree, 2 → bytecode, 16 → native (on hosts that have it).
    let label = |r: &Json| {
        r.get("engine")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned()
    };
    let cold = bench(None, 2);
    let warm = bench(None, 14);
    let hot = bench(None, 48);
    let hot_cps = hot
        .get("chunks_per_sec")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let labels = vec![label(&cold), label(&warm), label(&hot)];

    // Forced-bytecode baseline for the same kernel, same wire, same
    // daemon. Explicit engines bypass the tier policy, so this does
    // not disturb the walk above.
    let baseline = bench(Some("compiled"), 48);
    let bytecode_cps = baseline
        .get("chunks_per_sec")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);

    let stats = client
        .request(&Json::obj([("op", Json::from("stats"))]))
        .expect("stats request");
    TierReport {
        labels,
        hot_cps,
        bytecode_cps,
        promotions: stats
            .get("tier_promotions_total")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        native_supported: stats
            .get("native_supported")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    }
}

struct Phase {
    latencies: Vec<Duration>,
    wall: Duration,
    failures: u64,
}

impl Phase {
    fn req_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.latencies.len() as f64 / secs
        } else {
            0.0
        }
    }

    fn percentile(&self, p: f64) -> Duration {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }
}

/// Fires `total` requests at the daemon from `clients` threads; the
/// request body for global index `i` comes from `make`.
fn drive(addr: &str, clients: usize, total: u64, make: impl Fn(u64) -> Json + Sync) -> Phase {
    drive_multi(std::slice::from_ref(&addr.to_owned()), clients, total, make)
}

/// [`drive`] against a set of daemons: client `c` connects to
/// `addrs[c % addrs.len()]`, so traffic spreads evenly over a cluster.
fn drive_multi(
    addrs: &[String],
    clients: usize,
    total: u64,
    make: impl Fn(u64) -> Json + Sync,
) -> Phase {
    let per_client = total.div_ceil(clients as u64);
    let started = Instant::now();
    let results: Vec<(Vec<Duration>, u64)> = std::thread::scope(|scope| {
        let make = &make;
        let handles: Vec<_> = (0..clients as u64)
            .map(|c| {
                let addr = &addrs[(c as usize) % addrs.len()];
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect load client");
                    let mut latencies = Vec::new();
                    let mut failures = 0u64;
                    let lo = c * per_client;
                    let hi = (lo + per_client).min(total);
                    for i in lo..hi {
                        let request = make(i);
                        let t0 = Instant::now();
                        let response = client.request(&request).expect("request");
                        latencies.push(t0.elapsed());
                        if response.get("ok").and_then(Json::as_bool) != Some(true) {
                            failures += 1;
                        }
                    }
                    (latencies, failures)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    let mut latencies = Vec::new();
    let mut failures = 0;
    for (l, f) in results {
        latencies.extend(l);
        failures += f;
    }
    Phase {
        latencies,
        wall,
        failures,
    }
}

fn compile_request(source: String) -> Json {
    Json::obj([
        ("op", Json::from("compile")),
        ("source", Json::from(source)),
    ])
}

fn main() {
    let flags = CommonFlags::parse(
        "serve_load",
        "serve_load: drive a flexvec-serve daemon and measure latency/throughput",
        &[
            ExtraFlag {
                name: "clients",
                help: "concurrent client connections (default 4)",
            },
            ExtraFlag {
                name: "requests",
                help: "requests per measured phase (default 1000)",
            },
            ExtraFlag {
                name: "kernels",
                help: "distinct kernels in the repeat set (default 8)",
            },
            ExtraFlag {
                name: "workers",
                help: "daemon worker pool size (default 4)",
            },
            ExtraFlag {
                name: "run-requests",
                help: "execute requests for the run-latency phase (default 60)",
            },
            ExtraFlag {
                name: "scenario",
                help: "alternate scenario: warm-restart | cluster | autotune | \
                       replica-warmup (default: main load run)",
            },
            ExtraFlag {
                name: "idle-conns",
                help: "idle connections the cluster scenario parks on one node (default 5000)",
            },
            ExtraFlag {
                name: "warmup",
                help: "autotune scenario: warmup requests per kernel family (default 20)",
            },
        ],
    );
    match flags.str_flag("scenario", "").as_str() {
        "" => {}
        "warm-restart" => std::process::exit(scenario_warm_restart(&flags)),
        "cluster" => std::process::exit(scenario_cluster(&flags)),
        "autotune" => std::process::exit(scenario_autotune(&flags)),
        "replica-warmup" => std::process::exit(scenario_replica_warmup(&flags)),
        other => {
            eprintln!(
                "serve_load: unknown scenario `{other}` \
                 (expected warm-restart, cluster, autotune, or replica-warmup)"
            );
            std::process::exit(2);
        }
    }
    let clients = flags.u64_flag("clients", 4).max(1) as usize;
    let requests = flags.u64_flag("requests", 1000).max(1);
    let kernels = flags.u64_flag("kernels", 8).max(1);
    let workers = flags.u64_flag("workers", 4).max(1) as usize;
    let run_requests = flags.u64_flag("run-requests", 60).max(1);

    let config = ServerConfig {
        workers,
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        ..base_config()
    };
    let handle = start(config).expect("start daemon");
    let addr = handle.addr.to_string();

    // Warmup: register + compile the repeat set once, collecting the
    // content hashes the daemon assigns.
    let mut warm_client = Client::connect(&addr).expect("connect warmup client");
    let hashes: Vec<String> = (0..kernels)
        .map(|i| {
            let response = warm_client
                .request(&compile_request(kernel_source(i)))
                .expect("warmup request");
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "warmup compile failed: {response}"
            );
            response
                .get("hash")
                .and_then(Json::as_str)
                .expect("warmup response carries hash")
                .to_owned()
        })
        .collect();
    drop(warm_client);

    // Repeat-kernel traffic: requests reference the registered hash —
    // no source on the wire, no parse, pure cache hits.
    let hashes_ref = &hashes;
    let repeat = drive(&addr, clients, requests, |i| {
        Json::obj([
            ("op", Json::from("compile")),
            (
                "hash",
                Json::from(hashes_ref[(i % kernels) as usize].as_str()),
            ),
        ])
    });

    // One-shot traffic: every request is a new kernel (ids offset past
    // the repeat set), so every request compiles.
    let oneshot = drive(&addr, clients, requests, |i| {
        compile_request(kernel_source(1_000_000 + i))
    });

    // Execute traffic, for end-to-end run latency percentiles.
    let run = drive(&addr, clients, run_requests, |i| {
        Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(i % kernels))),
        ])
    });

    // Width sweep: the same repeat-set run traffic at every supported
    // vector length, each request carrying an explicit `vl`. The
    // compile cache is width-independent, so every width after the
    // first rides the same cached plans; what changes is chunk count
    // per invocation (narrower vl → more chunks → more dispatch).
    let widths: Vec<(usize, Phase)> = flexvec_isa::SUPPORTED_VLENS
        .iter()
        .map(|&vl| {
            let phase = drive(&addr, clients, run_requests, |i| {
                Json::obj([
                    ("op", Json::from("run")),
                    ("source", Json::from(kernel_source(i % kernels))),
                    ("vl", Json::from(vl as u64)),
                ])
            });
            (vl, phase)
        })
        .collect();

    // Tier promotion: one hot kernel walks cold→tree, warm→bytecode,
    // hot→native under the auto policy, then races the promoted tier
    // against a forced-bytecode baseline.
    let tiers = drive_tiers(&addr);

    let metrics_text = handle
        .metrics_addr
        .map(|a| flexvec_serve::fetch_metrics(&a.to_string()).expect("scrape /metrics"));
    let stats = handle.engine().cache().stats();
    let speedup = repeat.req_per_sec() / oneshot.req_per_sec().max(1e-9);
    let width_failures: u64 = widths.iter().map(|(_, p)| p.failures).sum();
    let failures = repeat.failures + oneshot.failures + run.failures + width_failures;
    handle.shutdown();

    if flags.json {
        let width_rps = widths
            .iter()
            .map(|(vl, p)| format!("\"{vl}\": {}", json_f64(p.req_per_sec())))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "{{\n  \"clients\": {clients},\n  \"requests\": {requests},\n  \"kernels\": {kernels},\n  \
             \"repeat_rps\": {},\n  \"oneshot_rps\": {},\n  \"speedup\": {},\n  \
             \"repeat_p50_us\": {},\n  \"repeat_p95_us\": {},\n  \"repeat_p99_us\": {},\n  \
             \"run_p50_us\": {},\n  \"run_p95_us\": {},\n  \"run_p99_us\": {},\n  \
             \"width_rps\": {{{width_rps}}},\n  \
             \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
             \"tier_walk\": [{}],\n  \"tier_bytecode_cps\": {},\n  \"tier_hot_cps\": {},\n  \
             \"tier_ratio\": {},\n  \"tier_promotions\": {},\n  \
             \"native_supported\": {},\n  \"failures\": {failures}\n}}",
            json_f64(repeat.req_per_sec()),
            json_f64(oneshot.req_per_sec()),
            json_f64(speedup),
            repeat.percentile(0.50).as_micros(),
            repeat.percentile(0.95).as_micros(),
            repeat.percentile(0.99).as_micros(),
            run.percentile(0.50).as_micros(),
            run.percentile(0.95).as_micros(),
            run.percentile(0.99).as_micros(),
            stats.hits,
            stats.misses,
            tiers
                .labels
                .iter()
                .map(|l| format!("\"{l}\""))
                .collect::<Vec<_>>()
                .join(", "),
            json_f64(tiers.bytecode_cps),
            json_f64(tiers.hot_cps),
            json_f64(tiers.ratio()),
            tiers.promotions,
            tiers.native_supported,
        );
    } else {
        println!(
            "serve_load: {clients} clients x {requests} requests, {kernels}-kernel repeat set, {workers} workers"
        );
        println!(
            "  repeat (cache-hit):  {:>9.0} req/s   p50 {:>6?} p95 {:>6?} p99 {:>6?}",
            repeat.req_per_sec(),
            repeat.percentile(0.50),
            repeat.percentile(0.95),
            repeat.percentile(0.99),
        );
        println!(
            "  one-shot (compile):  {:>9.0} req/s   p50 {:>6?} p95 {:>6?} p99 {:>6?}",
            oneshot.req_per_sec(),
            oneshot.percentile(0.50),
            oneshot.percentile(0.95),
            oneshot.percentile(0.99),
        );
        println!(
            "  run (exec+verify):   {:>9.0} req/s   p50 {:>6?} p95 {:>6?} p99 {:>6?}",
            run.req_per_sec(),
            run.percentile(0.50),
            run.percentile(0.95),
            run.percentile(0.99),
        );
        for (vl, phase) in &widths {
            println!(
                "  run at vl {vl:>2}:        {:>9.0} req/s   p50 {:>6?} p95 {:>6?} p99 {:>6?}",
                phase.req_per_sec(),
                phase.percentile(0.50),
                phase.percentile(0.95),
                phase.percentile(0.99),
            );
        }
        println!(
            "  cache: {} hits / {} misses; repeat-vs-one-shot speedup: {speedup:.1}x",
            stats.hits, stats.misses
        );
        println!(
            "  tiers (hot kernel):  {}   bytecode {:.3e} -> hot {:.3e} chunks/s \
             ({:.2}x; {} promotion(s))",
            tiers.labels.join(" -> "),
            tiers.bytecode_cps,
            tiers.hot_cps,
            tiers.ratio(),
            tiers.promotions,
        );
        if let Some(text) = &metrics_text {
            let hits = text
                .lines()
                .find(|l| l.starts_with("flexvec_cache_hits_total"))
                .unwrap_or("flexvec_cache_hits_total <missing>");
            let promotions = text
                .lines()
                .find(|l| l.starts_with("flexvec_tier_promotions_total"))
                .unwrap_or("flexvec_tier_promotions_total <missing>");
            println!("  /metrics scrape ok ({hits}; {promotions})");
        }
    }

    if failures > 0 {
        eprintln!("serve_load: {failures} request(s) failed");
        std::process::exit(1);
    }
    if speedup < MIN_SPEEDUP {
        eprintln!(
            "serve_load: repeat-kernel speedup {speedup:.1}x is below the required {MIN_SPEEDUP:.0}x"
        );
        std::process::exit(1);
    }
    if tiers.promotions == 0 {
        eprintln!("serve_load: the tier policy never promoted the hot kernel");
        std::process::exit(1);
    }
    if tiers.native_supported {
        if tiers.labels.last().map(String::as_str) != Some("native") {
            eprintln!(
                "serve_load: hot kernel was not promoted to the native tier \
                 (walk: {})",
                tiers.labels.join(" -> ")
            );
            std::process::exit(1);
        }
        if tiers.ratio() < MIN_TIER_SPEEDUP {
            eprintln!(
                "serve_load: native tier {:.2}x over bytecode is below the required \
                 {MIN_TIER_SPEEDUP:.2}x",
                tiers.ratio()
            );
            std::process::exit(1);
        }
    }
}

/// The shared single-node daemon shape: ephemeral port, no metrics
/// listener, unbounded in-memory cache, standalone.
fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        metrics_addr: None,
        workers: 4,
        queue_capacity: 256,
        cache_capacity: 0,
        default_deadline_ms: None,
        cache_dir: None,
        cache_dir_max_bytes: None,
        cluster: Vec::new(),
        advertise: None,
        gossip_interval_ms: 1000,
        gossip_gc_rounds: 10,
        accept_mode: flexvec_serve::AcceptMode::Auto,
    }
}

/// A scratch directory under the system temp dir, unique per process.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-load-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Minimum cluster-over-single-node aggregate throughput the skewed
/// hot-key scenario must demonstrate.
const MIN_CLUSTER_SPEEDUP: f64 = 2.5;

/// `--scenario warm-restart`: the first repeat-kernel request after a
/// restart with `--cache-dir` must be a disk-warm cache hit, with no
/// recompilation. Reports restart-to-first-response time. Exit 1 on
/// regression.
fn scenario_warm_restart(flags: &CommonFlags) -> i32 {
    let kernels = flags.u64_flag("kernels", 8).max(1);
    let dir = scratch_dir("warm");
    let cache_dir = Some(dir.to_string_lossy().into_owned());

    // First lifetime: compile the kernel set, snapshotting each.
    let handle = start(ServerConfig {
        cache_dir: cache_dir.clone(),
        ..base_config()
    })
    .expect("start daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");
    let hashes: Vec<String> = (0..kernels)
        .map(|n| {
            let response = client
                .request(&compile_request(kernel_source(n)))
                .expect("seed compile");
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "seed compile failed: {response}"
            );
            response
                .get("hash")
                .and_then(Json::as_str)
                .expect("hash")
                .to_owned()
        })
        .collect();
    drop(client);
    handle.shutdown();

    // Restart against the same cache dir and time the path from
    // "process decides to start" to "first repeat request answered".
    let t0 = Instant::now();
    let handle = start(ServerConfig {
        cache_dir,
        ..base_config()
    })
    .expect("restart daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("reconnect");
    let first = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("hash", Json::from(hashes[0].as_str())),
        ]))
        .expect("first request after restart");
    let restart_to_first = t0.elapsed();

    let mut failed = false;
    if first.get("ok").and_then(Json::as_bool) != Some(true) {
        eprintln!("serve_load warm-restart: first request failed: {first}");
        failed = true;
    }
    if first.get("cache_hit").and_then(Json::as_bool) != Some(true) {
        eprintln!(
            "serve_load warm-restart: REGRESSION — first repeat-kernel request \
             after restart was not a cache hit: {first}"
        );
        failed = true;
    }
    // The rest of the set must also come back disk-warm.
    for hash in &hashes[1..] {
        let response = client
            .request(&Json::obj([
                ("op", Json::from("run")),
                ("hash", Json::from(hash.as_str())),
            ]))
            .expect("repeat request");
        if response.get("cache_hit").and_then(Json::as_bool) != Some(true) {
            eprintln!("serve_load warm-restart: kernel {hash} missed after restart: {response}");
            failed = true;
        }
    }
    let compiles = handle.engine().cache().compiles();
    if compiles != 0 {
        eprintln!(
            "serve_load warm-restart: REGRESSION — {compiles} recompilation(s) \
             for kernels that have valid snapshots"
        );
        failed = true;
    }

    if flags.json {
        println!(
            "{{\"scenario\": \"warm-restart\", \"kernels\": {kernels}, \
             \"restart_to_first_response_us\": {}, \"recompiles\": {compiles}, \
             \"ok\": {}}}",
            restart_to_first.as_micros(),
            !failed
        );
    } else {
        println!(
            "serve_load warm-restart: {kernels} kernels disk-warm after restart; \
             restart-to-first-response {restart_to_first:.2?}, {compiles} recompiles"
        );
    }
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    i32::from(failed)
}

/// The skewed request mix for the cluster scenario: 80% of requests
/// hit one hot kernel, the rest spread over a small cold set — the
/// worst case for naive ownership routing, where every non-owner
/// would bottleneck on the hot key's one owner.
fn skewed_request(i: u64) -> Json {
    let n = if i % 10 < 8 { 0 } else { 1 + (i % 8) };
    Json::obj([
        ("op", Json::from("run")),
        ("source", Json::from(kernel_source(n))),
        ("invocations", Json::from(60u64)),
    ])
}

/// Threads currently in this process, from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn process_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// `--scenario cluster`: 3-node ring vs single node under skewed
/// hot-key traffic, plus the idle-connection capacity check. Exit 1 on
/// regression.
fn scenario_cluster(flags: &CommonFlags) -> i32 {
    let clients = flags.u64_flag("clients", 12).max(3) as usize;
    let requests = flags.u64_flag("requests", 1500).max(clients as u64);
    let workers = flags.u64_flag("workers", 2).max(1) as usize;
    let idle_conns = flags.u64_flag("idle-conns", 5000);

    // Single-node baseline: same traffic, same total client count.
    let single = start(ServerConfig {
        workers,
        ..base_config()
    })
    .expect("start single node");
    let baseline = drive(&single.addr.to_string(), clients, requests, skewed_request);
    single.shutdown();

    // Three-node ring. Ports are reserved then released for the
    // daemons to rebind (tiny reuse race — acceptable here).
    let reserved: Vec<std::net::TcpListener> = (0..3)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    let members: Vec<String> = reserved
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect();
    drop(reserved);
    let handles: Vec<_> = members
        .iter()
        .map(|addr| {
            start(ServerConfig {
                addr: addr.clone(),
                workers,
                cluster: members.clone(),
                advertise: Some(addr.clone()),
                ..base_config()
            })
            .expect("start cluster node")
        })
        .collect();

    let cluster = drive_multi(&members, clients, requests, skewed_request);

    // Park idle connections on node 0: the reactor must hold them all
    // without growing the process thread count. Only meaningful where
    // the reactor exists; other hosts run thread-per-connection.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    let (idle_held, idle_ok) = {
        let mut idle_ok = true;
        let threads_before = process_threads();
        let idle: Vec<std::net::TcpStream> = (0..idle_conns)
            .filter_map(|_| std::net::TcpStream::connect(&members[0]).ok())
            .collect();
        let idle_held = idle.len() as u64;
        if idle_held < idle_conns {
            eprintln!(
                "serve_load cluster: REGRESSION — only {idle_held}/{idle_conns} \
                 idle connections accepted"
            );
            idle_ok = false;
        }
        // The reactor accepts asynchronously; give it a moment, then
        // prove a live request still flows past the parked herd.
        let mut probe = Client::connect(&members[0]).expect("probe connect");
        let response = probe
            .request(&Json::obj([("op", Json::from("stats"))]))
            .expect("stats with idle herd");
        let open = response
            .get("open_connections")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if open < idle_held {
            eprintln!(
                "serve_load cluster: node 0 reports {open} open connections, \
                 expected at least the {idle_held} parked ones"
            );
            idle_ok = false;
        }
        if let (Some(before), Some(after)) = (threads_before, process_threads()) {
            // Thread-per-connection would add ~one thread per parked
            // socket; the reactor must add none.
            if after > before + 8 {
                eprintln!(
                    "serve_load cluster: REGRESSION — thread count grew {before} -> {after} \
                     while parking {idle_held} idle connections"
                );
                idle_ok = false;
            }
        }
        drop(idle);
        (idle_held, idle_ok)
    };
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    let (idle_held, idle_ok) = {
        let _ = idle_conns;
        eprintln!("serve_load cluster: no reactor on this target; idle-connection check skipped");
        (0u64, true)
    };

    let forwards: u64 = handles
        .iter()
        .filter_map(|h| h.cluster())
        .map(|c| c.counters.forwards.get())
        .sum();
    let adoptions: u64 = handles
        .iter()
        .filter_map(|h| h.cluster())
        .map(|c| c.counters.adoptions.get())
        .sum();
    for handle in handles {
        handle.shutdown();
    }

    let speedup = cluster.req_per_sec() / baseline.req_per_sec().max(1e-9);
    let p99_bound = (baseline.percentile(0.99) * 10).max(Duration::from_millis(250));
    let p99 = cluster.percentile(0.99);
    let mut failed = !idle_ok;
    if cluster.failures + baseline.failures > 0 {
        eprintln!(
            "serve_load cluster: {} request(s) failed",
            cluster.failures + baseline.failures
        );
        failed = true;
    }
    // Aggregate scaling needs actual parallel hardware: three nodes on
    // a starved container share one core and cannot beat one node.
    // The assertion stays regression-failing wherever the cluster's
    // worker pools can genuinely run side by side.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if cores >= workers * 3 {
        if speedup < MIN_CLUSTER_SPEEDUP {
            eprintln!(
                "serve_load cluster: REGRESSION — 3-node aggregate is only {speedup:.2}x \
                 the single node (required {MIN_CLUSTER_SPEEDUP:.1}x)"
            );
            failed = true;
        }
        if p99 > p99_bound {
            eprintln!(
                "serve_load cluster: REGRESSION — p99 {p99:.2?} exceeds the bound {p99_bound:.2?}"
            );
            failed = true;
        }
    } else {
        eprintln!(
            "serve_load cluster: {cores} core(s) cannot host 3x{workers} workers; \
             measured {speedup:.2}x / p99 {p99:.2?} are informational, scaling not asserted"
        );
    }

    if flags.json {
        println!(
            "{{\"scenario\": \"cluster\", \"clients\": {clients}, \"requests\": {requests}, \
             \"single_rps\": {}, \"cluster_rps\": {}, \"speedup\": {}, \
             \"cluster_p99_us\": {}, \"forwards\": {forwards}, \"adoptions\": {adoptions}, \
             \"idle_conns_held\": {idle_held}, \"ok\": {}}}",
            json_f64(baseline.req_per_sec()),
            json_f64(cluster.req_per_sec()),
            json_f64(speedup),
            p99.as_micros(),
            !failed
        );
    } else {
        println!(
            "serve_load cluster: single {:.0} req/s -> 3-node {:.0} req/s ({speedup:.2}x); \
             p99 {p99:.2?} (bound {p99_bound:.2?})",
            baseline.req_per_sec(),
            cluster.req_per_sec(),
        );
        println!(
            "  ring: {forwards} forward(s), {adoptions} hot-key adoption(s); \
             {idle_held} idle connection(s) parked on node 0"
        );
    }
    i32::from(failed)
}

/// Minimum cold-join-over-warm-join time-to-steady-state ratio the
/// replica-warmup scenario must demonstrate: a node joining a warmed
/// ring (owned slice pre-pulled by anti-entropy sync) must reach
/// steady-state p50 at least this much faster than a cold node that
/// compiles the same working set on first touch.
const MIN_WARMUP_SPEEDUP: f64 = 3.0;

/// Serves `sources` round-robin at `addr` until one full sweep comes
/// back entirely warm (every response a cache hit — memory, disk
/// restore, or peer pull), then runs one more sweep for the
/// steady-state p50. Returns `(time from first request to the end of
/// the first all-warm sweep, steady-state p50, sweeps to steady)`.
/// The engine is pinned to `compiled` so the tier policy's slow
/// first-run tree walk doesn't mask the compile-vs-pull difference
/// the scenario exists to measure.
fn time_to_steady(addr: &str, sources: &[String]) -> (Duration, Duration, u64) {
    let mut client = Client::connect(addr).expect("connect joiner");
    let t0 = Instant::now();
    let mut sweeps = 0u64;
    loop {
        sweeps += 1;
        assert!(sweeps <= 16, "node never reached a fully-warm sweep");
        let mut all_warm = true;
        for source in sources {
            let response = client
                .request(&Json::obj([
                    ("op", Json::from("run")),
                    ("source", Json::from(source.as_str())),
                    ("engine", Json::from("compiled")),
                ]))
                .expect("sweep request");
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "sweep request failed: {response}"
            );
            all_warm &= response.get("cache_hit").and_then(Json::as_bool) == Some(true);
        }
        if all_warm {
            break;
        }
    }
    let steady = t0.elapsed();
    let mut latencies: Vec<Duration> = sources
        .iter()
        .map(|source| {
            let t = Instant::now();
            client
                .request(&Json::obj([
                    ("op", Json::from("run")),
                    ("source", Json::from(source.as_str())),
                    ("engine", Json::from("compiled")),
                ]))
                .expect("steady sweep");
            t.elapsed()
        })
        .collect();
    latencies.sort();
    let p50 = latencies[latencies.len() / 2];
    (steady, p50, sweeps)
}

/// `--scenario replica-warmup`: a node joining a warmed 3-node ring
/// must serve its owned working set with zero recompiles (anti-entropy
/// sync plus lazy pulls) and reach steady-state p50 at least
/// [`MIN_WARMUP_SPEEDUP`]× faster than the cold baseline — the same
/// daemon shape with no ring and no snapshots to pull, i.e. exactly
/// what a joining replica was before replication: every owned kernel
/// compiles on first touch. Both joins are timed from serving start
/// (a replica is not in the rotation until it reports ready; the warm
/// node's anti-entropy sync runs before that and is reported
/// separately). Exit 1 on regression.
fn scenario_replica_warmup(flags: &CommonFlags) -> i32 {
    let kernels = flags.u64_flag("kernels", 32).max(8);
    let workers = flags.u64_flag("workers", 2).max(1) as usize;

    // Reserve the full 4-member ring up front: three warm nodes plus
    // the joiner, which stays down while the ring warms (forwards to
    // it degrade to local compilation via the circuit breaker, so
    // every kernel lands compiled and snapshotted on a live node).
    let reserved: Vec<std::net::TcpListener> = (0..4)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    let members: Vec<String> = reserved
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect();
    drop(reserved);
    let joiner = members[3].clone();
    let dirs: Vec<std::path::PathBuf> = (0..4)
        .map(|i| scratch_dir(&format!("replica-{i}")))
        .collect();
    let node_config = |i: usize| ServerConfig {
        addr: members[i].clone(),
        workers,
        cache_dir: Some(dirs[i].to_string_lossy().into_owned()),
        cluster: members.clone(),
        advertise: Some(members[i].clone()),
        gossip_interval_ms: 50,
        ..base_config()
    };

    // Cold baseline first (fully independent: standalone, no cache).
    // Pick the joiner's owned slice off the ring the servers will
    // build; generate extra kernels if the hash slice came up short.
    let ring = flexvec_serve::Cluster::new(members.clone(), joiner.clone()).expect("build ring");
    let mut owned_sources = Vec::new();
    let mut warm_set = Vec::new();
    let mut n = 0;
    while n < kernels || owned_sources.len() < 8 {
        assert!(n < kernels + 512, "ring never granted the joiner 8 keys");
        // Compile-heavy, execution-light kernels (big AST, 8-iteration
        // loops): the join cost is dominated by what replication
        // actually removes — compilation — not by running the kernels.
        let source = kernel_source_shaped(n, 48, 8);
        let parsed = flexvec_front::parse_str("<warmup>", &source).expect("kernel parses");
        if ring.owner_of(flexvec::program_hash(&parsed.program)) == joiner {
            owned_sources.push(source.clone());
        }
        warm_set.push(source);
        n += 1;
    }
    // Two independent cold trials, best taken: the numbers feed a
    // ratio gate, and a single scheduler stall during one short sweep
    // must not decide it. The same damping is applied to the warm
    // side below.
    let mut cold_steady = Duration::MAX;
    let mut cold_p50 = Duration::MAX;
    let mut cold_sweeps = 0;
    let mut cold_compiles = 0;
    for _ in 0..2 {
        let cold = start(ServerConfig {
            cache_dir: None,
            ..base_config()
        })
        .expect("start cold baseline");
        let (steady, p50, sweeps) = time_to_steady(&cold.addr.to_string(), &owned_sources);
        if steady < cold_steady {
            (cold_steady, cold_p50, cold_sweeps) = (steady, p50, sweeps);
        }
        cold_compiles = cold.engine().cache().compiles();
        cold.shutdown();
    }

    // Warm the 3-node ring with the whole working set.
    let warm_nodes: Vec<_> = (0..3)
        .map(|i| start(node_config(i)).expect("start warm node"))
        .collect();
    let mut clients: Vec<Client> = members[..3]
        .iter()
        .map(|addr| Client::connect(addr).expect("connect warm node"))
        .collect();
    for (i, source) in warm_set.iter().enumerate() {
        let response = clients[i % 3]
            .request(&compile_request(source.clone()))
            .expect("warm ring");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "warming the ring failed: {response}"
        );
    }
    let warm_node_compiles_before: u64 = warm_nodes
        .iter()
        .map(|h| h.engine().cache().compiles())
        .sum();

    // Join the fourth node and wait for anti-entropy sync: the node is
    // not "in the rotation" until its owned slice is disk-and-memory
    // warm, which is the protocol's whole point.
    let join_started = Instant::now();
    let warm = start(node_config(3)).expect("start joiner");
    let repl = warm.replication().expect("replication on the joiner");
    let sync_deadline = Instant::now() + Duration::from_secs(30);
    while !repl.synced() {
        assert!(
            Instant::now() < sync_deadline,
            "anti-entropy sync never finished"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    let sync_time = join_started.elapsed();
    // First measurement carries the semantic check (one sweep to
    // steady); for a synced node every sweep is an all-hit sweep, so
    // two re-measurements damp scheduler stalls the same way the cold
    // trials do.
    let (mut warm_steady, mut warm_p50, warm_sweeps) = time_to_steady(&joiner, &owned_sources);
    for _ in 0..2 {
        let (steady, p50, _) = time_to_steady(&joiner, &owned_sources);
        if steady < warm_steady {
            (warm_steady, warm_p50) = (steady, p50);
        }
    }

    let warm_compiles = warm.engine().cache().compiles();
    let store = warm.engine().snapshots().expect("joiner store");
    let pulled = store
        .counters
        .pulled
        .load(std::sync::atomic::Ordering::Relaxed);
    let warm_node_compiles_after: u64 = warm_nodes
        .iter()
        .map(|h| h.engine().cache().compiles())
        .sum();

    let ratio = cold_steady.as_secs_f64() / warm_steady.as_secs_f64().max(1e-9);
    let mut failed = false;
    if warm_compiles != 0 {
        eprintln!(
            "serve_load replica-warmup: REGRESSION — the joining node compiled \
             {warm_compiles} kernel(s) that warm peers hold snapshots for"
        );
        failed = true;
    }
    if pulled < owned_sources.len() as u64 {
        eprintln!(
            "serve_load replica-warmup: REGRESSION — only {pulled} snapshot pull(s) \
             for {} owned kernels",
            owned_sources.len()
        );
        failed = true;
    }
    if warm_node_compiles_after != warm_node_compiles_before {
        eprintln!(
            "serve_load replica-warmup: REGRESSION — warm nodes recompiled during the \
             join ({warm_node_compiles_before} -> {warm_node_compiles_after}); \
             pulls must be served from their snapshot stores"
        );
        failed = true;
    }
    if ratio < MIN_WARMUP_SPEEDUP {
        eprintln!(
            "serve_load replica-warmup: REGRESSION — warm join reached steady state only \
             {ratio:.2}x faster than cold ({warm_steady:.2?} vs {cold_steady:.2?}, \
             required {MIN_WARMUP_SPEEDUP:.1}x)"
        );
        failed = true;
    }

    if flags.json {
        println!(
            "{{\"scenario\": \"replica-warmup\", \"kernels\": {}, \"owned\": {}, \
             \"cold_steady_us\": {}, \"warm_steady_us\": {}, \"warmup_speedup\": {}, \
             \"sync_us\": {}, \"cold_p50_us\": {}, \"warm_p50_us\": {}, \
             \"cold_sweeps\": {cold_sweeps}, \"warm_sweeps\": {warm_sweeps}, \
             \"cold_compiles\": {cold_compiles}, \"joiner_compiles\": {warm_compiles}, \
             \"snapshot_pulls\": {pulled}, \"ok\": {}}}",
            warm_set.len(),
            owned_sources.len(),
            cold_steady.as_micros(),
            warm_steady.as_micros(),
            json_f64(ratio),
            sync_time.as_micros(),
            cold_p50.as_micros(),
            warm_p50.as_micros(),
            !failed
        );
    } else {
        println!(
            "serve_load replica-warmup: cold join steady in {cold_steady:.2?} \
             ({cold_compiles} compiles), warm join steady in {warm_steady:.2?} \
             ({ratio:.2}x faster; sync {sync_time:.2?}, {pulled} pulls, \
             {warm_compiles} compiles) over {} owned kernels",
            owned_sources.len()
        );
        println!(
            "  steady p50: cold {cold_p50:.2?}, warm {warm_p50:.2?}; \
             warm-node compiles unchanged: {}",
            warm_node_compiles_after == warm_node_compiles_before
        );
    }

    drop(clients);
    warm.shutdown();
    for handle in warm_nodes {
        handle.shutdown();
    }
    for dir in dirs {
        let _ = std::fs::remove_dir_all(&dir);
    }
    i32::from(failed)
}

/// Minimum autotuned-over-best-fixed aggregate throughput ratio the
/// autotune scenario must demonstrate against *every* fixed
/// `(spec, tile)` configuration in [`AUTOTUNE_GRID`].
const MIN_AUTOTUNE_SPEEDUP: f64 = 1.1;

/// The fixed configurations the autotuned daemon has to beat. `"ff"`
/// pins first-faulting (the compiler's `Auto`); the rest pin RTM at a
/// fixed tile. No single entry is best for all three kernel families
/// below, which is the point: a per-kernel adaptive choice wins where
/// any uniform static choice loses somewhere.
const AUTOTUNE_GRID: [&str; 5] = ["ff", "rtm:16", "rtm:64", "rtm:256", "rtm:1024"];

/// Family A — RTM-only: a store between a speculative load and its
/// conditional update sits inside the VPL, so FF cannot vectorize this
/// shape (fallback would replay committed stores) and a pinned `ff`
/// daemon runs it scalar forever. RTM buffers the stores
/// transactionally and commits clean at any tile.
const FAMILY_RTM_WIN: &str = "\
// Conditional-update scan with a store inside the speculative region.
kernel rtm_win;

var i = 0;
var t = 0;
var u = 0;
var best = 1048576;
array a[4096] = seed 7;
array aux[4096] = seed 9;
array out[4096];
live_out best;

for (i = 0; i < 4096; i++) {
  t = a[i] * 3 + i;
  if (t < best) {
    u = aux[t & 4095];
    out[i] = u;
    if (u < best) {
      best = u;
    }
  }
}
";

/// Family B — fault tail: an early-exit scan whose exit chunk also
/// runs past the array, so the speculative tail load faults on every
/// invocation. FF masks the fault and falls back for one chunk; a
/// fixed RTM tile aborts the whole enclosing transaction and reruns it
/// scalar — the larger the tile, the larger the rerun.
const FAMILY_FAULT_TAIL: &str = "\
// Early-exit scan with a faulting speculative tail.
kernel fault_tail;

var i = 0;
var t = 0;
var s = 0;
var found = -1;
array a[2030] = seed 11;
live_out s;

for (i = 0; i < 2100; i++) {
  t = a[i];
  s = s + t;
  if (i > 2020) {
    found = i;
    break;
  }
}
";

/// Family C — store-heavy: a non-speculative scatter over a bin range
/// wide enough that intra-chunk conflicts are rare. `Auto` needs no
/// speculation at all and vectorizes clean; a pinned RTM daemon routes
/// every scatter through the transaction write-set journal (and every
/// gather through its read hook) and pays for it on each element.
const FAMILY_STORE_HEAVY: &str = "\
// Low-conflict histogram: every iteration scatters into a wide bin range.
kernel store_heavy;

var i = 0;
array idx[4096] = seed 7;
array bins[1024];

for (i = 0; i < 4096; i++) {
  bins[idx[i] % 1024] = bins[idx[i] % 1024] + 1;
}
";

/// The interleaving of the mixed trace, as indices into the family
/// set `[rtm_win, fault_tail, store_heavy]`.
const AUTOTUNE_TRACE: [usize; 4] = [0, 1, 2, 2];

/// One measured pass of the mixed-family trace against a fresh daemon.
struct AutotuneRun {
    rps: f64,
    failures: u64,
    /// `stats` response after the measured phase.
    stats: Json,
    /// `spec` field echoed on the last warmup response per family.
    specs: Vec<String>,
}

/// Starts a fresh daemon, registers the three families, warms each one
/// round-robin from a single connection (so per-kernel run counts — and
/// with them autotune decision points — advance deterministically),
/// then measures the interleaved trace. `spec` pins every request to a
/// fixed configuration; `None` leaves the daemon free to autotune.
fn autotune_pass(spec: Option<&str>, requests: u64, warmup: u64, invocations: u64) -> AutotuneRun {
    let families = [FAMILY_RTM_WIN, FAMILY_FAULT_TAIL, FAMILY_STORE_HEAVY];
    let handle = start(base_config()).expect("start autotune daemon");
    let addr = handle.addr.to_string();

    let mut client = Client::connect(&addr).expect("connect autotune client");
    let hashes: Vec<String> = families
        .iter()
        .map(|src| {
            let response = client
                .request(&compile_request((*src).to_owned()))
                .expect("register family");
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "family registration failed: {response}"
            );
            response
                .get("hash")
                .and_then(Json::as_str)
                .expect("hash in compile response")
                .to_owned()
        })
        .collect();

    // Store-heavy traffic is weighted double: scatter-into-bins is the
    // common shape in real mixes, and it is exactly where a uniform RTM
    // pin bleeds per-element write-set overhead on every request.
    let family_at = |i: u64| AUTOTUNE_TRACE[(i % AUTOTUNE_TRACE.len() as u64) as usize];
    let trace = |i: u64| {
        let mut fields = vec![
            ("op", Json::from("run")),
            ("hash", Json::from(hashes[family_at(i)].as_str())),
            ("invocations", Json::from(invocations)),
        ];
        if let Some(spec) = spec {
            fields.push(("spec", Json::from(spec)));
        }
        Json::obj(fields)
    };

    let mut specs = vec![String::new(); families.len()];
    for i in 0..warmup * AUTOTUNE_TRACE.len() as u64 {
        let response = client.request(&trace(i)).expect("warmup run");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "warmup run failed: {response}"
        );
        if let Some(s) = response.get("spec").and_then(Json::as_str) {
            specs[family_at(i)] = s.to_owned();
        }
    }

    // Measured phase: three single-connection passes over the
    // interleaved trace, reduced to per-family median latencies and
    // the best median across passes. On a shared (often single-core)
    // host the noise is one-sided — a request can only be slowed down
    // by unrelated load, never sped up — so min-of-medians is the
    // faithful estimate of each daemon's sustained service time, and
    // a single connection keeps request index `j` = trace slot `j`.
    let mut best = [f64::INFINITY; 3];
    let mut failures = 0;
    for _ in 0..3 {
        let phase = drive(&addr, 1, requests, trace);
        failures += phase.failures;
        let mut by_family: [Vec<Duration>; 3] = Default::default();
        for (j, lat) in phase.latencies.iter().enumerate() {
            by_family[family_at(j as u64)].push(*lat);
        }
        for (f, lats) in by_family.iter_mut().enumerate() {
            if !lats.is_empty() {
                lats.sort();
                best[f] = best[f].min(lats[lats.len() / 2].as_secs_f64());
            }
        }
    }
    // Aggregate req/s over one weighted trace cycle.
    let cycle: f64 = AUTOTUNE_TRACE.iter().map(|&f| best[f]).sum();
    let rps = AUTOTUNE_TRACE.len() as f64 / cycle.max(1e-9);
    let stats = client
        .request(&Json::obj([("op", Json::from("stats"))]))
        .expect("stats request");
    drop(client);
    handle.shutdown();
    AutotuneRun {
        rps,
        failures,
        stats,
        specs,
    }
}

/// `--scenario autotune`: the sweep grid of fixed `(spec, tile)`
/// daemons vs one autotuned daemon on the same mixed trace. Exit 1
/// unless the autotuner beats every fixed configuration by
/// [`MIN_AUTOTUNE_SPEEDUP`] and explicit `--spec`/`--engine` pins
/// demonstrably bypass it.
fn scenario_autotune(flags: &CommonFlags) -> i32 {
    let requests = flags.u64_flag("requests", 240).max(30);
    let warmup = flags.u64_flag("warmup", 20).max(10);
    let invocations = 3;
    let mut failed = false;

    // The sweep: one fresh daemon per fixed configuration, every
    // request pinned. A pinned daemon must never respecialize — that
    // is the `--spec` bypass contract, asserted here on live traffic.
    let mut fixed: Vec<(&str, AutotuneRun)> = Vec::new();
    for config in AUTOTUNE_GRID {
        let run = autotune_pass(Some(config), requests, warmup, invocations);
        let respec = run
            .stats
            .get("autotune_respecialize_total")
            .and_then(Json::as_u64)
            .unwrap_or(u64::MAX);
        if respec != 0 {
            eprintln!(
                "serve_load autotune: REGRESSION — pinned `{config}` daemon \
                 respecialized {respec} kernel(s); explicit --spec must bypass the autotuner"
            );
            failed = true;
        }
        let want = if config == "ff" { "auto" } else { config };
        for (family, got) in run.specs.iter().enumerate() {
            if got != want {
                eprintln!(
                    "serve_load autotune: REGRESSION — pinned `{config}` daemon answered \
                     family {family} with spec `{got}` (expected `{want}`)"
                );
                failed = true;
            }
        }
        if run.failures > 0 {
            eprintln!(
                "serve_load autotune: {} request(s) failed under pinned `{config}`",
                run.failures
            );
            failed = true;
        }
        fixed.push((config, run));
    }

    // The autotuned daemon: same trace, no spec on the wire. The
    // warmup must carry every family past the tuner's decision points.
    let tuned = autotune_pass(None, requests, warmup, invocations);
    if tuned.failures > 0 {
        eprintln!(
            "serve_load autotune: {} request(s) failed on the autotuned daemon",
            tuned.failures
        );
        failed = true;
    }
    let respec = tuned
        .stats
        .get("autotune_respecialize_total")
        .and_then(Json::as_u64)
        .unwrap_or(0);
    if respec == 0 {
        eprintln!(
            "serve_load autotune: REGRESSION — the autotuned daemon never respecialized \
             (expected at least the RTM unlock for the rtm_win family)"
        );
        failed = true;
    }
    if !tuned.specs[0].starts_with("rtm") {
        eprintln!(
            "serve_load autotune: REGRESSION — rtm_win family still served as \
             `{}` after {warmup} warmup runs (expected an rtm:TILE variant)",
            tuned.specs[0]
        );
        failed = true;
    }

    // Ratios against every fixed configuration.
    let mut min_ratio = f64::INFINITY;
    for (config, run) in &fixed {
        let ratio = tuned.rps / run.rps.max(1e-9);
        min_ratio = min_ratio.min(ratio);
        let verdict = if ratio >= MIN_AUTOTUNE_SPEEDUP {
            "ok"
        } else {
            failed = true;
            "REGRESSION"
        };
        println!(
            "serve_load autotune: fixed {config:<8} {:>7.1} req/s -> autotuned {:>7.1} req/s \
             ({ratio:.2}x, {verdict})",
            run.rps, tuned.rps
        );
    }
    if min_ratio < MIN_AUTOTUNE_SPEEDUP {
        eprintln!(
            "serve_load autotune: REGRESSION — worst ratio {min_ratio:.2}x is below the \
             required {MIN_AUTOTUNE_SPEEDUP:.2}x over every fixed configuration"
        );
    }

    // `--engine` bypass: a fresh daemon would tier this hot kernel to
    // bytecode/native; an explicit engine pin must be honored verbatim.
    let handle = start(base_config()).expect("start engine-pin daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect engine pin");
    let response = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(FAMILY_STORE_HEAVY)),
            ("engine", Json::from("tree")),
        ]))
        .expect("engine-pinned run");
    let engine = response
        .get("engine")
        .and_then(Json::as_str)
        .unwrap_or("")
        .to_owned();
    if engine != "tree-walking" {
        eprintln!(
            "serve_load autotune: REGRESSION — explicit engine pin answered `{engine}` \
             (expected `tree-walking`)"
        );
        failed = true;
    }
    drop(client);
    handle.shutdown();

    if flags.json {
        let mut grid = String::new();
        for (config, run) in &fixed {
            if !grid.is_empty() {
                grid.push_str(", ");
            }
            grid.push_str(&format!("\"{config}\": {}", json_f64(run.rps)));
        }
        println!(
            "{{\"scenario\": \"autotune\", \"requests\": {requests}, \
             \"warmup\": {warmup}, \"fixed_rps\": {{{grid}}}, \"autotuned_rps\": {}, \
             \"min_ratio\": {}, \"respecializations\": {respec}, \"ok\": {}}}",
            json_f64(tuned.rps),
            json_f64(min_ratio),
            !failed
        );
    } else {
        println!(
            "serve_load autotune: {respec} respecialization(s); worst margin {min_ratio:.2}x \
             over the {} fixed config(s)",
            fixed.len()
        );
    }
    i32::from(failed)
}
