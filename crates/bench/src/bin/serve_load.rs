//! `serve_load` — load generator for the flexvec-serve daemon.
//!
//! Starts an in-process daemon on an ephemeral port, drives it over
//! real TCP from a pool of client threads, and reports p50/p95/p99
//! latency plus sustained req/s for three traffic shapes:
//!
//! * **repeat** — the same small kernel set over and over: every
//!   request after the warmup is a compile-cache hit;
//! * **one-shot** — every request is a distinct kernel: every request
//!   pays the full analyze→vectorize→bytecode-compile pipeline;
//! * **run** — end-to-end execute requests (scalar baseline + vector
//!   + verification) for execution-latency percentiles.
//!
//! The headline number is the repeat/one-shot throughput ratio: the
//! service exists so that repeat-kernel traffic skips compilation, and
//! this driver fails (exit 1) if that ratio drops below 5× — both
//! shapes travel the same wire and queue, so the ratio isolates the
//! cache.
//!
//! A fourth phase demonstrates tiered execution end to end: one
//! straight-line-heavy kernel is submitted with the engine omitted
//! (`auto`), so the daemon's tier policy walks it cold→tree,
//! warm→bytecode, hot→native across successive requests. The final hot
//! request's `chunks_per_sec` (measured by the daemon around its own
//! exec loop, so the wire cancels out) is compared against a forced
//! `"engine":"compiled"` bench of the same kernel, and on x86-64 hosts
//! the run fails unless the promoted native tier beats the bytecode
//! tier by a measurable margin.
//!
//! Two further regression-failing scenarios cover the scale-out layer:
//!
//! * `--scenario warm-restart` — compiles a kernel set against a
//!   `--cache-dir`, restarts the daemon, and requires the *first*
//!   repeat-kernel request after the restart to be a disk-warm cache
//!   hit (no recompilation); reports restart-to-first-response time.
//! * `--scenario cluster` — drives skewed hot-key traffic at a 3-node
//!   consistent-hash ring and fails unless aggregate throughput beats
//!   the single-node baseline by ≥ 2.5× with bounded p99, and the
//!   reactor holds `--idle-conns` (default 5000) idle connections
//!   without spawning per-connection threads.
//!
//! ```text
//! serve_load [--scenario warm-restart|cluster] [--clients N] [--requests N]
//!            [--kernels K] [--workers N] [--idle-conns N] [--json]
//! ```

use std::time::{Duration, Instant};

use flexvec_bench::flags::{json_f64, CommonFlags, ExtraFlag};
use flexvec_serve::{start, Client, Json, ServerConfig};

/// Minimum repeat/one-shot throughput ratio the run must demonstrate.
const MIN_SPEEDUP: f64 = 5.0;

/// Minimum native-over-bytecode throughput ratio the promoted hot
/// kernel must demonstrate on hosts with the x86-64 back end. The
/// in-process bar (vm_throughput) is 1.5×; over the daemon we only
/// require a measurable margin, leaving headroom for scheduler noise.
const MIN_TIER_SPEEDUP: f64 = 1.05;

/// How many conditional-update patterns each generated kernel carries.
/// Sized so the analyze→vectorize→bytecode-compile pipeline (what the
/// cache amortizes) dominates one TCP round-trip, as it does for
/// production-sized kernels.
const PATTERNS: u64 = 12;

fn kernel_source(n: u64) -> String {
    // Distinct constants give distinct ASTs (and so distinct cache
    // keys); the shape is the paper's conditional-update minimum,
    // repeated over independent arrays.
    let mut src = format!("kernel k{n};\nvar i = 0;\n");
    for p in 0..PATTERNS {
        src.push_str(&format!("var b{p} = 9223372036854775807;\n"));
    }
    for p in 0..PATTERNS {
        src.push_str(&format!("array a{p}[64] = seed {};\n", n + p + 1));
    }
    for p in 0..PATTERNS {
        src.push_str(&format!("live_out b{p};\n"));
    }
    src.push_str("for (i = 0; i < 64; i++) {\n");
    for p in 0..PATTERNS {
        src.push_str(&format!(
            "  if (a{p}[i] + {n} < b{p}) {{\n    b{p} = a{p}[i] + {n};\n  }}\n"
        ));
    }
    src.push_str("}\n");
    src
}

/// The hot kernel for the tier-promotion phase: a long unguarded
/// arithmetic chain, the shape the native tier compiles (almost)
/// entirely to inline machine code. Same family as the `straightline`
/// kernel in the `vm_throughput` bench, expressed in `.fv`.
const HOT_KERNEL: &str = "\
kernel hotline;
var i = 0;
var acc = 0;
var t = 0;
array data[512] = seed 7;
array out[512] = seed 1;
live_out acc;
for (i = 0; i < 2048; i++) {
  t = data[i & 511] * 3 + i - 7;
  t = (t + t * 5) & 65535;
  t = t + t * 2 - i;
  t = t & 65535;
  if (t > acc) {
    acc = t;
  }
  out[i & 511] = t;
}
";

/// What the tier-promotion phase observed.
struct TierReport {
    /// Engine labels of the auto requests, in order (expected to walk
    /// tree-walking → compiled → native on x86-64 hosts).
    labels: Vec<String>,
    /// Daemon-measured chunks/s of the final (hot) auto request.
    hot_cps: f64,
    /// Daemon-measured chunks/s of the forced-bytecode baseline.
    bytecode_cps: f64,
    /// `flexvec_tier_promotions_total` after the walk.
    promotions: u64,
    /// Whether the daemon's host has the native back end.
    native_supported: bool,
}

impl TierReport {
    fn ratio(&self) -> f64 {
        self.hot_cps / self.bytecode_cps.max(1e-9)
    }
}

/// Walks one kernel through the daemon's tier policy and measures the
/// promoted hot tier against a forced-bytecode baseline.
fn drive_tiers(addr: &str) -> TierReport {
    let mut client = Client::connect(addr).expect("connect tier client");
    let mut bench = |engine: Option<&str>, invocations: u64| -> Json {
        let mut fields = vec![
            ("op", Json::from("bench")),
            ("source", Json::from(HOT_KERNEL)),
            ("invocations", Json::from(invocations)),
        ];
        if let Some(engine) = engine {
            fields.push(("engine", Json::from(engine)));
        }
        let response = client
            .request(&Json::obj(fields))
            .expect("tier bench request");
        assert_eq!(
            response.get("ok").and_then(Json::as_bool),
            Some(true),
            "tier bench failed: {response}"
        );
        response
    };

    // The policy promotes on cumulative run count (warm at 2, hot at
    // 16), and each request counts `invocations` runs. Three auto
    // requests therefore land on three different tiers: 0 runs seen →
    // tree, 2 → bytecode, 16 → native (on hosts that have it).
    let label = |r: &Json| {
        r.get("engine")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned()
    };
    let cold = bench(None, 2);
    let warm = bench(None, 14);
    let hot = bench(None, 48);
    let hot_cps = hot
        .get("chunks_per_sec")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);
    let labels = vec![label(&cold), label(&warm), label(&hot)];

    // Forced-bytecode baseline for the same kernel, same wire, same
    // daemon. Explicit engines bypass the tier policy, so this does
    // not disturb the walk above.
    let baseline = bench(Some("compiled"), 48);
    let bytecode_cps = baseline
        .get("chunks_per_sec")
        .and_then(Json::as_f64)
        .unwrap_or(0.0);

    let stats = client
        .request(&Json::obj([("op", Json::from("stats"))]))
        .expect("stats request");
    TierReport {
        labels,
        hot_cps,
        bytecode_cps,
        promotions: stats
            .get("tier_promotions_total")
            .and_then(Json::as_u64)
            .unwrap_or(0),
        native_supported: stats
            .get("native_supported")
            .and_then(Json::as_bool)
            .unwrap_or(false),
    }
}

struct Phase {
    latencies: Vec<Duration>,
    wall: Duration,
    failures: u64,
}

impl Phase {
    fn req_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.latencies.len() as f64 / secs
        } else {
            0.0
        }
    }

    fn percentile(&self, p: f64) -> Duration {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }
}

/// Fires `total` requests at the daemon from `clients` threads; the
/// request body for global index `i` comes from `make`.
fn drive(addr: &str, clients: usize, total: u64, make: impl Fn(u64) -> Json + Sync) -> Phase {
    drive_multi(std::slice::from_ref(&addr.to_owned()), clients, total, make)
}

/// [`drive`] against a set of daemons: client `c` connects to
/// `addrs[c % addrs.len()]`, so traffic spreads evenly over a cluster.
fn drive_multi(
    addrs: &[String],
    clients: usize,
    total: u64,
    make: impl Fn(u64) -> Json + Sync,
) -> Phase {
    let per_client = total.div_ceil(clients as u64);
    let started = Instant::now();
    let results: Vec<(Vec<Duration>, u64)> = std::thread::scope(|scope| {
        let make = &make;
        let handles: Vec<_> = (0..clients as u64)
            .map(|c| {
                let addr = &addrs[(c as usize) % addrs.len()];
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect load client");
                    let mut latencies = Vec::new();
                    let mut failures = 0u64;
                    let lo = c * per_client;
                    let hi = (lo + per_client).min(total);
                    for i in lo..hi {
                        let request = make(i);
                        let t0 = Instant::now();
                        let response = client.request(&request).expect("request");
                        latencies.push(t0.elapsed());
                        if response.get("ok").and_then(Json::as_bool) != Some(true) {
                            failures += 1;
                        }
                    }
                    (latencies, failures)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    let mut latencies = Vec::new();
    let mut failures = 0;
    for (l, f) in results {
        latencies.extend(l);
        failures += f;
    }
    Phase {
        latencies,
        wall,
        failures,
    }
}

fn compile_request(source: String) -> Json {
    Json::obj([
        ("op", Json::from("compile")),
        ("source", Json::from(source)),
    ])
}

fn main() {
    let flags = CommonFlags::parse(
        "serve_load",
        "serve_load: drive a flexvec-serve daemon and measure latency/throughput",
        &[
            ExtraFlag {
                name: "clients",
                help: "concurrent client connections (default 4)",
            },
            ExtraFlag {
                name: "requests",
                help: "requests per measured phase (default 1000)",
            },
            ExtraFlag {
                name: "kernels",
                help: "distinct kernels in the repeat set (default 8)",
            },
            ExtraFlag {
                name: "workers",
                help: "daemon worker pool size (default 4)",
            },
            ExtraFlag {
                name: "run-requests",
                help: "execute requests for the run-latency phase (default 60)",
            },
            ExtraFlag {
                name: "scenario",
                help: "alternate scenario: warm-restart | cluster (default: main load run)",
            },
            ExtraFlag {
                name: "idle-conns",
                help: "idle connections the cluster scenario parks on one node (default 5000)",
            },
        ],
    );
    match flags.str_flag("scenario", "").as_str() {
        "" => {}
        "warm-restart" => std::process::exit(scenario_warm_restart(&flags)),
        "cluster" => std::process::exit(scenario_cluster(&flags)),
        other => {
            eprintln!("serve_load: unknown scenario `{other}` (expected warm-restart or cluster)");
            std::process::exit(2);
        }
    }
    let clients = flags.u64_flag("clients", 4).max(1) as usize;
    let requests = flags.u64_flag("requests", 1000).max(1);
    let kernels = flags.u64_flag("kernels", 8).max(1);
    let workers = flags.u64_flag("workers", 4).max(1) as usize;
    let run_requests = flags.u64_flag("run-requests", 60).max(1);

    let config = ServerConfig {
        workers,
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        ..base_config()
    };
    let handle = start(config).expect("start daemon");
    let addr = handle.addr.to_string();

    // Warmup: register + compile the repeat set once, collecting the
    // content hashes the daemon assigns.
    let mut warm_client = Client::connect(&addr).expect("connect warmup client");
    let hashes: Vec<String> = (0..kernels)
        .map(|i| {
            let response = warm_client
                .request(&compile_request(kernel_source(i)))
                .expect("warmup request");
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "warmup compile failed: {response}"
            );
            response
                .get("hash")
                .and_then(Json::as_str)
                .expect("warmup response carries hash")
                .to_owned()
        })
        .collect();
    drop(warm_client);

    // Repeat-kernel traffic: requests reference the registered hash —
    // no source on the wire, no parse, pure cache hits.
    let hashes_ref = &hashes;
    let repeat = drive(&addr, clients, requests, |i| {
        Json::obj([
            ("op", Json::from("compile")),
            (
                "hash",
                Json::from(hashes_ref[(i % kernels) as usize].as_str()),
            ),
        ])
    });

    // One-shot traffic: every request is a new kernel (ids offset past
    // the repeat set), so every request compiles.
    let oneshot = drive(&addr, clients, requests, |i| {
        compile_request(kernel_source(1_000_000 + i))
    });

    // Execute traffic, for end-to-end run latency percentiles.
    let run = drive(&addr, clients, run_requests, |i| {
        Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(i % kernels))),
        ])
    });

    // Tier promotion: one hot kernel walks cold→tree, warm→bytecode,
    // hot→native under the auto policy, then races the promoted tier
    // against a forced-bytecode baseline.
    let tiers = drive_tiers(&addr);

    let metrics_text = handle
        .metrics_addr
        .map(|a| flexvec_serve::fetch_metrics(&a.to_string()).expect("scrape /metrics"));
    let stats = handle.engine().cache().stats();
    let speedup = repeat.req_per_sec() / oneshot.req_per_sec().max(1e-9);
    let failures = repeat.failures + oneshot.failures + run.failures;
    handle.shutdown();

    if flags.json {
        println!(
            "{{\n  \"clients\": {clients},\n  \"requests\": {requests},\n  \"kernels\": {kernels},\n  \
             \"repeat_rps\": {},\n  \"oneshot_rps\": {},\n  \"speedup\": {},\n  \
             \"repeat_p50_us\": {},\n  \"repeat_p95_us\": {},\n  \"repeat_p99_us\": {},\n  \
             \"run_p50_us\": {},\n  \"run_p95_us\": {},\n  \"run_p99_us\": {},\n  \
             \"cache_hits\": {},\n  \"cache_misses\": {},\n  \
             \"tier_walk\": [{}],\n  \"tier_bytecode_cps\": {},\n  \"tier_hot_cps\": {},\n  \
             \"tier_ratio\": {},\n  \"tier_promotions\": {},\n  \
             \"native_supported\": {},\n  \"failures\": {failures}\n}}",
            json_f64(repeat.req_per_sec()),
            json_f64(oneshot.req_per_sec()),
            json_f64(speedup),
            repeat.percentile(0.50).as_micros(),
            repeat.percentile(0.95).as_micros(),
            repeat.percentile(0.99).as_micros(),
            run.percentile(0.50).as_micros(),
            run.percentile(0.95).as_micros(),
            run.percentile(0.99).as_micros(),
            stats.hits,
            stats.misses,
            tiers
                .labels
                .iter()
                .map(|l| format!("\"{l}\""))
                .collect::<Vec<_>>()
                .join(", "),
            json_f64(tiers.bytecode_cps),
            json_f64(tiers.hot_cps),
            json_f64(tiers.ratio()),
            tiers.promotions,
            tiers.native_supported,
        );
    } else {
        println!(
            "serve_load: {clients} clients x {requests} requests, {kernels}-kernel repeat set, {workers} workers"
        );
        println!(
            "  repeat (cache-hit):  {:>9.0} req/s   p50 {:>6?} p95 {:>6?} p99 {:>6?}",
            repeat.req_per_sec(),
            repeat.percentile(0.50),
            repeat.percentile(0.95),
            repeat.percentile(0.99),
        );
        println!(
            "  one-shot (compile):  {:>9.0} req/s   p50 {:>6?} p95 {:>6?} p99 {:>6?}",
            oneshot.req_per_sec(),
            oneshot.percentile(0.50),
            oneshot.percentile(0.95),
            oneshot.percentile(0.99),
        );
        println!(
            "  run (exec+verify):   {:>9.0} req/s   p50 {:>6?} p95 {:>6?} p99 {:>6?}",
            run.req_per_sec(),
            run.percentile(0.50),
            run.percentile(0.95),
            run.percentile(0.99),
        );
        println!(
            "  cache: {} hits / {} misses; repeat-vs-one-shot speedup: {speedup:.1}x",
            stats.hits, stats.misses
        );
        println!(
            "  tiers (hot kernel):  {}   bytecode {:.3e} -> hot {:.3e} chunks/s \
             ({:.2}x; {} promotion(s))",
            tiers.labels.join(" -> "),
            tiers.bytecode_cps,
            tiers.hot_cps,
            tiers.ratio(),
            tiers.promotions,
        );
        if let Some(text) = &metrics_text {
            let hits = text
                .lines()
                .find(|l| l.starts_with("flexvec_cache_hits_total"))
                .unwrap_or("flexvec_cache_hits_total <missing>");
            let promotions = text
                .lines()
                .find(|l| l.starts_with("flexvec_tier_promotions_total"))
                .unwrap_or("flexvec_tier_promotions_total <missing>");
            println!("  /metrics scrape ok ({hits}; {promotions})");
        }
    }

    if failures > 0 {
        eprintln!("serve_load: {failures} request(s) failed");
        std::process::exit(1);
    }
    if speedup < MIN_SPEEDUP {
        eprintln!(
            "serve_load: repeat-kernel speedup {speedup:.1}x is below the required {MIN_SPEEDUP:.0}x"
        );
        std::process::exit(1);
    }
    if tiers.promotions == 0 {
        eprintln!("serve_load: the tier policy never promoted the hot kernel");
        std::process::exit(1);
    }
    if tiers.native_supported {
        if tiers.labels.last().map(String::as_str) != Some("native") {
            eprintln!(
                "serve_load: hot kernel was not promoted to the native tier \
                 (walk: {})",
                tiers.labels.join(" -> ")
            );
            std::process::exit(1);
        }
        if tiers.ratio() < MIN_TIER_SPEEDUP {
            eprintln!(
                "serve_load: native tier {:.2}x over bytecode is below the required \
                 {MIN_TIER_SPEEDUP:.2}x",
                tiers.ratio()
            );
            std::process::exit(1);
        }
    }
}

/// The shared single-node daemon shape: ephemeral port, no metrics
/// listener, unbounded in-memory cache, standalone.
fn base_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        metrics_addr: None,
        workers: 4,
        queue_capacity: 256,
        cache_capacity: 0,
        default_deadline_ms: None,
        cache_dir: None,
        cluster: Vec::new(),
        advertise: None,
    }
}

/// A scratch directory under the system temp dir, unique per process.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("serve-load-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Minimum cluster-over-single-node aggregate throughput the skewed
/// hot-key scenario must demonstrate.
const MIN_CLUSTER_SPEEDUP: f64 = 2.5;

/// `--scenario warm-restart`: the first repeat-kernel request after a
/// restart with `--cache-dir` must be a disk-warm cache hit, with no
/// recompilation. Reports restart-to-first-response time. Exit 1 on
/// regression.
fn scenario_warm_restart(flags: &CommonFlags) -> i32 {
    let kernels = flags.u64_flag("kernels", 8).max(1);
    let dir = scratch_dir("warm");
    let cache_dir = Some(dir.to_string_lossy().into_owned());

    // First lifetime: compile the kernel set, snapshotting each.
    let handle = start(ServerConfig {
        cache_dir: cache_dir.clone(),
        ..base_config()
    })
    .expect("start daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("connect");
    let hashes: Vec<String> = (0..kernels)
        .map(|n| {
            let response = client
                .request(&compile_request(kernel_source(n)))
                .expect("seed compile");
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "seed compile failed: {response}"
            );
            response
                .get("hash")
                .and_then(Json::as_str)
                .expect("hash")
                .to_owned()
        })
        .collect();
    drop(client);
    handle.shutdown();

    // Restart against the same cache dir and time the path from
    // "process decides to start" to "first repeat request answered".
    let t0 = Instant::now();
    let handle = start(ServerConfig {
        cache_dir,
        ..base_config()
    })
    .expect("restart daemon");
    let mut client = Client::connect(&handle.addr.to_string()).expect("reconnect");
    let first = client
        .request(&Json::obj([
            ("op", Json::from("run")),
            ("hash", Json::from(hashes[0].as_str())),
        ]))
        .expect("first request after restart");
    let restart_to_first = t0.elapsed();

    let mut failed = false;
    if first.get("ok").and_then(Json::as_bool) != Some(true) {
        eprintln!("serve_load warm-restart: first request failed: {first}");
        failed = true;
    }
    if first.get("cache_hit").and_then(Json::as_bool) != Some(true) {
        eprintln!(
            "serve_load warm-restart: REGRESSION — first repeat-kernel request \
             after restart was not a cache hit: {first}"
        );
        failed = true;
    }
    // The rest of the set must also come back disk-warm.
    for hash in &hashes[1..] {
        let response = client
            .request(&Json::obj([
                ("op", Json::from("run")),
                ("hash", Json::from(hash.as_str())),
            ]))
            .expect("repeat request");
        if response.get("cache_hit").and_then(Json::as_bool) != Some(true) {
            eprintln!("serve_load warm-restart: kernel {hash} missed after restart: {response}");
            failed = true;
        }
    }
    let compiles = handle.engine().cache().compiles();
    if compiles != 0 {
        eprintln!(
            "serve_load warm-restart: REGRESSION — {compiles} recompilation(s) \
             for kernels that have valid snapshots"
        );
        failed = true;
    }

    if flags.json {
        println!(
            "{{\"scenario\": \"warm-restart\", \"kernels\": {kernels}, \
             \"restart_to_first_response_us\": {}, \"recompiles\": {compiles}, \
             \"ok\": {}}}",
            restart_to_first.as_micros(),
            !failed
        );
    } else {
        println!(
            "serve_load warm-restart: {kernels} kernels disk-warm after restart; \
             restart-to-first-response {restart_to_first:.2?}, {compiles} recompiles"
        );
    }
    drop(client);
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
    i32::from(failed)
}

/// The skewed request mix for the cluster scenario: 80% of requests
/// hit one hot kernel, the rest spread over a small cold set — the
/// worst case for naive ownership routing, where every non-owner
/// would bottleneck on the hot key's one owner.
fn skewed_request(i: u64) -> Json {
    let n = if i % 10 < 8 { 0 } else { 1 + (i % 8) };
    Json::obj([
        ("op", Json::from("run")),
        ("source", Json::from(kernel_source(n))),
        ("invocations", Json::from(60u64)),
    ])
}

/// Threads currently in this process, from `/proc/self/status`.
#[cfg(target_os = "linux")]
fn process_threads() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
}

/// `--scenario cluster`: 3-node ring vs single node under skewed
/// hot-key traffic, plus the idle-connection capacity check. Exit 1 on
/// regression.
fn scenario_cluster(flags: &CommonFlags) -> i32 {
    let clients = flags.u64_flag("clients", 12).max(3) as usize;
    let requests = flags.u64_flag("requests", 1500).max(clients as u64);
    let workers = flags.u64_flag("workers", 2).max(1) as usize;
    let idle_conns = flags.u64_flag("idle-conns", 5000);

    // Single-node baseline: same traffic, same total client count.
    let single = start(ServerConfig {
        workers,
        ..base_config()
    })
    .expect("start single node");
    let baseline = drive(&single.addr.to_string(), clients, requests, skewed_request);
    single.shutdown();

    // Three-node ring. Ports are reserved then released for the
    // daemons to rebind (tiny reuse race — acceptable here).
    let reserved: Vec<std::net::TcpListener> = (0..3)
        .map(|_| std::net::TcpListener::bind("127.0.0.1:0").expect("reserve port"))
        .collect();
    let members: Vec<String> = reserved
        .iter()
        .map(|l| l.local_addr().expect("local addr").to_string())
        .collect();
    drop(reserved);
    let handles: Vec<_> = members
        .iter()
        .map(|addr| {
            start(ServerConfig {
                addr: addr.clone(),
                workers,
                cluster: members.clone(),
                advertise: Some(addr.clone()),
                ..base_config()
            })
            .expect("start cluster node")
        })
        .collect();

    let cluster = drive_multi(&members, clients, requests, skewed_request);

    // Park idle connections on node 0: the reactor must hold them all
    // without growing the process thread count. Only meaningful where
    // the reactor exists; other hosts run thread-per-connection.
    #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
    let (idle_held, idle_ok) = {
        let mut idle_ok = true;
        let threads_before = process_threads();
        let idle: Vec<std::net::TcpStream> = (0..idle_conns)
            .filter_map(|_| std::net::TcpStream::connect(&members[0]).ok())
            .collect();
        let idle_held = idle.len() as u64;
        if idle_held < idle_conns {
            eprintln!(
                "serve_load cluster: REGRESSION — only {idle_held}/{idle_conns} \
                 idle connections accepted"
            );
            idle_ok = false;
        }
        // The reactor accepts asynchronously; give it a moment, then
        // prove a live request still flows past the parked herd.
        let mut probe = Client::connect(&members[0]).expect("probe connect");
        let response = probe
            .request(&Json::obj([("op", Json::from("stats"))]))
            .expect("stats with idle herd");
        let open = response
            .get("open_connections")
            .and_then(Json::as_u64)
            .unwrap_or(0);
        if open < idle_held {
            eprintln!(
                "serve_load cluster: node 0 reports {open} open connections, \
                 expected at least the {idle_held} parked ones"
            );
            idle_ok = false;
        }
        if let (Some(before), Some(after)) = (threads_before, process_threads()) {
            // Thread-per-connection would add ~one thread per parked
            // socket; the reactor must add none.
            if after > before + 8 {
                eprintln!(
                    "serve_load cluster: REGRESSION — thread count grew {before} -> {after} \
                     while parking {idle_held} idle connections"
                );
                idle_ok = false;
            }
        }
        drop(idle);
        (idle_held, idle_ok)
    };
    #[cfg(not(all(target_arch = "x86_64", target_os = "linux")))]
    let (idle_held, idle_ok) = {
        let _ = idle_conns;
        eprintln!("serve_load cluster: no reactor on this target; idle-connection check skipped");
        (0u64, true)
    };

    let forwards: u64 = handles
        .iter()
        .filter_map(|h| h.cluster())
        .map(|c| c.counters.forwards.get())
        .sum();
    let adoptions: u64 = handles
        .iter()
        .filter_map(|h| h.cluster())
        .map(|c| c.counters.adoptions.get())
        .sum();
    for handle in handles {
        handle.shutdown();
    }

    let speedup = cluster.req_per_sec() / baseline.req_per_sec().max(1e-9);
    let p99_bound = (baseline.percentile(0.99) * 10).max(Duration::from_millis(250));
    let p99 = cluster.percentile(0.99);
    let mut failed = !idle_ok;
    if cluster.failures + baseline.failures > 0 {
        eprintln!(
            "serve_load cluster: {} request(s) failed",
            cluster.failures + baseline.failures
        );
        failed = true;
    }
    // Aggregate scaling needs actual parallel hardware: three nodes on
    // a starved container share one core and cannot beat one node.
    // The assertion stays regression-failing wherever the cluster's
    // worker pools can genuinely run side by side.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get);
    if cores >= workers * 3 {
        if speedup < MIN_CLUSTER_SPEEDUP {
            eprintln!(
                "serve_load cluster: REGRESSION — 3-node aggregate is only {speedup:.2}x \
                 the single node (required {MIN_CLUSTER_SPEEDUP:.1}x)"
            );
            failed = true;
        }
        if p99 > p99_bound {
            eprintln!(
                "serve_load cluster: REGRESSION — p99 {p99:.2?} exceeds the bound {p99_bound:.2?}"
            );
            failed = true;
        }
    } else {
        eprintln!(
            "serve_load cluster: {cores} core(s) cannot host 3x{workers} workers; \
             measured {speedup:.2}x / p99 {p99:.2?} are informational, scaling not asserted"
        );
    }

    if flags.json {
        println!(
            "{{\"scenario\": \"cluster\", \"clients\": {clients}, \"requests\": {requests}, \
             \"single_rps\": {}, \"cluster_rps\": {}, \"speedup\": {}, \
             \"cluster_p99_us\": {}, \"forwards\": {forwards}, \"adoptions\": {adoptions}, \
             \"idle_conns_held\": {idle_held}, \"ok\": {}}}",
            json_f64(baseline.req_per_sec()),
            json_f64(cluster.req_per_sec()),
            json_f64(speedup),
            p99.as_micros(),
            !failed
        );
    } else {
        println!(
            "serve_load cluster: single {:.0} req/s -> 3-node {:.0} req/s ({speedup:.2}x); \
             p99 {p99:.2?} (bound {p99_bound:.2?})",
            baseline.req_per_sec(),
            cluster.req_per_sec(),
        );
        println!(
            "  ring: {forwards} forward(s), {adoptions} hot-key adoption(s); \
             {idle_held} idle connection(s) parked on node 0"
        );
    }
    i32::from(failed)
}
