//! `serve_load` — load generator for the flexvec-serve daemon.
//!
//! Starts an in-process daemon on an ephemeral port, drives it over
//! real TCP from a pool of client threads, and reports p50/p95/p99
//! latency plus sustained req/s for three traffic shapes:
//!
//! * **repeat** — the same small kernel set over and over: every
//!   request after the warmup is a compile-cache hit;
//! * **one-shot** — every request is a distinct kernel: every request
//!   pays the full analyze→vectorize→bytecode-compile pipeline;
//! * **run** — end-to-end execute requests (scalar baseline + vector
//!   + verification) for execution-latency percentiles.
//!
//! The headline number is the repeat/one-shot throughput ratio: the
//! service exists so that repeat-kernel traffic skips compilation, and
//! this driver fails (exit 1) if that ratio drops below 5× — both
//! shapes travel the same wire and queue, so the ratio isolates the
//! cache.
//!
//! ```text
//! serve_load [--clients N] [--requests N] [--kernels K] [--workers N] [--json]
//! ```

use std::time::{Duration, Instant};

use flexvec_bench::flags::{json_f64, CommonFlags, ExtraFlag};
use flexvec_serve::{start, Client, Json, ServerConfig};

/// Minimum repeat/one-shot throughput ratio the run must demonstrate.
const MIN_SPEEDUP: f64 = 5.0;

/// How many conditional-update patterns each generated kernel carries.
/// Sized so the analyze→vectorize→bytecode-compile pipeline (what the
/// cache amortizes) dominates one TCP round-trip, as it does for
/// production-sized kernels.
const PATTERNS: u64 = 12;

fn kernel_source(n: u64) -> String {
    // Distinct constants give distinct ASTs (and so distinct cache
    // keys); the shape is the paper's conditional-update minimum,
    // repeated over independent arrays.
    let mut src = format!("kernel k{n};\nvar i = 0;\n");
    for p in 0..PATTERNS {
        src.push_str(&format!("var b{p} = 9223372036854775807;\n"));
    }
    for p in 0..PATTERNS {
        src.push_str(&format!("array a{p}[64] = seed {};\n", n + p + 1));
    }
    for p in 0..PATTERNS {
        src.push_str(&format!("live_out b{p};\n"));
    }
    src.push_str("for (i = 0; i < 64; i++) {\n");
    for p in 0..PATTERNS {
        src.push_str(&format!(
            "  if (a{p}[i] + {n} < b{p}) {{\n    b{p} = a{p}[i] + {n};\n  }}\n"
        ));
    }
    src.push_str("}\n");
    src
}

struct Phase {
    latencies: Vec<Duration>,
    wall: Duration,
    failures: u64,
}

impl Phase {
    fn req_per_sec(&self) -> f64 {
        let secs = self.wall.as_secs_f64();
        if secs > 0.0 {
            self.latencies.len() as f64 / secs
        } else {
            0.0
        }
    }

    fn percentile(&self, p: f64) -> Duration {
        let mut sorted = self.latencies.clone();
        sorted.sort();
        if sorted.is_empty() {
            return Duration::ZERO;
        }
        let idx = ((sorted.len() as f64 * p).ceil() as usize).clamp(1, sorted.len()) - 1;
        sorted[idx]
    }
}

/// Fires `total` requests at the daemon from `clients` threads; the
/// request body for global index `i` comes from `make`.
fn drive(addr: &str, clients: usize, total: u64, make: impl Fn(u64) -> Json + Sync) -> Phase {
    let per_client = total.div_ceil(clients as u64);
    let started = Instant::now();
    let results: Vec<(Vec<Duration>, u64)> = std::thread::scope(|scope| {
        let make = &make;
        let handles: Vec<_> = (0..clients as u64)
            .map(|c| {
                scope.spawn(move || {
                    let mut client = Client::connect(addr).expect("connect load client");
                    let mut latencies = Vec::new();
                    let mut failures = 0u64;
                    let lo = c * per_client;
                    let hi = (lo + per_client).min(total);
                    for i in lo..hi {
                        let request = make(i);
                        let t0 = Instant::now();
                        let response = client.request(&request).expect("request");
                        latencies.push(t0.elapsed());
                        if response.get("ok").and_then(Json::as_bool) != Some(true) {
                            failures += 1;
                        }
                    }
                    (latencies, failures)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client thread"))
            .collect()
    });
    let wall = started.elapsed();
    let mut latencies = Vec::new();
    let mut failures = 0;
    for (l, f) in results {
        latencies.extend(l);
        failures += f;
    }
    Phase {
        latencies,
        wall,
        failures,
    }
}

fn compile_request(source: String) -> Json {
    Json::obj([
        ("op", Json::from("compile")),
        ("source", Json::from(source)),
    ])
}

fn main() {
    let flags = CommonFlags::parse(
        "serve_load",
        "serve_load: drive a flexvec-serve daemon and measure latency/throughput",
        &[
            ExtraFlag {
                name: "clients",
                help: "concurrent client connections (default 4)",
            },
            ExtraFlag {
                name: "requests",
                help: "requests per measured phase (default 1000)",
            },
            ExtraFlag {
                name: "kernels",
                help: "distinct kernels in the repeat set (default 8)",
            },
            ExtraFlag {
                name: "workers",
                help: "daemon worker pool size (default 4)",
            },
            ExtraFlag {
                name: "run-requests",
                help: "execute requests for the run-latency phase (default 60)",
            },
        ],
    );
    let clients = flags.u64_flag("clients", 4).max(1) as usize;
    let requests = flags.u64_flag("requests", 1000).max(1);
    let kernels = flags.u64_flag("kernels", 8).max(1);
    let workers = flags.u64_flag("workers", 4).max(1) as usize;
    let run_requests = flags.u64_flag("run-requests", 60).max(1);

    let config = ServerConfig {
        addr: "127.0.0.1:0".to_owned(),
        metrics_addr: Some("127.0.0.1:0".to_owned()),
        workers,
        queue_capacity: 256,
        cache_capacity: 0,
        default_deadline_ms: None,
    };
    let handle = start(config).expect("start daemon");
    let addr = handle.addr.to_string();

    // Warmup: register + compile the repeat set once, collecting the
    // content hashes the daemon assigns.
    let mut warm_client = Client::connect(&addr).expect("connect warmup client");
    let hashes: Vec<String> = (0..kernels)
        .map(|i| {
            let response = warm_client
                .request(&compile_request(kernel_source(i)))
                .expect("warmup request");
            assert_eq!(
                response.get("ok").and_then(Json::as_bool),
                Some(true),
                "warmup compile failed: {response}"
            );
            response
                .get("hash")
                .and_then(Json::as_str)
                .expect("warmup response carries hash")
                .to_owned()
        })
        .collect();
    drop(warm_client);

    // Repeat-kernel traffic: requests reference the registered hash —
    // no source on the wire, no parse, pure cache hits.
    let hashes_ref = &hashes;
    let repeat = drive(&addr, clients, requests, |i| {
        Json::obj([
            ("op", Json::from("compile")),
            (
                "hash",
                Json::from(hashes_ref[(i % kernels) as usize].as_str()),
            ),
        ])
    });

    // One-shot traffic: every request is a new kernel (ids offset past
    // the repeat set), so every request compiles.
    let oneshot = drive(&addr, clients, requests, |i| {
        compile_request(kernel_source(1_000_000 + i))
    });

    // Execute traffic, for end-to-end run latency percentiles.
    let run = drive(&addr, clients, run_requests, |i| {
        Json::obj([
            ("op", Json::from("run")),
            ("source", Json::from(kernel_source(i % kernels))),
        ])
    });

    let metrics_text = handle
        .metrics_addr
        .map(|a| flexvec_serve::fetch_metrics(&a.to_string()).expect("scrape /metrics"));
    let stats = handle.engine().cache().stats();
    let speedup = repeat.req_per_sec() / oneshot.req_per_sec().max(1e-9);
    let failures = repeat.failures + oneshot.failures + run.failures;
    handle.shutdown();

    if flags.json {
        println!(
            "{{\n  \"clients\": {clients},\n  \"requests\": {requests},\n  \"kernels\": {kernels},\n  \
             \"repeat_rps\": {},\n  \"oneshot_rps\": {},\n  \"speedup\": {},\n  \
             \"repeat_p50_us\": {},\n  \"repeat_p95_us\": {},\n  \"repeat_p99_us\": {},\n  \
             \"run_p50_us\": {},\n  \"run_p95_us\": {},\n  \"run_p99_us\": {},\n  \
             \"cache_hits\": {},\n  \"cache_misses\": {},\n  \"failures\": {failures}\n}}",
            json_f64(repeat.req_per_sec()),
            json_f64(oneshot.req_per_sec()),
            json_f64(speedup),
            repeat.percentile(0.50).as_micros(),
            repeat.percentile(0.95).as_micros(),
            repeat.percentile(0.99).as_micros(),
            run.percentile(0.50).as_micros(),
            run.percentile(0.95).as_micros(),
            run.percentile(0.99).as_micros(),
            stats.hits,
            stats.misses,
        );
    } else {
        println!(
            "serve_load: {clients} clients x {requests} requests, {kernels}-kernel repeat set, {workers} workers"
        );
        println!(
            "  repeat (cache-hit):  {:>9.0} req/s   p50 {:>6?} p95 {:>6?} p99 {:>6?}",
            repeat.req_per_sec(),
            repeat.percentile(0.50),
            repeat.percentile(0.95),
            repeat.percentile(0.99),
        );
        println!(
            "  one-shot (compile):  {:>9.0} req/s   p50 {:>6?} p95 {:>6?} p99 {:>6?}",
            oneshot.req_per_sec(),
            oneshot.percentile(0.50),
            oneshot.percentile(0.95),
            oneshot.percentile(0.99),
        );
        println!(
            "  run (exec+verify):   {:>9.0} req/s   p50 {:>6?} p95 {:>6?} p99 {:>6?}",
            run.req_per_sec(),
            run.percentile(0.50),
            run.percentile(0.95),
            run.percentile(0.99),
        );
        println!(
            "  cache: {} hits / {} misses; repeat-vs-one-shot speedup: {speedup:.1}x",
            stats.hits, stats.misses
        );
        if let Some(text) = &metrics_text {
            let hits = text
                .lines()
                .find(|l| l.starts_with("flexvec_cache_hits_total"))
                .unwrap_or("flexvec_cache_hits_total <missing>");
            println!("  /metrics scrape ok ({hits})");
        }
    }

    if failures > 0 {
        eprintln!("serve_load: {failures} request(s) failed");
        std::process::exit(1);
    }
    if speedup < MIN_SPEEDUP {
        eprintln!(
            "serve_load: repeat-kernel speedup {speedup:.1}x is below the required {MIN_SPEEDUP:.0}x"
        );
        std::process::exit(1);
    }
}
