//! Batch evaluation of `.fv` kernels — the engine behind `flexvecc`.
//!
//! Mirrors the workload harness in `flexvec-workloads`: every kernel is
//! executed scalar (the baseline) and — when the vectorizer accepts it —
//! as FlexVec vector code on the Table 1 out-of-order model, with the
//! two executions verified against each other (live-outs and every array
//! element). The analyze→vectorize→bytecode-compile middle of the
//! pipeline goes through a shared [`CompileCache`], so resubmitting a
//! corpus in the same process is pure cache hits.

use std::path::{Path, PathBuf};
use std::time::Instant;

use flexvec::{SpecRequest, VectorizedKind};
use flexvec_front::{parse_file, CompileCache, ParsedKernel};
use flexvec_mem::AddressSpace;
use flexvec_profiler::ThroughputReport;
use flexvec_sim::{OooSim, SimConfig};
use flexvec_vm::{
    run_scalar, run_vector_precompiled_with_scratch, run_vector_with_engine, Bindings, Engine,
    TraceSink, VectorStats,
};

/// Measured outcome of one vectorized `.fv` kernel.
#[derive(Clone, Debug)]
pub struct FvRun {
    /// `traditional` or `flexvec` — which code generator produced the
    /// vector code.
    pub kind: &'static str,
    /// Baseline (scalar) cycles over all invocations.
    pub scalar_cycles: u64,
    /// Vector cycles over all invocations.
    pub vector_cycles: u64,
    /// Baseline-over-FlexVec hot-region speedup.
    pub region_speedup: f64,
    /// Dynamic vector statistics (last invocation).
    pub stats: VectorStats,
    /// Execution-engine throughput counters for the vector runs.
    pub throughput: ThroughputReport,
    /// Final live-out values, `(name, value)` in declaration order.
    pub live_outs: Vec<(String, i64)>,
}

/// The per-file report `flexvecc` prints.
#[derive(Clone, Debug)]
pub struct FvReport {
    /// The path as given (diagnostic source name).
    pub source: String,
    /// Kernel name (empty when the file did not parse).
    pub kernel: String,
    /// One-line verdict summary (or `parse error`).
    pub verdict: String,
    /// Whether the compile cache already held this (AST, spec) pair.
    pub cache_hit: bool,
    /// Rendered diagnostic / execution failure, if any.
    pub error: Option<String>,
    /// Execution measurements (present for `run` on vectorizable
    /// kernels that executed cleanly).
    pub run: Option<FvRun>,
}

impl FvReport {
    /// Whether this file should fail the batch.
    pub fn is_failure(&self) -> bool {
        self.error.is_some()
    }
}

/// Expands files and directories into the sorted list of `.fv` files to
/// process. Directories are scanned one level deep for `*.fv`.
///
/// # Errors
///
/// Reports unreadable paths and directories containing no `.fv` files.
pub fn collect_fv_files(paths: &[String]) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    for p in paths {
        let path = PathBuf::from(p);
        if path.is_dir() {
            let mut found = Vec::new();
            let entries = std::fs::read_dir(&path).map_err(|e| format!("cannot read {p}: {e}"))?;
            for entry in entries {
                let entry = entry.map_err(|e| format!("cannot read {p}: {e}"))?;
                let file = entry.path();
                if file.extension().is_some_and(|ext| ext == "fv") {
                    found.push(file);
                }
            }
            if found.is_empty() {
                return Err(format!("no .fv files in directory {p}"));
            }
            found.sort();
            out.extend(found);
        } else if path.is_file() {
            out.push(path);
        } else {
            return Err(format!("no such file or directory: {p}"));
        }
    }
    Ok(out)
}

fn parse_report(path: &Path) -> Result<ParsedKernel, Box<FvReport>> {
    let source = path.display().to_string();
    match parse_file(path) {
        Ok(kernel) => Ok(kernel),
        Err(diag) => {
            let rendered = match std::fs::read_to_string(path) {
                Ok(src) => diag.render(&src),
                Err(_) => diag.summary(),
            };
            Err(Box::new(FvReport {
                source,
                kernel: String::new(),
                verdict: "parse error".to_owned(),
                cache_hit: false,
                error: Some(rendered),
                run: None,
            }))
        }
    }
}

/// Parses and compiles one kernel without executing it (`flexvecc
/// check` / `vectorize`).
pub fn check_fv_file(path: &Path, cache: &CompileCache, spec: SpecRequest) -> FvReport {
    let kernel = match parse_report(path) {
        Ok(k) => k,
        Err(report) => return *report,
    };
    let (compiled, cache_hit) = cache.get_or_compile(&kernel.program, spec);
    FvReport {
        source: path.display().to_string(),
        kernel: kernel.program.name.clone(),
        verdict: compiled.verdict_summary(),
        cache_hit,
        error: None,
        run: None,
    }
}

/// Parses, compiles (through `cache`) and executes one kernel:
/// scalar baseline always; vector code when the vectorizer accepts the
/// loop, verified element-for-element against the baseline.
pub fn evaluate_fv_file(
    path: &Path,
    cache: &CompileCache,
    spec: SpecRequest,
    engine: Engine,
    invocations: u64,
) -> FvReport {
    let kernel = match parse_report(path) {
        Ok(k) => k,
        Err(report) => return *report,
    };
    let (compiled, cache_hit) = cache.get_or_compile(&kernel.program, spec);
    let mut report = FvReport {
        source: path.display().to_string(),
        kernel: kernel.program.name.clone(),
        verdict: compiled.verdict_summary(),
        cache_hit,
        error: None,
        run: None,
    };

    let program = &kernel.program;
    let arrays = kernel.materialize_arrays();
    let config = SimConfig::table1();
    let invocations = invocations.max(1);

    let bind_arrays = |mem: &mut AddressSpace| -> Bindings {
        let ids: Vec<_> = arrays
            .iter()
            .enumerate()
            .map(|(i, data)| mem.alloc_from(&format!("{}_{i}", program.name), data))
            .collect();
        Bindings::new(ids)
    };

    // Baseline: scalar execution on the OOO model.
    let mut mem_s = AddressSpace::new();
    let bind_s = bind_arrays(&mut mem_s);
    let mut sim_s = OooSim::new(config.clone());
    let mut scalar_final = None;
    for _ in 0..invocations {
        match run_scalar(program, &mut mem_s, bind_s.clone(), &mut sim_s) {
            Ok(r) => scalar_final = Some(r),
            Err(e) => {
                report.error = Some(format!("scalar execution failed: {e}"));
                return report;
            }
        }
    }
    let scalar_run = scalar_final.expect("at least one invocation");
    let scalar_cycles = sim_s.result().cycles;
    let live_outs: Vec<(String, i64)> = program
        .live_out
        .iter()
        .map(|v| (program.var_name(*v).to_owned(), scalar_run.var(*v)))
        .collect();

    let Ok(plan) = &compiled.plan else {
        // Not vectorizable: the scalar baseline is the only execution.
        report.run = Some(FvRun {
            kind: "scalar-only",
            scalar_cycles,
            vector_cycles: scalar_cycles,
            region_speedup: 1.0,
            stats: VectorStats::default(),
            throughput: ThroughputReport::new(
                "scalar",
                std::time::Duration::ZERO,
                0,
                sim_s.len(),
                flexvec_mem::PageCacheStats::default(),
            ),
            live_outs,
        });
        return report;
    };

    // Vector execution on a fresh memory image. The native tier needs
    // its own plan clone: the cached one is shared and immutable.
    let native = (engine == Engine::Native).then(|| {
        let mut c = plan.compiled.clone();
        c.enable_native();
        c
    });
    let mut mem_v = AddressSpace::new();
    let bind_v = bind_arrays(&mut mem_v);
    let mut sim_v = OooSim::new(config);
    let mut scratch = match &native {
        Some(c) => c.scratch(),
        None => plan.compiled.scratch(),
    };
    let mut vector_final = None;
    let mut stats = VectorStats::default();
    mem_v.reset_cache_stats();
    let label = match engine {
        Engine::TreeWalking => "tree-walking",
        Engine::Compiled => "compiled",
        Engine::Native => "native",
    };
    let mut throughput = ThroughputReport::new(
        label,
        std::time::Duration::ZERO,
        0,
        0,
        flexvec_mem::PageCacheStats::default(),
    );
    let wall_start = Instant::now();
    for _ in 0..invocations {
        let step = match engine {
            Engine::Compiled | Engine::Native => run_vector_precompiled_with_scratch(
                program,
                &plan.vectorized.vprog,
                native.as_ref().unwrap_or(&plan.compiled),
                &mut scratch,
                &mut mem_v,
                bind_v.clone(),
                &mut sim_v,
            ),
            Engine::TreeWalking => run_vector_with_engine(
                program,
                &plan.vectorized.vprog,
                &mut mem_v,
                bind_v.clone(),
                &mut sim_v,
                Engine::TreeWalking,
            ),
        };
        match step {
            Ok((r, s)) => {
                throughput.add_stats(&s);
                vector_final = Some(r);
                stats = s;
            }
            Err(e) => {
                report.error = Some(format!("vector execution failed: {e}"));
                return report;
            }
        }
    }
    throughput.wall = wall_start.elapsed();
    throughput.page_cache = mem_v.cache_stats();
    throughput.uops = sim_v.len();
    let vector_run = vector_final.expect("at least one invocation");
    let vector_cycles = sim_v.result().cycles;

    // Verification: live-outs and every array byte must agree.
    for v in &program.live_out {
        if scalar_run.var(*v) != vector_run.var(*v) {
            report.error = Some(format!(
                "scalar/vector mismatch: live-out {} is {} scalar vs {} vector",
                program.var_name(*v),
                scalar_run.var(*v),
                vector_run.var(*v)
            ));
            return report;
        }
    }
    for i in 0..arrays.len() {
        let a = bind_s.array(i as u32);
        let b = bind_v.array(i as u32);
        if mem_s.snapshot_array(a) != mem_v.snapshot_array(b) {
            report.error = Some(format!(
                "scalar/vector mismatch: array {} differs",
                program.array_name(flexvec_ir::ArraySym(i as u32))
            ));
            return report;
        }
    }

    report.run = Some(FvRun {
        kind: match plan.vectorized.kind {
            VectorizedKind::Traditional => "traditional",
            VectorizedKind::FlexVec => "flexvec",
        },
        scalar_cycles,
        vector_cycles,
        region_speedup: scalar_cycles as f64 / vector_cycles.max(1) as f64,
        stats,
        throughput,
        live_outs,
    });
    report
}

/// Evaluates a batch of `.fv` files in parallel (one worker per file,
/// like the workload harness), preserving input order. All workers
/// share `cache`, so duplicate kernels compile once. The caller's
/// ambient vector length is propagated into each worker thread (the
/// ambient width is thread-local, so a bare spawn would silently reset
/// workers to the default).
pub fn evaluate_fv_all(
    files: &[PathBuf],
    cache: &CompileCache,
    spec: SpecRequest,
    engine: Engine,
    invocations: u64,
) -> Vec<FvReport> {
    let vl = flexvec_isa::vlen();
    std::thread::scope(|scope| {
        let handles: Vec<_> = files
            .iter()
            .map(|path| {
                scope.spawn(move || {
                    flexvec_isa::with_vlen(vl, || {
                        evaluate_fv_file(path, cache, spec, engine, invocations)
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| match h.join() {
                Ok(r) => r,
                Err(panic) => std::panic::resume_unwind(panic),
            })
            .collect()
    })
}

/// Renders the per-kernel result table for `flexvecc run`.
pub fn render_fv_reports(reports: &[FvReport]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<16} {:>12} {:>12} {:>8} {:>6}  verdict\n",
        "kernel", "scalar cyc", "vector cyc", "speedup", "cache"
    ));
    for r in reports {
        let name = if r.kernel.is_empty() {
            r.source.as_str()
        } else {
            r.kernel.as_str()
        };
        match (&r.run, &r.error) {
            (_, Some(_)) => {
                out.push_str(&format!(
                    "{:<16} {:>12} {:>12} {:>8} {:>6}  FAILED\n",
                    name, "-", "-", "-", "-"
                ));
            }
            (Some(run), None) => {
                out.push_str(&format!(
                    "{:<16} {:>12} {:>12} {:>7.2}x {:>6}  {}\n",
                    name,
                    run.scalar_cycles,
                    run.vector_cycles,
                    run.region_speedup,
                    if r.cache_hit { "hit" } else { "miss" },
                    r.verdict
                ));
            }
            (None, None) => {
                out.push_str(&format!(
                    "{:<16} {:>12} {:>12} {:>8} {:>6}  {}\n",
                    name,
                    "-",
                    "-",
                    "-",
                    if r.cache_hit { "hit" } else { "miss" },
                    r.verdict
                ));
            }
        }
    }
    out
}

/// Escapes a string for embedding in a JSON string literal (shared by
/// the report emitters and the `flexvecc fuzz` JSON output).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the reports (plus the cache counters) as a JSON document for
/// `--json` consumers.
pub fn fv_reports_json(reports: &[FvReport], cache: &CompileCache) -> String {
    let mut out = String::from("{\n  \"kernels\": [\n");
    for (i, r) in reports.iter().enumerate() {
        out.push_str("    {");
        out.push_str(&format!("\"source\": \"{}\"", json_escape(&r.source)));
        out.push_str(&format!(", \"kernel\": \"{}\"", json_escape(&r.kernel)));
        out.push_str(&format!(", \"verdict\": \"{}\"", json_escape(&r.verdict)));
        out.push_str(&format!(", \"cache_hit\": {}", r.cache_hit));
        if let Some(e) = &r.error {
            out.push_str(&format!(", \"error\": \"{}\"", json_escape(e)));
        }
        if let Some(run) = &r.run {
            out.push_str(&format!(
                ", \"kind\": \"{}\", \"scalar_cycles\": {}, \"vector_cycles\": {}, \
                 \"region_speedup\": {}, \"chunks\": {}, \"vpl_iterations\": {}",
                run.kind,
                run.scalar_cycles,
                run.vector_cycles,
                crate::flags::json_f64(run.region_speedup),
                run.stats.chunks,
                run.stats.vpl_iterations
            ));
            let lo: Vec<String> = run
                .live_outs
                .iter()
                .map(|(n, v)| format!("\"{}\": {v}", json_escape(n)))
                .collect();
            out.push_str(&format!(", \"live_outs\": {{{}}}", lo.join(", ")));
        }
        out.push('}');
        out.push_str(if i + 1 < reports.len() { ",\n" } else { "\n" });
    }
    let stats = cache.stats();
    out.push_str(&format!(
        "  ],\n  \"cache\": {{\"hits\": {}, \"misses\": {}, \"entries\": {}, \
         \"hit_rate\": {}, \"compiles\": {}}}\n}}\n",
        stats.hits,
        stats.misses,
        stats.entries,
        crate::flags::json_f64(stats.hit_rate()),
        cache.compiles()
    ));
    out
}

/// One line summarizing cache effectiveness for the human-readable
/// output.
pub fn render_cache_line(cache: &CompileCache) -> String {
    let stats = cache.stats();
    format!(
        "compile cache: {} hits / {} lookups ({:.0}% hit rate), {} entries, {} pipeline compiles",
        stats.hits,
        stats.hits + stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries,
        cache.compiles()
    )
}
