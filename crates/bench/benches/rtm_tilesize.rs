//! Criterion wrapper for the RTM tile-size study (experiment E5): runs
//! the h264ref workload under the RTM code path at each tile size and
//! prints the cycle ratio to the first-faulting configuration.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use flexvec::SpecRequest;
use flexvec_workloads::{evaluate, spec};

fn bench_tiles(c: &mut Criterion) {
    let w = spec::h264ref();
    let ff = evaluate(&w, SpecRequest::Auto).expect("evaluates");
    let mut group = c.benchmark_group("rtm_tilesize");
    group.sample_size(10);
    for tile in [16u32, 32, 64, 128, 256, 512, 1024] {
        let rtm = evaluate(&w, SpecRequest::Rtm { tile }).expect("evaluates");
        println!(
            "tile {tile}: {:.3}x of first-faulting cycles",
            rtm.flexvec_cycles as f64 / ff.flexvec_cycles as f64
        );
        group.bench_with_input(BenchmarkId::from_parameter(tile), &tile, |b, &t| {
            b.iter(|| evaluate(&w, SpecRequest::Rtm { tile: t }).expect("evaluates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_tiles);
criterion_main!(benches);
