//! Microbenchmarks of the FlexVec ISA functional model (experiment E7's
//! implementation): throughput of the four new instructions, swept over
//! every supported vector length. The mask patterns are vl-relative —
//! a dense top (all but the low four lanes) and a two-lane sparse
//! survivor pattern — so each width exercises the same shape.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flexvec_isa::{
    kftm_exc, kftm_inc, vpconflictm, vpslctlast, with_vlen, Mask, Vector, SUPPORTED_VLENS,
};

fn bench_isa(c: &mut Criterion) {
    for vl in SUPPORTED_VLENS {
        with_vlen(vl, || {
            // At vl=16 these reproduce the historical 0xfff0 / 0x0880
            // fixed patterns; at other widths they scale with the lane
            // count instead of silently truncating.
            let k2 = Mask::from_bits(!0u64 << 4);
            let k3 = Mask::from_lanes(&[vl / 2 - 1, (3 * vl) / 4 - 1]);
            let v1 = Vector::from_fn(|i| (i as i64 * 7919) % 13);
            let v2 = Vector::from_fn(|i| (i as i64 * 104729) % 13);

            c.bench_function(&format!("kftm_exc/vl{vl}"), |b| {
                b.iter(|| kftm_exc(black_box(k2), black_box(k3)))
            });
            c.bench_function(&format!("kftm_inc/vl{vl}"), |b| {
                b.iter(|| kftm_inc(black_box(k2), black_box(k3)))
            });
            c.bench_function(&format!("vpslctlast/vl{vl}"), |b| {
                b.iter(|| vpslctlast(black_box(k2), black_box(v1)))
            });
            c.bench_function(&format!("vpconflictm/vl{vl}"), |b| {
                b.iter(|| vpconflictm(black_box(k2), black_box(v1), black_box(v2)))
            });
        });
    }
}

criterion_group!(benches, bench_isa);
criterion_main!(benches);
