//! Microbenchmarks of the FlexVec ISA functional model (experiment E7's
//! implementation): throughput of the four new instructions.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flexvec_isa::{kftm_exc, kftm_inc, vpconflictm, vpslctlast, Mask, Vector};

fn bench_isa(c: &mut Criterion) {
    let k2 = Mask::from_bits(0xfff0);
    let k3 = Mask::from_bits(0x0880);
    let v1 = Vector::from_fn(|i| (i as i64 * 7919) % 13);
    let v2 = Vector::from_fn(|i| (i as i64 * 104729) % 13);

    c.bench_function("kftm_exc", |b| {
        b.iter(|| kftm_exc(black_box(k2), black_box(k3)))
    });
    c.bench_function("kftm_inc", |b| {
        b.iter(|| kftm_inc(black_box(k2), black_box(k3)))
    });
    c.bench_function("vpslctlast", |b| {
        b.iter(|| vpslctlast(black_box(k2), black_box(v1)))
    });
    c.bench_function("vpconflictm", |b| {
        b.iter(|| vpconflictm(black_box(k2), black_box(v1), black_box(v2)))
    });
}

criterion_group!(benches, bench_isa);
criterion_main!(benches);
