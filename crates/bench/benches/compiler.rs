//! Compiler-throughput benchmarks: analysis plus code generation for one
//! representative loop per pattern.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use flexvec::{analyze, vectorize, SpecRequest};
use flexvec_workloads::spec;

fn bench_compiler(c: &mut Criterion) {
    let cond_update = spec::h264ref().program;
    let conflict = spec::astar().program;

    c.bench_function("analyze/h264", |b| {
        b.iter(|| analyze(black_box(&cond_update)))
    });
    c.bench_function("analyze/astar", |b| {
        b.iter(|| analyze(black_box(&conflict)))
    });
    c.bench_function("vectorize/h264", |b| {
        b.iter(|| vectorize(black_box(&cond_update), SpecRequest::Auto).expect("vectorizes"))
    });
    c.bench_function("vectorize/astar", |b| {
        b.iter(|| vectorize(black_box(&conflict), SpecRequest::Auto).expect("vectorizes"))
    });
}

criterion_group!(benches, bench_compiler);
criterion_main!(benches);
