//! Execution-engine throughput (experiment for the compiled µop engine
//! and the native x86-64 JIT tier): chunks/s of each engine on the
//! Figure 8 loop shapes — the h264 guarded speculative-load kernel and
//! the gzip early-exit kernel — plus a synthetic straight-line-heavy
//! kernel that is the native tier's best case. Run with `--release`;
//! the compiled engine is expected to be ≥2× the tree walker, and the
//! native tier ≥1.5× the compiled engine on the straight-line kernel.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use flexvec::{vectorize, SpecRequest, Vectorized};
use flexvec_ir::build::*;
use flexvec_mem::AddressSpace;
use flexvec_vm::{
    native_supported, run_vector_precompiled_with_scratch, run_vector_with_engine, Bindings,
    CompiledVProg, CountingSink, Engine, ExecScratch,
};
use flexvec_workloads::{Suite, Workload};

struct Prepared {
    workload: Workload,
    vectorized: Vectorized,
    mem: AddressSpace,
    bindings: Bindings,
}

fn prepare(workload: Workload) -> Prepared {
    let vectorized = vectorize(&workload.program, SpecRequest::Auto).expect("vectorizes");
    let mut mem = AddressSpace::new();
    let ids: Vec<_> = workload
        .arrays
        .iter()
        .enumerate()
        .map(|(i, data)| mem.alloc_from(&format!("{}_{i}", workload.name), data))
        .collect();
    let bindings = Bindings::new(ids);
    Prepared {
        workload,
        vectorized,
        mem,
        bindings,
    }
}

/// A loop whose body is a long unguarded arithmetic chain — the shape
/// that compiles (almost) entirely to inline native code. Not a paper
/// workload; it isolates straight-line dispatch overhead.
fn straight_line() -> Workload {
    let mut b = flexvec_ir::ProgramBuilder::new("straightline");
    let i = b.var("i", 0);
    let acc = b.var("acc", 0);
    let t = b.var("t", 0);
    let data = b.array("data");
    let out = b.array("out");
    b.live_out(acc);
    let idx = || band(var(i), c(1023));
    let body = vec![
        assign(t, add(mul(ld(data, idx()), c(3)), sub(var(i), c(7)))),
        assign(t, band(add(var(t), mul(var(t), c(5))), c(0xffff))),
        assign(t, add(var(t), sub(mul(var(t), c(2)), var(i)))),
        assign(t, band(var(t), c(0xffff))),
        if_(gt(var(t), var(acc)), vec![assign(acc, var(t))]),
        store(out, idx(), var(t)),
    ];
    let program = b.build_loop(i, c(0), c(4096), body).expect("builds");
    let data: Vec<i64> = (0..1024).map(|x: i64| x * 37 % 4099).collect();
    Workload {
        name: "straightline",
        suite: Suite::App,
        coverage: 1.0,
        table2_trip: "4K",
        sim_trip: 4096,
        invocations: 1,
        expected_mix: "",
        program,
        arrays: vec![data, vec![0i64; 1024]],
    }
}

/// Measured chunks/s of one engine over `iters` back-to-back runs. The
/// one-time bytecode (and native) compilation happens outside the timed
/// region, as it would in a real deployment (compile once, run every
/// invocation).
fn chunks_per_sec(
    p: &mut Prepared,
    compiled: &mut Option<(CompiledVProg, ExecScratch)>,
    iters: u32,
) -> f64 {
    let mut chunks = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let mut sink = CountingSink::default();
        let (_, stats) = match compiled {
            Some((c, scratch)) => run_vector_precompiled_with_scratch(
                &p.workload.program,
                &p.vectorized.vprog,
                c,
                scratch,
                &mut p.mem,
                p.bindings.clone(),
                &mut sink,
            )
            .expect("runs"),
            None => run_vector_with_engine(
                &p.workload.program,
                &p.vectorized.vprog,
                &mut p.mem,
                p.bindings.clone(),
                &mut sink,
                Engine::TreeWalking,
            )
            .expect("runs"),
        };
        chunks += stats.chunks;
    }
    chunks as f64 / start.elapsed().as_secs_f64()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_throughput");
    group.sample_size(20);
    for workload in [
        flexvec_workloads::spec::h264ref(),
        flexvec_workloads::apps::gzip(),
        straight_line(),
    ] {
        let name = workload.workload_short_name();
        let mut p = prepare(workload);
        let mut tree_engine = None;
        let mut compiled_engine = {
            let c = CompiledVProg::compile(&p.vectorized.vprog);
            let scratch = c.scratch();
            Some((c, scratch))
        };
        let mut native_engine = native_supported().then(|| {
            let mut c = CompiledVProg::compile(&p.vectorized.vprog);
            assert!(c.enable_native(), "native build must succeed on x86-64");
            let scratch = c.scratch();
            (c, scratch)
        });

        // One-shot ratio report (the acceptance numbers), outside the
        // criterion timing loops.
        let tree = chunks_per_sec(&mut p, &mut tree_engine, 40);
        let comp = chunks_per_sec(&mut p, &mut compiled_engine, 40);
        println!(
            "{name}: tree-walking {tree:.3e} chunks/s, compiled {comp:.3e} chunks/s \
             ({:.2}x)",
            comp / tree
        );
        if let Some((plan, _)) = &native_engine {
            let (segments, inline_ops, helper_ops, code_bytes) = plan.native_info();
            let nat = chunks_per_sec(&mut p, &mut native_engine, 40);
            println!(
                "{name}: native {nat:.3e} chunks/s ({:.2}x over compiled; \
                 {segments} segments, {inline_ops} inline / {helper_ops} helper ops, \
                 {code_bytes} code bytes)",
                nat / comp
            );
        }

        // Width sweep: the bytecode is width-independent, so one
        // compile is re-executed at every supported vector length the
        // kernel's analysis ceiling allows (wider vl → fewer, fatter
        // chunks). One-shot report plus criterion entries per width.
        for vl in flexvec_isa::SUPPORTED_VLENS {
            if vl > p.vectorized.vprog.max_vl {
                println!(
                    "{name}: vl {vl} skipped (width ceiling {})",
                    p.vectorized.vprog.max_vl
                );
                continue;
            }
            flexvec_isa::with_vlen(vl, || {
                let mut engine = {
                    let c = CompiledVProg::compile(&p.vectorized.vprog);
                    let scratch = c.scratch();
                    Some((c, scratch))
                };
                let cps = chunks_per_sec(&mut p, &mut engine, 20);
                println!("{name}: compiled @ vl {vl:>2}: {cps:.3e} chunks/s");
            });
        }
        if name == "straightline" {
            for vl in flexvec_isa::SUPPORTED_VLENS {
                if vl > p.vectorized.vprog.max_vl {
                    continue;
                }
                let mut engine = flexvec_isa::with_vlen(vl, || {
                    let c = CompiledVProg::compile(&p.vectorized.vprog);
                    let scratch = c.scratch();
                    Some((c, scratch))
                });
                group.bench_function(&format!("{name}/compiled/vl{vl}"), |b| {
                    b.iter(|| flexvec_isa::with_vlen(vl, || chunks_per_sec(&mut p, &mut engine, 1)))
                });
            }
        }

        group.bench_function(&format!("{name}/tree-walking"), |b| {
            b.iter(|| chunks_per_sec(&mut p, &mut tree_engine, 1))
        });
        group.bench_function(&format!("{name}/compiled"), |b| {
            b.iter(|| chunks_per_sec(&mut p, &mut compiled_engine, 1))
        });
        if native_engine.is_some() {
            group.bench_function(&format!("{name}/native"), |b| {
                b.iter(|| chunks_per_sec(&mut p, &mut native_engine, 1))
            });
        }
    }
    group.finish();
}

/// Short display name for the bench rows (`464.h264ref` → `h264ref`).
trait ShortName {
    fn workload_short_name(&self) -> &'static str;
}

impl ShortName for Workload {
    fn workload_short_name(&self) -> &'static str {
        self.name
            .rsplit_once('.')
            .map_or(self.name, |(_, tail)| tail)
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
