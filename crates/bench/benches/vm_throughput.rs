//! Execution-engine throughput (experiment for the compiled µop engine):
//! chunks/s of the flat-bytecode compiled engine vs. the tree-walking
//! reference executor on the Figure 8 loop shapes — the h264 guarded
//! speculative-load kernel and the gzip early-exit kernel. Run with
//! `--release`; the compiled engine is expected to be ≥2× the tree
//! walker on both.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use flexvec::{vectorize, SpecRequest, Vectorized};
use flexvec_mem::AddressSpace;
use flexvec_vm::{
    run_vector_precompiled_with_scratch, run_vector_with_engine, Bindings, CompiledVProg,
    CountingSink, Engine, ExecScratch,
};
use flexvec_workloads::Workload;

struct Prepared {
    workload: Workload,
    vectorized: Vectorized,
    mem: AddressSpace,
    bindings: Bindings,
}

fn prepare(workload: Workload) -> Prepared {
    let vectorized = vectorize(&workload.program, SpecRequest::Auto).expect("vectorizes");
    let mut mem = AddressSpace::new();
    let ids: Vec<_> = workload
        .arrays
        .iter()
        .enumerate()
        .map(|(i, data)| mem.alloc_from(&format!("{}_{i}", workload.name), data))
        .collect();
    let bindings = Bindings::new(ids);
    Prepared {
        workload,
        vectorized,
        mem,
        bindings,
    }
}

/// Measured chunks/s of one engine over `iters` back-to-back runs. The
/// one-time bytecode compilation happens outside the timed region, as it
/// would in a real deployment (compile once, run every invocation).
fn chunks_per_sec(
    p: &mut Prepared,
    compiled: &mut Option<(CompiledVProg, ExecScratch)>,
    iters: u32,
) -> f64 {
    let mut chunks = 0u64;
    let start = Instant::now();
    for _ in 0..iters {
        let mut sink = CountingSink::default();
        let (_, stats) = match compiled {
            Some((c, scratch)) => run_vector_precompiled_with_scratch(
                &p.workload.program,
                &p.vectorized.vprog,
                c,
                scratch,
                &mut p.mem,
                p.bindings.clone(),
                &mut sink,
            )
            .expect("runs"),
            None => run_vector_with_engine(
                &p.workload.program,
                &p.vectorized.vprog,
                &mut p.mem,
                p.bindings.clone(),
                &mut sink,
                Engine::TreeWalking,
            )
            .expect("runs"),
        };
        chunks += stats.chunks;
    }
    chunks as f64 / start.elapsed().as_secs_f64()
}

fn bench_engines(c: &mut Criterion) {
    let mut group = c.benchmark_group("vm_throughput");
    group.sample_size(20);
    for workload in [
        flexvec_workloads::spec::h264ref(),
        flexvec_workloads::apps::gzip(),
    ] {
        let name = workload.workload_short_name();
        let mut p = prepare(workload);
        let mut tree_engine = None;
        let mut compiled_engine = {
            let c = CompiledVProg::compile(&p.vectorized.vprog);
            let scratch = c.scratch();
            Some((c, scratch))
        };

        // One-shot ratio report (the acceptance number), outside the
        // criterion timing loops.
        let tree = chunks_per_sec(&mut p, &mut tree_engine, 40);
        let comp = chunks_per_sec(&mut p, &mut compiled_engine, 40);
        println!(
            "{name}: tree-walking {tree:.3e} chunks/s, compiled {comp:.3e} chunks/s \
             ({:.2}x)",
            comp / tree
        );

        group.bench_function(&format!("{name}/tree-walking"), |b| {
            b.iter(|| chunks_per_sec(&mut p, &mut tree_engine, 1))
        });
        group.bench_function(&format!("{name}/compiled"), |b| {
            b.iter(|| chunks_per_sec(&mut p, &mut compiled_engine, 1))
        });
    }
    group.finish();
}

/// Short display name for the bench rows (`464.h264ref` → `h264ref`).
trait ShortName {
    fn workload_short_name(&self) -> &'static str;
}

impl ShortName for Workload {
    fn workload_short_name(&self) -> &'static str {
        self.name
            .rsplit_once('.')
            .map_or(self.name, |(_, tail)| tail)
    }
}

criterion_group!(benches, bench_engines);
criterion_main!(benches);
