//! Criterion wrapper for the Figure 8 applications group (experiment
//! E2). See `fig8_spec.rs` for the measurement split.

use criterion::{criterion_group, criterion_main, Criterion};
use flexvec::SpecRequest;
use flexvec_workloads::{applications, evaluate};

fn bench_apps(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_apps");
    group.sample_size(10);
    for w in applications() {
        let e = evaluate(&w, SpecRequest::Auto).expect("evaluates");
        println!(
            "{}: region {:.2}x, overall {:.3}x",
            w.name, e.region_speedup, e.overall_speedup
        );
        group.bench_function(w.name, |b| {
            b.iter(|| evaluate(&w, SpecRequest::Auto).expect("evaluates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_apps);
criterion_main!(benches);
