//! Criterion wrapper for the Figure 8 SPEC group (experiment E1): times
//! the full baseline-vs-FlexVec evaluation of each SPEC workload. The
//! simulated-cycle numbers themselves come from the `fig8` binary; this
//! bench tracks the wall-clock cost of the reproduction pipeline and
//! prints each workload's speedup once per run.

use criterion::{criterion_group, criterion_main, Criterion};
use flexvec::SpecRequest;
use flexvec_workloads::{evaluate, spec2006};

fn bench_spec(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig8_spec");
    group.sample_size(10);
    for w in spec2006() {
        let e = evaluate(&w, SpecRequest::Auto).expect("evaluates");
        println!(
            "{}: region {:.2}x, overall {:.3}x",
            w.name, e.region_speedup, e.overall_speedup
        );
        group.bench_function(w.name, |b| {
            b.iter(|| evaluate(&w, SpecRequest::Auto).expect("evaluates"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spec);
criterion_main!(benches);
