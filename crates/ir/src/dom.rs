//! Dominator and post-dominator trees (Cooper–Harvey–Kennedy iterative
//! algorithm), plus Ferrante–Ottenstein–Warren control dependence.
//!
//! The FlexVec analysis engine identifies the early-termination pattern as
//! "a false backward control dependence arc from the immediate dominator
//! of an exit statement to the loop header" (paper Section 4.1, Figure 5).
//! Computing control dependence requires post-dominators; both directions
//! share the same fixed-point algorithm, parameterized by edge direction.

use crate::cfg::{BlockId, Cfg};

/// A dominator (or post-dominator) tree over a [`Cfg`].
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b]` is the immediate (post-)dominator of block `b`; `None`
    /// for the root and for unreachable blocks.
    idom: Vec<Option<BlockId>>,
    root: BlockId,
}

impl DomTree {
    /// Computes the dominator tree (rooted at the entry block).
    pub fn dominators(cfg: &Cfg) -> DomTree {
        let order = cfg.reverse_postorder();
        Self::compute(cfg, cfg.entry, &order, |cfg, b| cfg.block(b).preds.clone())
    }

    /// Computes the post-dominator tree (rooted at the exit block).
    pub fn postdominators(cfg: &Cfg) -> DomTree {
        let order = cfg.reverse_postorder_backward();
        Self::compute(cfg, cfg.exit, &order, |cfg, b| cfg.block(b).succs.clone())
    }

    fn compute(
        cfg: &Cfg,
        root: BlockId,
        order: &[BlockId],
        preds_of: impl Fn(&Cfg, BlockId) -> Vec<BlockId>,
    ) -> DomTree {
        let n = cfg.len();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in order.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[root.0 as usize] = Some(root);

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| {
            while a != b {
                while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed");
                }
                while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in order.iter().skip(1) {
                let preds = preds_of(cfg, b);
                let mut new_idom: Option<BlockId> = None;
                for p in preds {
                    if idom[p.0 as usize].is_none() {
                        continue; // unreachable predecessor
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        // The root's idom is conventionally itself during computation;
        // expose it as None.
        idom[root.0 as usize] = None;
        DomTree { idom, root }
    }

    /// The tree root (entry for dominators, exit for post-dominators).
    pub fn root(&self) -> BlockId {
        self.root
    }

    /// Immediate (post-)dominator of `b`, or `None` for the root and
    /// unreachable blocks.
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        if b == self.root {
            None
        } else {
            self.idom[b.0 as usize]
        }
    }

    /// Whether `a` (post-)dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

/// A block-level control dependence: `dependent` executes iff the branch
/// at the end of `branch` takes the edge to `edge_target`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ControlDep {
    /// The block ending in the controlling branch.
    pub branch: BlockId,
    /// The successor of `branch` on the controlling edge (identifies the
    /// polarity: `succs[0]` is the true edge).
    pub edge_target: BlockId,
    /// The control-dependent block.
    pub dependent: BlockId,
}

/// Computes all block-level control dependences by the classic
/// Ferrante–Ottenstein–Warren construction: for each CFG edge `(a, b)`
/// where `b` does not post-dominate `a`, every block on the post-dominator
/// tree path from `b` up to (but excluding) `ipostdom(a)` is control
/// dependent on `a` via that edge.
pub fn control_dependences(cfg: &Cfg, pdom: &DomTree) -> Vec<ControlDep> {
    let mut out = Vec::new();
    for block in &cfg.blocks {
        for &succ in &block.succs {
            if pdom.dominates(succ, block.id) {
                continue;
            }
            let stop = pdom.idom(block.id);
            let mut cur = Some(succ);
            while let Some(c) = cur {
                if Some(c) == stop {
                    break;
                }
                out.push(ControlDep {
                    branch: block.id,
                    edge_target: succ,
                    dependent: c,
                });
                cur = pdom.idom(c);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::ProgramBuilder;

    fn branchy() -> crate::Program {
        // S0: if (a[i] > 5) { S1: x = 1 } else { S2: x = 2 }; S3: y = x
        let mut b = ProgramBuilder::new("branchy");
        let i = b.var("i", 0);
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        let a = b.array("a");
        b.build_loop(
            i,
            c(0),
            c(10),
            vec![
                if_else(
                    gt(ld(a, var(i)), c(5)),
                    vec![assign(x, c(1))],
                    vec![assign(x, c(2))],
                ),
                assign(y, var(x)),
            ],
        )
        .unwrap()
    }

    fn breaking() -> crate::Program {
        let mut b = ProgramBuilder::new("breaking");
        let i = b.var("i", 0);
        let x = b.var("x", 0);
        let a = b.array("a");
        b.build_loop(
            i,
            c(0),
            c(10),
            vec![
                if_(gt(ld(a, var(i)), c(5)), vec![brk()]),
                assign(x, add(var(x), c(1))),
            ],
        )
        .unwrap()
    }

    #[test]
    fn entry_dominates_everything_reachable() {
        let p = branchy();
        let cfg = Cfg::build(&p);
        let dom = DomTree::dominators(&cfg);
        for blk in &cfg.blocks {
            if !cfg.block(blk.id).preds.is_empty() || blk.id == cfg.entry {
                assert!(dom.dominates(cfg.entry, blk.id), "{} not dominated", blk.id);
            }
        }
        assert_eq!(dom.idom(cfg.entry), None);
    }

    #[test]
    fn header_dominates_body_and_latch() {
        let p = branchy();
        let cfg = Cfg::build(&p);
        let dom = DomTree::dominators(&cfg);
        assert!(dom.dominates(cfg.header, cfg.latch));
        for (node, block) in &cfg.block_of {
            let _ = node;
            assert!(dom.dominates(cfg.header, *block));
        }
    }

    #[test]
    fn exit_postdominates_everything() {
        let p = breaking();
        let cfg = Cfg::build(&p);
        let pdom = DomTree::postdominators(&cfg);
        for blk in &cfg.blocks {
            if blk.id == cfg.exit || !blk.preds.is_empty() || blk.id == cfg.entry {
                assert!(
                    pdom.dominates(cfg.exit, blk.id),
                    "{} not post-dominated",
                    blk.id
                );
            }
        }
    }

    #[test]
    fn join_block_not_control_dependent_on_branch() {
        let p = branchy();
        let cfg = Cfg::build(&p);
        let pdom = DomTree::postdominators(&cfg);
        let deps = control_dependences(&cfg, &pdom);
        let cond_block = cfg.block_of(crate::NodeId(0));
        let then_block = cfg.block_of(crate::NodeId(1));
        let else_block = cfg.block_of(crate::NodeId(2));
        let join_block = cfg.block_of(crate::NodeId(3));
        assert!(deps
            .iter()
            .any(|d| d.branch == cond_block && d.dependent == then_block));
        assert!(deps
            .iter()
            .any(|d| d.branch == cond_block && d.dependent == else_block));
        assert!(!deps
            .iter()
            .any(|d| d.branch == cond_block && d.dependent == join_block));
    }

    #[test]
    fn break_makes_loop_body_control_dependent_on_exit_branch() {
        // With a conditional break, the post-body statements and the latch
        // are control dependent on the break's guarding branch — this is
        // the cycle the FlexVec analysis relaxes for early termination.
        let p = breaking();
        let cfg = Cfg::build(&p);
        let pdom = DomTree::postdominators(&cfg);
        let deps = control_dependences(&cfg, &pdom);
        let guard_block = cfg.block_of(crate::NodeId(0)); // the if condition
        let tail_block = cfg.block_of(crate::NodeId(2)); // x = x + 1
        assert!(
            deps.iter()
                .any(|d| d.branch == guard_block && d.dependent == tail_block),
            "tail must be control dependent on the break guard"
        );
        // And the header is control dependent on the guard too (the
        // backward arc of Figure 5): the guard decides whether another
        // iteration happens.
        assert!(
            deps.iter()
                .any(|d| d.branch == guard_block && d.dependent == cfg.header),
            "header must be control dependent on the break guard"
        );
    }

    #[test]
    fn header_controls_body_in_plain_loop() {
        let p = branchy();
        let cfg = Cfg::build(&p);
        let pdom = DomTree::postdominators(&cfg);
        let deps = control_dependences(&cfg, &pdom);
        let body_entry = cfg.block_of(crate::NodeId(0));
        assert!(deps
            .iter()
            .any(|d| d.branch == cfg.header && d.dependent == body_entry));
    }
}
