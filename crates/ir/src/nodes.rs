//! Flattened statement view of a loop.
//!
//! The analysis and code-generation passes iterate over loop statements in
//! lexical order (the paper's Algorithm 1 walks "each loop statement S
//! traversed in topological order", which for structured code is lexical
//! order). This module numbers every statement — including each `if`
//! condition, which is a PDG node of its own (`S1`, `S4`, ... in the
//! paper's figures) — and records, per node, its controlling conditional,
//! scalar defs/uses and memory reads/writes.

use crate::ast::{ArraySym, Expr, Program, Stmt, VarId};

/// Identifies a flattened statement node. Ids are assigned in pre-order,
/// so `NodeId` order is lexical order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl core::fmt::Display for NodeId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "S{}", self.0)
    }
}

/// What a flattened node does.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Scalar assignment.
    Assign {
        /// Destination.
        var: VarId,
        /// Right-hand side.
        value: Expr,
    },
    /// Array store.
    Store {
        /// Destination array.
        array: ArraySym,
        /// Index expression.
        index: Expr,
        /// Value expression.
        value: Expr,
    },
    /// An `if` condition (branch node).
    IfCond {
        /// The condition expression.
        cond: Expr,
    },
    /// `break`.
    Break,
}

/// A flattened statement with its dataflow summary.
#[derive(Clone, Debug)]
pub struct Node {
    /// This node's id (== its index in [`LoopNodes::nodes`]).
    pub id: NodeId,
    /// What the node does.
    pub kind: NodeKind,
    /// The innermost controlling `if` condition node and the branch
    /// polarity (`true` = then-branch), or `None` at loop-body top level.
    pub parent: Option<(NodeId, bool)>,
    /// Scalars defined (at most one).
    pub defs: Vec<VarId>,
    /// Scalars read (in the RHS, condition, or index expressions).
    pub uses: Vec<VarId>,
    /// Memory loads `(array, index expression)` performed by the node.
    pub reads: Vec<(ArraySym, Expr)>,
    /// Memory stores `(array, index expression)` performed by the node.
    pub writes: Vec<(ArraySym, Expr)>,
}

impl Node {
    /// Whether the node has side effects beyond defining a scalar
    /// (stores / control exits).
    pub fn has_side_effect(&self) -> bool {
        matches!(self.kind, NodeKind::Store { .. } | NodeKind::Break)
    }
}

/// The flattened statement list for a program's loop.
#[derive(Clone, Debug)]
pub struct LoopNodes {
    /// All nodes in lexical (pre-order) order.
    pub nodes: Vec<Node>,
}

impl LoopNodes {
    /// Flattens the program's loop body.
    pub fn build(program: &Program) -> Self {
        let mut nodes = Vec::new();
        flatten(&program.loop_.body, None, &mut nodes);
        LoopNodes { nodes }
    }

    /// The node with the given id.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.0 as usize]
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the loop body is empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Iterates over the chain of controlling conditions of `id`, from the
    /// innermost outward: `(cond node, polarity)` pairs.
    pub fn control_chain(&self, id: NodeId) -> Vec<(NodeId, bool)> {
        let mut chain = Vec::new();
        let mut cursor = self.node(id).parent;
        while let Some((cond, pol)) = cursor {
            chain.push((cond, pol));
            cursor = self.node(cond).parent;
        }
        chain
    }

    /// Whether `ancestor` (an `if` condition node) controls `id`, at any
    /// nesting depth.
    pub fn is_controlled_by(&self, id: NodeId, ancestor: NodeId) -> bool {
        self.control_chain(id).iter().any(|(c, _)| *c == ancestor)
    }

    /// All `break` nodes.
    pub fn breaks(&self) -> Vec<NodeId> {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Break))
            .map(|n| n.id)
            .collect()
    }

    /// The direct children of an `if` condition node, in lexical order,
    /// with their polarity.
    pub fn children_of(&self, cond: NodeId) -> Vec<(NodeId, bool)> {
        self.nodes
            .iter()
            .filter_map(|n| match n.parent {
                Some((p, pol)) if p == cond => Some((n.id, pol)),
                _ => None,
            })
            .collect()
    }
}

fn summarize_expr(e: &Expr, uses: &mut Vec<VarId>, reads: &mut Vec<(ArraySym, Expr)>) {
    e.collect_vars(uses);
    e.collect_loads(reads);
}

fn flatten(body: &[Stmt], parent: Option<(NodeId, bool)>, out: &mut Vec<Node>) {
    for stmt in body {
        let id = NodeId(out.len() as u32);
        match stmt {
            Stmt::Assign { var, value } => {
                let mut uses = Vec::new();
                let mut reads = Vec::new();
                summarize_expr(value, &mut uses, &mut reads);
                out.push(Node {
                    id,
                    kind: NodeKind::Assign {
                        var: *var,
                        value: value.clone(),
                    },
                    parent,
                    defs: vec![*var],
                    uses,
                    reads,
                    writes: Vec::new(),
                });
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                let mut uses = Vec::new();
                let mut reads = Vec::new();
                summarize_expr(index, &mut uses, &mut reads);
                summarize_expr(value, &mut uses, &mut reads);
                out.push(Node {
                    id,
                    kind: NodeKind::Store {
                        array: *array,
                        index: index.clone(),
                        value: value.clone(),
                    },
                    parent,
                    defs: Vec::new(),
                    uses,
                    reads,
                    writes: vec![(*array, index.clone())],
                });
            }
            Stmt::If { cond, then_, else_ } => {
                let mut uses = Vec::new();
                let mut reads = Vec::new();
                summarize_expr(cond, &mut uses, &mut reads);
                out.push(Node {
                    id,
                    kind: NodeKind::IfCond { cond: cond.clone() },
                    parent,
                    defs: Vec::new(),
                    uses,
                    reads,
                    writes: Vec::new(),
                });
                flatten(then_, Some((id, true)), out);
                flatten(else_, Some((id, false)), out);
            }
            Stmt::Break => {
                out.push(Node {
                    id,
                    kind: NodeKind::Break,
                    parent,
                    defs: Vec::new(),
                    uses: Vec::new(),
                    reads: Vec::new(),
                    writes: Vec::new(),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::ProgramBuilder;

    fn sample() -> Program {
        // for i in 0..n:
        //   S0: if (a[i] < x) {
        //     S1: x = a[i];
        //     S2: if (x > 0) { S3: break; }
        //     S4: b[x] = i;
        //   } else {
        //     S5: y = y + 1;
        //   }
        let mut b = ProgramBuilder::new("sample");
        let i = b.var("i", 0);
        let n = b.var("n", 100);
        let x = b.var("x", 50);
        let y = b.var("y", 0);
        let a = b.array("a");
        let arr_b = b.array("b");
        b.build_loop(
            i,
            c(0),
            var(n),
            vec![if_else(
                lt(ld(a, var(i)), var(x)),
                vec![
                    assign(x, ld(a, var(i))),
                    if_(gt(var(x), c(0)), vec![brk()]),
                    store(arr_b, var(x), var(i)),
                ],
                vec![assign(y, add(var(y), c(1)))],
            )],
        )
        .unwrap()
    }

    #[test]
    fn flattening_assigns_preorder_ids() {
        let p = sample();
        let nodes = LoopNodes::build(&p);
        assert_eq!(nodes.len(), 6);
        assert!(matches!(
            nodes.node(NodeId(0)).kind,
            NodeKind::IfCond { .. }
        ));
        assert!(matches!(
            nodes.node(NodeId(1)).kind,
            NodeKind::Assign { .. }
        ));
        assert!(matches!(
            nodes.node(NodeId(2)).kind,
            NodeKind::IfCond { .. }
        ));
        assert!(matches!(nodes.node(NodeId(3)).kind, NodeKind::Break));
        assert!(matches!(nodes.node(NodeId(4)).kind, NodeKind::Store { .. }));
        assert!(matches!(
            nodes.node(NodeId(5)).kind,
            NodeKind::Assign { .. }
        ));
    }

    #[test]
    fn parents_and_polarity() {
        let p = sample();
        let nodes = LoopNodes::build(&p);
        assert_eq!(nodes.node(NodeId(0)).parent, None);
        assert_eq!(nodes.node(NodeId(1)).parent, Some((NodeId(0), true)));
        assert_eq!(nodes.node(NodeId(3)).parent, Some((NodeId(2), true)));
        assert_eq!(nodes.node(NodeId(5)).parent, Some((NodeId(0), false)));
    }

    #[test]
    fn control_chain_walks_outward() {
        let p = sample();
        let nodes = LoopNodes::build(&p);
        let chain = nodes.control_chain(NodeId(3));
        assert_eq!(chain, vec![(NodeId(2), true), (NodeId(0), true)]);
        assert!(nodes.is_controlled_by(NodeId(3), NodeId(0)));
        assert!(!nodes.is_controlled_by(NodeId(5), NodeId(2)));
    }

    #[test]
    fn defs_uses_reads_writes() {
        let p = sample();
        let nodes = LoopNodes::build(&p);
        // S1: x = a[i]
        let s1 = nodes.node(NodeId(1));
        assert_eq!(s1.defs, vec![VarId(2)]);
        assert_eq!(s1.uses, vec![VarId(0)]);
        assert_eq!(s1.reads.len(), 1);
        // S4: b[x] = i
        let s4 = nodes.node(NodeId(4));
        assert!(s4.defs.is_empty());
        assert_eq!(s4.writes.len(), 1);
        assert!(s4.has_side_effect());
        assert!(!s1.has_side_effect());
    }

    #[test]
    fn breaks_and_children() {
        let p = sample();
        let nodes = LoopNodes::build(&p);
        assert_eq!(nodes.breaks(), vec![NodeId(3)]);
        assert_eq!(
            nodes.children_of(NodeId(0)),
            vec![
                (NodeId(1), true),
                (NodeId(2), true),
                (NodeId(4), true),
                (NodeId(5), false)
            ]
        );
    }
}
