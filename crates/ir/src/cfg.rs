//! Control-flow graph construction.
//!
//! The paper's analysis (Figure 5) works over the loop's CFG and the
//! program dependence graph derived from it. This module lowers the
//! structured loop into a CFG with dedicated entry, header, latch and exit
//! blocks; `break` statements produce edges straight to the exit block,
//! which is what creates the early-termination cycle in the control
//! dependence graph.

use std::collections::HashMap;

use crate::ast::{Program, Stmt};
use crate::nodes::NodeId;

/// Identifies a basic block.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u32);

impl core::fmt::Display for BlockId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "B{}", self.0)
    }
}

/// Role of a block in the loop skeleton.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BlockRole {
    /// Pre-loop entry.
    Entry,
    /// Loop header holding the trip test `i < end`.
    Header,
    /// Ordinary body block.
    Body,
    /// Back-edge block performing `i++`.
    Latch,
    /// Loop exit.
    Exit,
}

/// A basic block: a run of statement nodes ending in zero, one, or two
/// successors.
#[derive(Clone, Debug)]
pub struct Block {
    /// The block id (index into [`Cfg::blocks`]).
    pub id: BlockId,
    /// Role in the loop skeleton.
    pub role: BlockRole,
    /// Statement nodes in the block, in order. For a block ending in a
    /// branch, the last node is the `if` condition node.
    pub stmts: Vec<NodeId>,
    /// Successor blocks. Two successors means the block ends in a branch:
    /// `succs[0]` is the true edge, `succs[1]` the false edge.
    pub succs: Vec<BlockId>,
    /// Predecessor blocks.
    pub preds: Vec<BlockId>,
}

/// The loop CFG.
#[derive(Clone, Debug)]
pub struct Cfg {
    /// All blocks, indexed by [`BlockId`].
    pub blocks: Vec<Block>,
    /// The entry block.
    pub entry: BlockId,
    /// The loop header (trip test).
    pub header: BlockId,
    /// The latch (`i++`, back edge to header).
    pub latch: BlockId,
    /// The exit block.
    pub exit: BlockId,
    /// Maps each statement node to its containing block.
    pub block_of: HashMap<NodeId, BlockId>,
}

struct Builder {
    blocks: Vec<Block>,
    block_of: HashMap<NodeId, BlockId>,
    next_node: u32,
}

impl Builder {
    fn new_block(&mut self, role: BlockRole) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            id,
            role,
            stmts: Vec::new(),
            succs: Vec::new(),
            preds: Vec::new(),
        });
        id
    }

    fn edge(&mut self, from: BlockId, to: BlockId) {
        self.blocks[from.0 as usize].succs.push(to);
        self.blocks[to.0 as usize].preds.push(from);
    }

    fn push_stmt(&mut self, block: BlockId) -> NodeId {
        let id = NodeId(self.next_node);
        self.next_node += 1;
        self.blocks[block.0 as usize].stmts.push(id);
        self.block_of.insert(id, block);
        id
    }

    /// Lowers a statement list starting in `current`. Returns the block
    /// where control continues afterwards, or `None` if every path breaks
    /// out of the loop.
    fn lower_body(
        &mut self,
        body: &[Stmt],
        mut current: BlockId,
        exit: BlockId,
    ) -> Option<BlockId> {
        for stmt in body {
            match stmt {
                Stmt::Assign { .. } | Stmt::Store { .. } => {
                    self.push_stmt(current);
                }
                Stmt::Break => {
                    self.push_stmt(current);
                    self.edge(current, exit);
                    // Statements after an unconditional break are
                    // unreachable; keep numbering them in a detached block
                    // so NodeIds stay aligned with `LoopNodes`.
                    current = self.new_block(BlockRole::Body);
                    // Note: no edges in or out until something joins.
                }
                Stmt::If { then_, else_, .. } => {
                    // The condition node terminates the current block.
                    self.push_stmt(current);
                    let then_entry = self.new_block(BlockRole::Body);
                    self.edge(current, then_entry);
                    let then_out = self.lower_body(then_, then_entry, exit);

                    let (else_entry, else_out) = if else_.is_empty() {
                        (None, None)
                    } else {
                        let e = self.new_block(BlockRole::Body);
                        self.edge(current, e);
                        (Some(e), self.lower_body(else_, e, exit))
                    };

                    let join = self.new_block(BlockRole::Body);
                    if else_entry.is_none() {
                        // Fall-through false edge goes straight to the join.
                        self.edge(current, join);
                    }
                    if let Some(t) = then_out {
                        self.edge(t, join);
                    }
                    if let Some(e) = else_out {
                        self.edge(e, join);
                    }
                    current = join;
                }
            }
        }
        if self.unreachable(current) {
            None
        } else {
            Some(current)
        }
    }

    /// A body block with no predecessors is dead code (it can only arise
    /// as the continuation after an unconditional `break`).
    fn unreachable(&self, b: BlockId) -> bool {
        let block = &self.blocks[b.0 as usize];
        block.role == BlockRole::Body && block.preds.is_empty()
    }
}

impl Cfg {
    /// Builds the CFG for the program's loop. Statement numbering follows
    /// the same pre-order as [`LoopNodes::build`](crate::LoopNodes::build),
    /// so [`NodeId`]s agree between the two views.
    pub fn build(program: &Program) -> Cfg {
        let mut b = Builder {
            blocks: Vec::new(),
            block_of: HashMap::new(),
            next_node: 0,
        };
        let entry = b.new_block(BlockRole::Entry);
        let header = b.new_block(BlockRole::Header);
        let exit = b.new_block(BlockRole::Exit);
        let latch = b.new_block(BlockRole::Latch);

        b.edge(entry, header);
        // Header: trip test — true edge into the body, false edge to exit.
        let body_entry = b.new_block(BlockRole::Body);
        b.edge(header, body_entry);
        b.edge(header, exit);

        let body_out = b.lower_body(&program.loop_.body, body_entry, exit);
        if let Some(out) = body_out {
            b.edge(out, latch);
        }
        b.edge(latch, header);

        Cfg {
            blocks: b.blocks,
            entry,
            header,
            latch,
            exit,
            block_of: b.block_of,
        }
    }

    /// The block containing a statement node.
    ///
    /// # Panics
    ///
    /// Panics if the node id is unknown.
    pub fn block_of(&self, node: NodeId) -> BlockId {
        self.block_of[&node]
    }

    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the CFG has no blocks (never true for built CFGs).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Reverse postorder over the forward CFG from the entry block.
    pub fn reverse_postorder(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut order = Vec::new();
        self.postorder_from(self.entry, true, &mut visited, &mut order);
        order.reverse();
        order
    }

    /// Reverse postorder over the *reversed* CFG from the exit block.
    pub fn reverse_postorder_backward(&self) -> Vec<BlockId> {
        let mut visited = vec![false; self.blocks.len()];
        let mut order = Vec::new();
        self.postorder_from(self.exit, false, &mut visited, &mut order);
        order.reverse();
        order
    }

    fn postorder_from(
        &self,
        start: BlockId,
        forward: bool,
        visited: &mut [bool],
        out: &mut Vec<BlockId>,
    ) {
        if visited[start.0 as usize] {
            return;
        }
        visited[start.0 as usize] = true;
        let nexts = if forward {
            self.block(start).succs.clone()
        } else {
            self.block(start).preds.clone()
        };
        for n in nexts {
            self.postorder_from(n, forward, visited, out);
        }
        out.push(start);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::{LoopNodes, ProgramBuilder};

    fn straight_line() -> Program {
        let mut b = ProgramBuilder::new("straight");
        let i = b.var("i", 0);
        let x = b.var("x", 0);
        b.build_loop(i, c(0), c(10), vec![assign(x, add(var(x), var(i)))])
            .unwrap()
    }

    fn with_branch_and_break() -> Program {
        let mut b = ProgramBuilder::new("branchy");
        let i = b.var("i", 0);
        let x = b.var("x", 0);
        let a = b.array("a");
        b.build_loop(
            i,
            c(0),
            c(10),
            vec![
                if_(gt(ld(a, var(i)), c(5)), vec![brk()]),
                assign(x, add(var(x), c(1))),
            ],
        )
        .unwrap()
    }

    #[test]
    fn straight_line_shape() {
        let p = straight_line();
        let cfg = Cfg::build(&p);
        // entry -> header -> body -> latch -> header; header -> exit.
        let header = cfg.block(cfg.header);
        assert_eq!(header.succs.len(), 2);
        assert!(header.succs.contains(&cfg.exit));
        let body = cfg.block(cfg.block_of(NodeId(0)));
        assert_eq!(body.succs, vec![cfg.latch]);
        assert_eq!(cfg.block(cfg.latch).succs, vec![cfg.header]);
    }

    #[test]
    fn node_ids_match_loop_nodes() {
        for p in [straight_line(), with_branch_and_break()] {
            let cfg = Cfg::build(&p);
            let nodes = LoopNodes::build(&p);
            for n in &nodes.nodes {
                assert!(
                    cfg.block_of.contains_key(&n.id),
                    "node {} missing from CFG of {}",
                    n.id,
                    p.name
                );
            }
            assert_eq!(cfg.block_of.len(), nodes.len());
        }
    }

    #[test]
    fn break_edges_to_exit() {
        let p = with_branch_and_break();
        let cfg = Cfg::build(&p);
        // The break node's block must have an edge to exit.
        let nodes = LoopNodes::build(&p);
        let brk_node = nodes.breaks()[0];
        let brk_block = cfg.block_of(brk_node);
        assert!(cfg.block(brk_block).succs.contains(&cfg.exit));
        // Exit has at least two predecessors: header and break block.
        assert!(cfg.block(cfg.exit).preds.len() >= 2);
    }

    #[test]
    fn branch_block_has_two_successors() {
        let p = with_branch_and_break();
        let cfg = Cfg::build(&p);
        let cond_block = cfg.block_of(NodeId(0));
        assert_eq!(cfg.block(cond_block).succs.len(), 2);
    }

    #[test]
    fn orders_cover_reachable_blocks() {
        let p = with_branch_and_break();
        let cfg = Cfg::build(&p);
        let fwd = cfg.reverse_postorder();
        assert_eq!(fwd[0], cfg.entry);
        assert!(fwd.contains(&cfg.exit));
        let bwd = cfg.reverse_postorder_backward();
        assert_eq!(bwd[0], cfg.exit);
        assert!(bwd.contains(&cfg.entry));
    }

    #[test]
    fn if_else_joins() {
        let mut b = ProgramBuilder::new("ifelse");
        let i = b.var("i", 0);
        let x = b.var("x", 0);
        let p = b
            .build_loop(
                i,
                c(0),
                c(4),
                vec![
                    if_else(
                        gt(var(i), c(1)),
                        vec![assign(x, c(1))],
                        vec![assign(x, c(2))],
                    ),
                    assign(x, add(var(x), c(1))),
                ],
            )
            .unwrap();
        let cfg = Cfg::build(&p);
        // Join block holds the trailing assignment and has two preds.
        let join = cfg.block_of(NodeId(3));
        assert_eq!(cfg.block(join).preds.len(), 2);
    }
}
