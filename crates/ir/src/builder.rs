//! Ergonomic construction of loop [`Program`]s.
//!
//! Expression and statement helpers live in [`build`]; programs are
//! assembled with [`ProgramBuilder`], which validates the result (the
//! induction variable is never assigned, bounds are loop-invariant, all
//! ids are declared).
//!
//! # Examples
//!
//! The paper's Figure 2(a) loop:
//!
//! ```
//! use flexvec_ir::build::*;
//! use flexvec_ir::ProgramBuilder;
//!
//! let mut p = ProgramBuilder::new("figure2a");
//! let i = p.var("i", 0);
//! let hits = p.var("hits", 1000);
//! let q = p.var("q", 0);
//! let s = p.var("s", 0);
//! let coord = p.var("coord", 0);
//! let pairs_q = p.array("pairs_q");
//! let pairs_s = p.array("pairs_s");
//! let d_arr = p.array("d_arr");
//!
//! let program = p.build_loop(i, c(0), var(hits), vec![
//!     assign(q, ld(pairs_q, var(i))),
//!     assign(s, ld(pairs_s, var(i))),
//!     assign(coord, sub(var(q), var(s))),
//!     if_(ge(var(s), ld(d_arr, var(coord))), vec![
//!         store(d_arr, var(coord), var(s)),
//!     ]),
//! ])?;
//! assert_eq!(program.var_count(), 5);
//! # Ok::<(), flexvec_ir::BuildError>(())
//! ```

use core::fmt;

use crate::ast::{ArrayDecl, ArraySym, Expr, Loop, Program, Stmt, VarDecl, VarId};

/// Free functions for building expressions and statements.
pub mod build {
    use crate::ast::{ArraySym, BinOp, CmpKind, Expr, Stmt, VarId};

    /// Integer constant.
    pub fn c(value: i64) -> Expr {
        Expr::Const(value)
    }

    /// Scalar variable read.
    pub fn var(v: VarId) -> Expr {
        Expr::Var(v)
    }

    /// Array load `array[index]`.
    pub fn ld(array: ArraySym, index: Expr) -> Expr {
        Expr::Load {
            array,
            index: Box::new(index),
        }
    }

    fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    fn cmp(op: CmpKind, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Cmp {
            op,
            lhs: Box::new(lhs),
            rhs: Box::new(rhs),
        }
    }

    /// `lhs + rhs`
    pub fn add(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Add, lhs, rhs)
    }
    /// `lhs - rhs`
    pub fn sub(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Sub, lhs, rhs)
    }
    /// `lhs * rhs`
    pub fn mul(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Mul, lhs, rhs)
    }
    /// `lhs / rhs` (total)
    pub fn div(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Div, lhs, rhs)
    }
    /// `lhs % rhs` (total)
    pub fn rem(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Rem, lhs, rhs)
    }
    /// Bitwise `lhs & rhs`
    pub fn band(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::And, lhs, rhs)
    }
    /// Bitwise `lhs | rhs`
    pub fn bor(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Or, lhs, rhs)
    }
    /// Bitwise `lhs ^ rhs`
    pub fn bxor(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Xor, lhs, rhs)
    }
    /// `lhs << rhs`
    pub fn shl(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Shl, lhs, rhs)
    }
    /// `lhs >> rhs`
    pub fn shr(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Shr, lhs, rhs)
    }
    /// `min(lhs, rhs)`
    pub fn min2(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Min, lhs, rhs)
    }
    /// `max(lhs, rhs)`
    pub fn max2(lhs: Expr, rhs: Expr) -> Expr {
        bin(BinOp::Max, lhs, rhs)
    }
    /// `lhs == rhs`
    pub fn eq(lhs: Expr, rhs: Expr) -> Expr {
        cmp(CmpKind::Eq, lhs, rhs)
    }
    /// `lhs != rhs`
    pub fn ne(lhs: Expr, rhs: Expr) -> Expr {
        cmp(CmpKind::Ne, lhs, rhs)
    }
    /// `lhs < rhs`
    pub fn lt(lhs: Expr, rhs: Expr) -> Expr {
        cmp(CmpKind::Lt, lhs, rhs)
    }
    /// `lhs <= rhs`
    pub fn le(lhs: Expr, rhs: Expr) -> Expr {
        cmp(CmpKind::Le, lhs, rhs)
    }
    /// `lhs > rhs`
    pub fn gt(lhs: Expr, rhs: Expr) -> Expr {
        cmp(CmpKind::Gt, lhs, rhs)
    }
    /// `lhs >= rhs`
    pub fn ge(lhs: Expr, rhs: Expr) -> Expr {
        cmp(CmpKind::Ge, lhs, rhs)
    }
    /// Logical not.
    pub fn not(e: Expr) -> Expr {
        Expr::Not(Box::new(e))
    }

    /// `var = value;`
    pub fn assign(var: VarId, value: Expr) -> Stmt {
        Stmt::Assign { var, value }
    }

    /// `array[index] = value;`
    pub fn store(array: ArraySym, index: Expr, value: Expr) -> Stmt {
        Stmt::Store {
            array,
            index,
            value,
        }
    }

    /// `if (cond) { then_ }`
    pub fn if_(cond: Expr, then_: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_,
            else_: Vec::new(),
        }
    }

    /// `if (cond) { then_ } else { else_ }`
    pub fn if_else(cond: Expr, then_: Vec<Stmt>, else_: Vec<Stmt>) -> Stmt {
        Stmt::If { cond, then_, else_ }
    }

    /// `break;`
    pub fn brk() -> Stmt {
        Stmt::Break
    }
}

/// Error produced when a [`ProgramBuilder`] is finalized with an invalid
/// program.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BuildError {
    /// A variable id does not belong to this builder.
    UnknownVar(VarId),
    /// An array symbol does not belong to this builder.
    UnknownArray(ArraySym),
    /// The induction variable is assigned inside the loop body.
    InductionAssigned(VarId),
    /// A loop bound references a variable assigned inside the body.
    BoundNotInvariant(VarId),
    /// A loop bound contains a memory load.
    BoundHasLoad,
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownVar(v) => write!(f, "unknown variable {v}"),
            BuildError::UnknownArray(a) => write!(f, "unknown array {a}"),
            BuildError::InductionAssigned(v) => {
                write!(f, "induction variable {v} is assigned in the loop body")
            }
            BuildError::BoundNotInvariant(v) => {
                write!(f, "loop bound uses {v}, which is assigned in the body")
            }
            BuildError::BoundHasLoad => write!(f, "loop bounds must not load from memory"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Incrementally declares scalars and arrays, then builds a validated
/// [`Program`]. See the module-level docs for an example.
#[derive(Clone, Debug)]
pub struct ProgramBuilder {
    name: String,
    vars: Vec<VarDecl>,
    arrays: Vec<ArrayDecl>,
    live_out: Vec<VarId>,
}

impl ProgramBuilder {
    /// Starts a new program.
    pub fn new(name: &str) -> Self {
        ProgramBuilder {
            name: name.to_owned(),
            vars: Vec::new(),
            arrays: Vec::new(),
            live_out: Vec::new(),
        }
    }

    /// Declares a scalar with an initial value.
    pub fn var(&mut self, name: &str, init: i64) -> VarId {
        let id = VarId(self.vars.len() as u32);
        self.vars.push(VarDecl {
            name: name.to_owned(),
            init,
        });
        id
    }

    /// Declares an array symbol; concrete storage is bound positionally at
    /// execution time.
    pub fn array(&mut self, name: &str) -> ArraySym {
        let id = ArraySym(self.arrays.len() as u32);
        self.arrays.push(ArrayDecl {
            name: name.to_owned(),
        });
        id
    }

    /// Marks a scalar as a live-out (observable) value.
    pub fn live_out(&mut self, v: VarId) -> &mut Self {
        if !self.live_out.contains(&v) {
            self.live_out.push(v);
        }
        self
    }

    /// Finalizes the program: `for (induction = start; induction < end;
    /// induction++) body`.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] if any id is foreign, the induction
    /// variable is assigned in the body, or a bound is not loop-invariant.
    pub fn build_loop(
        self,
        induction: VarId,
        start: Expr,
        end: Expr,
        body: Vec<Stmt>,
    ) -> Result<Program, BuildError> {
        let program = Program {
            name: self.name,
            vars: self.vars,
            arrays: self.arrays,
            loop_: Loop {
                induction,
                start,
                end,
                body,
            },
            live_out: self.live_out,
        };
        validate(&program)?;
        Ok(program)
    }
}

fn validate(p: &Program) -> Result<(), BuildError> {
    let check_var = |v: VarId| {
        if (v.0 as usize) < p.vars.len() {
            Ok(())
        } else {
            Err(BuildError::UnknownVar(v))
        }
    };
    check_var(p.loop_.induction)?;
    for v in &p.live_out {
        check_var(*v)?;
    }

    // Collect assigned vars and validate all references.
    let mut assigned = Vec::new();
    collect_assigned(&p.loop_.body, &mut assigned);
    for v in &assigned {
        check_var(*v)?;
    }
    if assigned.contains(&p.loop_.induction) {
        return Err(BuildError::InductionAssigned(p.loop_.induction));
    }

    for bound in [&p.loop_.start, &p.loop_.end] {
        if bound.has_load() {
            return Err(BuildError::BoundHasLoad);
        }
        let mut used = Vec::new();
        bound.collect_vars(&mut used);
        for v in used {
            check_var(v)?;
            if assigned.contains(&v) {
                return Err(BuildError::BoundNotInvariant(v));
            }
        }
    }

    validate_body(p, &p.loop_.body)
}

fn collect_assigned(body: &[Stmt], out: &mut Vec<VarId>) {
    for stmt in body {
        match stmt {
            Stmt::Assign { var, .. } => {
                if !out.contains(var) {
                    out.push(*var);
                }
            }
            Stmt::If { then_, else_, .. } => {
                collect_assigned(then_, out);
                collect_assigned(else_, out);
            }
            Stmt::Store { .. } | Stmt::Break => {}
        }
    }
}

fn validate_body(p: &Program, body: &[Stmt]) -> Result<(), BuildError> {
    for stmt in body {
        match stmt {
            Stmt::Assign { var, value } => {
                validate_expr(p, &Expr::Var(*var))?;
                validate_expr(p, value)?;
            }
            Stmt::Store {
                array,
                index,
                value,
            } => {
                if (array.0 as usize) >= p.arrays.len() {
                    return Err(BuildError::UnknownArray(*array));
                }
                validate_expr(p, index)?;
                validate_expr(p, value)?;
            }
            Stmt::If { cond, then_, else_ } => {
                validate_expr(p, cond)?;
                validate_body(p, then_)?;
                validate_body(p, else_)?;
            }
            Stmt::Break => {}
        }
    }
    Ok(())
}

fn validate_expr(p: &Program, e: &Expr) -> Result<(), BuildError> {
    let mut vars = Vec::new();
    e.collect_vars(&mut vars);
    for v in vars {
        if (v.0 as usize) >= p.vars.len() {
            return Err(BuildError::UnknownVar(v));
        }
    }
    let mut loads = Vec::new();
    e.collect_loads(&mut loads);
    for (a, _) in loads {
        if (a.0 as usize) >= p.arrays.len() {
            return Err(BuildError::UnknownArray(a));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::build::*;
    use super::*;

    #[test]
    fn builds_simple_loop() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i", 0);
        let n = b.var("n", 10);
        let a = b.array("a");
        let p = b
            .build_loop(i, c(0), var(n), vec![store(a, var(i), mul(var(i), c(2)))])
            .unwrap();
        assert_eq!(p.name, "t");
        assert!(p.to_string().contains("a[i] = (i * 2);"));
    }

    #[test]
    fn rejects_assigned_induction() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i", 0);
        let err = b
            .build_loop(i, c(0), c(4), vec![assign(i, c(0))])
            .unwrap_err();
        assert_eq!(err, BuildError::InductionAssigned(i));
    }

    #[test]
    fn rejects_varying_bound() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i", 0);
        let x = b.var("x", 3);
        let err = b
            .build_loop(i, c(0), var(x), vec![assign(x, c(0))])
            .unwrap_err();
        assert_eq!(err, BuildError::BoundNotInvariant(x));
    }

    #[test]
    fn rejects_bound_with_load() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i", 0);
        let a = b.array("a");
        let err = b.build_loop(i, c(0), ld(a, c(0)), vec![]).unwrap_err();
        assert_eq!(err, BuildError::BoundHasLoad);
    }

    #[test]
    fn rejects_foreign_ids() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i", 0);
        let err = b
            .build_loop(i, c(0), c(4), vec![assign(VarId(9), c(0))])
            .unwrap_err();
        assert_eq!(err, BuildError::UnknownVar(VarId(9)));

        let mut b2 = ProgramBuilder::new("t");
        let i2 = b2.var("i", 0);
        let err2 = b2
            .build_loop(i2, c(0), c(4), vec![store(ArraySym(3), c(0), c(0))])
            .unwrap_err();
        assert_eq!(err2, BuildError::UnknownArray(ArraySym(3)));
    }

    #[test]
    fn live_out_dedups() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i", 0);
        let x = b.var("x", 0);
        b.live_out(x);
        b.live_out(x);
        let p = b
            .build_loop(i, c(0), c(1), vec![assign(x, var(i))])
            .unwrap();
        assert_eq!(p.live_out, vec![x]);
    }

    #[test]
    fn if_else_and_break_print() {
        let mut b = ProgramBuilder::new("t");
        let i = b.var("i", 0);
        let x = b.var("x", 0);
        let p = b
            .build_loop(
                i,
                c(0),
                c(8),
                vec![if_else(
                    gt(var(i), c(3)),
                    vec![brk()],
                    vec![assign(x, add(var(x), c(1)))],
                )],
            )
            .unwrap();
        let text = p.to_string();
        assert!(text.contains("break;"));
        assert!(text.contains("} else {"));
    }
}
