//! Strongly connected components (Tarjan) over the PDG.
//!
//! "Instructions involved in a strongly connected component are generally
//! deemed not vectorizable unless the SCC can be reduced to a recurrence
//! ... or eliminated" (paper Section 3). The FlexVec analysis removes
//! believed-infrequent edges and re-runs SCC detection; this module
//! provides the detector, parameterized by an edge filter so callers can
//! ask "what cycles remain if I ignore these edges?".

use crate::nodes::NodeId;
use crate::pdg::{DepEdge, Pdg};

/// A strongly connected component: the member nodes in ascending id order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Scc {
    /// Member statement nodes.
    pub nodes: Vec<NodeId>,
    /// Whether the component contains a cycle (more than one node, or a
    /// self edge).
    pub cyclic: bool,
}

/// Computes the SCCs of the PDG restricted to edges accepted by `filter`.
/// Components are returned in reverse topological order of the condensed
/// graph (Tarjan's natural output order: callees before callers).
pub fn sccs_filtered(pdg: &Pdg, filter: impl Fn(&DepEdge) -> bool) -> Vec<Scc> {
    let n = pdg.node_count;
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    let mut self_loop = vec![false; n];
    for e in &pdg.edges {
        if !filter(e) {
            continue;
        }
        let (f, t) = (e.from.0 as usize, e.to.0 as usize);
        if f == t {
            self_loop[f] = true;
        } else if !adj[f].contains(&t) {
            adj[f].push(t);
        }
    }

    // Iterative Tarjan.
    #[derive(Clone, Copy)]
    struct Frame {
        v: usize,
        edge: usize,
    }
    let mut index = vec![usize::MAX; n];
    let mut low = vec![0usize; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<usize> = Vec::new();
    let mut next_index = 0usize;
    let mut out = Vec::new();

    for root in 0..n {
        if index[root] != usize::MAX {
            continue;
        }
        let mut call: Vec<Frame> = vec![Frame { v: root, edge: 0 }];
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root] = true;

        while let Some(frame) = call.last_mut() {
            let v = frame.v;
            if frame.edge < adj[v].len() {
                let w = adj[v][frame.edge];
                frame.edge += 1;
                if index[w] == usize::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w] = true;
                    call.push(Frame { v: w, edge: 0 });
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                if low[v] == index[v] {
                    let mut members = Vec::new();
                    while let Some(w) = stack.pop() {
                        on_stack[w] = false;
                        members.push(NodeId(w as u32));
                        if w == v {
                            break;
                        }
                    }
                    members.sort();
                    let cyclic = members.len() > 1 || self_loop[v];
                    out.push(Scc {
                        nodes: members,
                        cyclic,
                    });
                }
                call.pop();
                if let Some(parent) = call.last() {
                    let pv = parent.v;
                    low[pv] = low[pv].min(low[v]);
                }
            }
        }
    }
    out
}

/// Computes the SCCs of the full PDG.
pub fn sccs(pdg: &Pdg) -> Vec<Scc> {
    sccs_filtered(pdg, |_| true)
}

/// The cyclic SCCs only.
pub fn cyclic_sccs(pdg: &Pdg) -> Vec<Scc> {
    sccs(pdg).into_iter().filter(|s| s.cyclic).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pdg::DepKind;

    fn pdg_from(n: usize, arcs: &[(u32, u32)]) -> Pdg {
        Pdg {
            node_count: n,
            edges: arcs
                .iter()
                .map(|&(f, t)| DepEdge {
                    from: NodeId(f),
                    to: NodeId(t),
                    kind: DepKind::Control { polarity: true },
                })
                .collect(),
        }
    }

    #[test]
    fn acyclic_graph_yields_singletons() {
        let pdg = pdg_from(4, &[(0, 1), (1, 2), (2, 3)]);
        let comps = sccs(&pdg);
        assert_eq!(comps.len(), 4);
        assert!(comps.iter().all(|c| !c.cyclic && c.nodes.len() == 1));
        assert!(cyclic_sccs(&pdg).is_empty());
    }

    #[test]
    fn simple_cycle() {
        let pdg = pdg_from(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let cyc = cyclic_sccs(&pdg);
        assert_eq!(cyc.len(), 1);
        assert_eq!(cyc[0].nodes, vec![NodeId(0), NodeId(1), NodeId(2)]);
    }

    #[test]
    fn self_loop_is_cyclic() {
        let pdg = pdg_from(2, &[(0, 0), (0, 1)]);
        let cyc = cyclic_sccs(&pdg);
        assert_eq!(cyc.len(), 1);
        assert_eq!(cyc[0].nodes, vec![NodeId(0)]);
    }

    #[test]
    fn two_disjoint_cycles() {
        let pdg = pdg_from(5, &[(0, 1), (1, 0), (2, 3), (3, 2), (3, 4)]);
        let cyc = cyclic_sccs(&pdg);
        assert_eq!(cyc.len(), 2);
    }

    #[test]
    fn filtering_breaks_cycles() {
        let pdg = pdg_from(3, &[(0, 1), (1, 2), (2, 0)]);
        assert_eq!(cyclic_sccs(&pdg).len(), 1);
        // Remove the back edge 2 -> 0: the cycle disappears.
        let comps = sccs_filtered(&pdg, |e| !(e.from == NodeId(2) && e.to == NodeId(0)));
        assert!(comps.iter().all(|c| !c.cyclic));
    }

    #[test]
    fn reverse_topological_order() {
        let pdg = pdg_from(3, &[(0, 1), (1, 2)]);
        let comps = sccs(&pdg);
        // Tarjan emits sinks first.
        let pos = |id: u32| {
            comps
                .iter()
                .position(|c| c.nodes.contains(&NodeId(id)))
                .unwrap()
        };
        assert!(pos(2) < pos(1));
        assert!(pos(1) < pos(0));
    }

    #[test]
    fn deep_chain_does_not_overflow() {
        // 10_000-node chain exercises the iterative implementation.
        let arcs: Vec<(u32, u32)> = (0..9999).map(|i| (i, i + 1)).collect();
        let pdg = pdg_from(10_000, &arcs);
        assert_eq!(sccs(&pdg).len(), 10_000);
    }
}
