//! Program dependence graph construction (Ferrante–Ottenstein–Warren
//! style, paper Figure 5(c)/6(c)/7(c)).
//!
//! The PDG's nodes are the flattened loop statements ([`NodeId`]); its
//! edges carry control dependences (including the backward arc a `break`
//! induces from its guard to the whole loop) and data dependences —
//! scalar flow/anti/output, both same-iteration and loop-carried, and
//! memory dependences classified by the affine tester. Loop-carried edges
//! whose distance cannot be resolved statically are marked *dynamic*;
//! those are the edges FlexVec's analysis relaxes.

use crate::affine::{classify_index, dependence, DepDistance, IndexForm};
use crate::ast::{ArraySym, Program, VarId};
use crate::nodes::{LoopNodes, NodeId};

/// Kind of memory dependence.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemDepKind {
    /// Read after write (flow).
    Raw,
    /// Write after read (anti).
    War,
    /// Write after write (output).
    Waw,
}

/// Kind of a PDG edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DepKind {
    /// `from` is an `if` condition controlling `to` with the given branch
    /// polarity.
    Control {
        /// `true` if `to` is in the then-branch.
        polarity: bool,
    },
    /// Backward control arc from a `break`'s guarding condition to every
    /// loop statement: whether iteration `i+1` runs at all depends on the
    /// guard in iteration `i` (Figure 5's S4 → S1 arc).
    ControlExit,
    /// Scalar flow dependence (def → use).
    ScalarFlow {
        /// The variable.
        var: VarId,
        /// `true` when the use reads the value from a previous iteration.
        carried: bool,
    },
    /// Scalar anti dependence (use → later def).
    ScalarAnti {
        /// The variable.
        var: VarId,
        /// Loop-carried?
        carried: bool,
    },
    /// Scalar output dependence (def → later def).
    ScalarOutput {
        /// The variable.
        var: VarId,
        /// Loop-carried?
        carried: bool,
    },
    /// Memory dependence between two accesses of one array.
    Memory {
        /// The array.
        array: ArraySym,
        /// Flow, anti, or output.
        kind: MemDepKind,
        /// Statically known distance, when the tester resolved one
        /// (`None` for same-iteration edges).
        distance: Option<i64>,
        /// Loop-carried?
        carried: bool,
        /// `true` when the dependence can only be disambiguated at
        /// runtime (indirect or opaque index) — a FlexVec candidate edge.
        dynamic: bool,
    },
}

impl DepKind {
    /// Whether the edge crosses iterations.
    pub fn is_carried(&self) -> bool {
        match self {
            DepKind::Control { .. } => false,
            DepKind::ControlExit => true,
            DepKind::ScalarFlow { carried, .. }
            | DepKind::ScalarAnti { carried, .. }
            | DepKind::ScalarOutput { carried, .. }
            | DepKind::Memory { carried, .. } => *carried,
        }
    }
}

/// A PDG edge.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DepEdge {
    /// Source node.
    pub from: NodeId,
    /// Sink node.
    pub to: NodeId,
    /// Dependence kind.
    pub kind: DepKind,
}

/// The program dependence graph of a loop.
#[derive(Clone, Debug)]
pub struct Pdg {
    /// Number of statement nodes.
    pub node_count: usize,
    /// All dependence edges.
    pub edges: Vec<DepEdge>,
}

impl Pdg {
    /// Builds the PDG for a program's loop from its flattened nodes.
    pub fn build(program: &Program, nodes: &LoopNodes) -> Pdg {
        let mut edges = Vec::new();
        control_edges(nodes, &mut edges);
        scalar_edges(nodes, &mut edges);
        memory_edges(program, nodes, &mut edges);
        Pdg {
            node_count: nodes.len(),
            edges,
        }
    }

    /// Edges outgoing from `n`, optionally filtered.
    pub fn edges_from(&self, n: NodeId) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.from == n)
    }

    /// Edges incoming to `n`.
    pub fn edges_to(&self, n: NodeId) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(move |e| e.to == n)
    }

    /// All loop-carried edges.
    pub fn carried_edges(&self) -> impl Iterator<Item = &DepEdge> {
        self.edges.iter().filter(|e| e.kind.is_carried())
    }
}

fn control_edges(nodes: &LoopNodes, edges: &mut Vec<DepEdge>) {
    // Structural control dependence: innermost `if` → statement. (On this
    // structured IR the Ferrante–Ottenstein–Warren computation over the
    // CFG yields exactly these edges for break-free code; `flexvec-ir`'s
    // tests cross-check the two.)
    for node in &nodes.nodes {
        if let Some((cond, polarity)) = node.parent {
            edges.push(DepEdge {
                from: cond,
                to: node.id,
                kind: DepKind::Control { polarity },
            });
        }
    }
    // Early exit: the break's guard controls whether the *next* iteration
    // executes at all — a backward control arc to every statement.
    for brk in nodes.breaks() {
        if let Some((guard, _)) = nodes.node(brk).parent {
            for node in &nodes.nodes {
                if node.id != brk {
                    edges.push(DepEdge {
                        from: guard,
                        to: node.id,
                        kind: DepKind::ControlExit,
                    });
                }
            }
        }
    }
}

fn scalar_edges(nodes: &LoopNodes, edges: &mut Vec<DepEdge>) {
    // Group defs and uses per variable.
    let mut vars: Vec<VarId> = Vec::new();
    for n in &nodes.nodes {
        for v in n.defs.iter().chain(n.uses.iter()) {
            if !vars.contains(v) {
                vars.push(*v);
            }
        }
    }

    for v in vars {
        let defs: Vec<NodeId> = nodes
            .nodes
            .iter()
            .filter(|n| n.defs.contains(&v))
            .map(|n| n.id)
            .collect();
        let uses: Vec<NodeId> = nodes
            .nodes
            .iter()
            .filter(|n| n.uses.contains(&v))
            .map(|n| n.id)
            .collect();
        if defs.is_empty() {
            continue; // live-in invariant: no dependences to track
        }

        // A use reads the iteration-entry value unless a def that
        // *dominates* it precedes it lexically: the def executes whenever
        // the use does, i.e. the def's control chain is a subset of the
        // use's. (A def guarded by a condition the use is not under may
        // not execute, so the stale value can flow through — the
        // conditional-update pattern.)
        let dominating_def_before = |u: NodeId| {
            let use_chain = nodes.control_chain(u);
            defs.iter().any(|d| {
                d.0 < u.0
                    && nodes
                        .control_chain(*d)
                        .iter()
                        .all(|link| use_chain.contains(link))
            })
        };

        for &d in &defs {
            for &u in &uses {
                if d.0 < u.0 {
                    // Same-iteration flow (may-reach; a later redefinition
                    // between them would kill it, which the conservative
                    // builder ignores).
                    edges.push(DepEdge {
                        from: d,
                        to: u,
                        kind: DepKind::ScalarFlow {
                            var: v,
                            carried: false,
                        },
                    });
                }
                // Loop-carried flow: the def escapes the iteration and the
                // use can observe it next iteration.
                if !dominating_def_before(u) {
                    edges.push(DepEdge {
                        from: d,
                        to: u,
                        kind: DepKind::ScalarFlow {
                            var: v,
                            carried: true,
                        },
                    });
                }
                // Anti dependences: use before def in the same iteration,
                // and use in iteration i vs def in iteration i+1.
                if u.0 <= d.0 {
                    edges.push(DepEdge {
                        from: u,
                        to: d,
                        kind: DepKind::ScalarAnti {
                            var: v,
                            carried: false,
                        },
                    });
                } else {
                    edges.push(DepEdge {
                        from: u,
                        to: d,
                        kind: DepKind::ScalarAnti {
                            var: v,
                            carried: true,
                        },
                    });
                }
            }
        }
        // Output dependences between distinct defs (and a def with itself
        // across iterations).
        for &d1 in &defs {
            for &d2 in &defs {
                if d1.0 < d2.0 {
                    edges.push(DepEdge {
                        from: d1,
                        to: d2,
                        kind: DepKind::ScalarOutput {
                            var: v,
                            carried: false,
                        },
                    });
                } else if d1 == d2 && nodes.node(d1).parent.is_some() {
                    edges.push(DepEdge {
                        from: d1,
                        to: d2,
                        kind: DepKind::ScalarOutput {
                            var: v,
                            carried: true,
                        },
                    });
                }
            }
        }
    }
}

fn memory_edges(program: &Program, nodes: &LoopNodes, edges: &mut Vec<DepEdge>) {
    let induction = program.loop_.induction;
    let mut assigned: Vec<VarId> = Vec::new();
    for n in &nodes.nodes {
        for v in &n.defs {
            if !assigned.contains(v) {
                assigned.push(*v);
            }
        }
    }
    let classify = |e: &crate::ast::Expr| classify_index(e, induction, &assigned);

    // Collect all accesses: (node, array, index form, is_write).
    struct Access {
        node: NodeId,
        array: ArraySym,
        form: IndexForm,
        write: bool,
    }
    let mut accesses = Vec::new();
    for n in &nodes.nodes {
        for (array, idx) in &n.reads {
            accesses.push(Access {
                node: n.id,
                array: *array,
                form: classify(idx),
                write: false,
            });
        }
        for (array, idx) in &n.writes {
            accesses.push(Access {
                node: n.id,
                array: *array,
                form: classify(idx),
                write: true,
            });
        }
    }

    for src in &accesses {
        for dst in &accesses {
            if !src.write && !dst.write {
                continue; // read-read
            }
            if src.array != dst.array {
                continue;
            }
            let kind = match (src.write, dst.write) {
                (true, false) => MemDepKind::Raw,
                (false, true) => MemDepKind::War,
                (true, true) => MemDepKind::Waw,
                (false, false) => unreachable!(),
            };
            match dependence(&src.form, &dst.form) {
                DepDistance::None => {}
                DepDistance::SameIteration => {
                    // Ordered by lexical position within one iteration.
                    if src.node.0 < dst.node.0 {
                        edges.push(DepEdge {
                            from: src.node,
                            to: dst.node,
                            kind: DepKind::Memory {
                                array: src.array,
                                kind,
                                distance: None,
                                carried: false,
                                dynamic: false,
                            },
                        });
                    }
                }
                DepDistance::Carried(d) => edges.push(DepEdge {
                    from: src.node,
                    to: dst.node,
                    kind: DepKind::Memory {
                        array: src.array,
                        kind,
                        distance: Some(d),
                        carried: true,
                        dynamic: false,
                    },
                }),
                DepDistance::Unknown => {
                    // Runtime-dependent: conservatively both same-iteration
                    // (lexical order) and carried. Deduplicate identical
                    // node pairs below via the carried edge only.
                    edges.push(DepEdge {
                        from: src.node,
                        to: dst.node,
                        kind: DepKind::Memory {
                            array: src.array,
                            kind,
                            distance: None,
                            carried: true,
                            dynamic: true,
                        },
                    });
                }
            }
        }
    }
    // Deduplicate exact repeats (same node can have several loads with the
    // same classification).
    edges.dedup();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;
    use crate::ProgramBuilder;

    /// Figure 2(a): indirect store/load on d_arr through a computed coord.
    fn figure2a() -> Program {
        let mut b = ProgramBuilder::new("figure2a");
        let i = b.var("i", 0);
        let hits = b.var("hits", 64);
        let q = b.var("q", 0);
        let s = b.var("s", 0);
        let coord = b.var("coord", 0);
        let pairs_q = b.array("pairs_q");
        let pairs_s = b.array("pairs_s");
        let d_arr = b.array("d_arr");
        b.build_loop(
            i,
            c(0),
            var(hits),
            vec![
                assign(q, ld(pairs_q, var(i))),
                assign(s, ld(pairs_s, var(i))),
                assign(coord, sub(var(q), var(s))),
                if_(
                    ge(var(s), ld(d_arr, var(coord))),
                    vec![store(d_arr, var(coord), var(s))],
                ),
            ],
        )
        .unwrap()
    }

    /// The h264ref-style conditional scalar update (Section 1.1).
    fn cond_update() -> Program {
        let mut b = ProgramBuilder::new("cond_update");
        let pos = b.var("pos", 0);
        let max_pos = b.var("max_pos", 64);
        let mcost = b.var("mcost", 0);
        let min_mcost = b.var("min_mcost", 1 << 20);
        let block_sad = b.array("block_sad");
        b.live_out(min_mcost);
        b.build_loop(
            pos,
            c(0),
            var(max_pos),
            vec![if_(
                lt(ld(block_sad, var(pos)), var(min_mcost)),
                vec![
                    assign(mcost, ld(block_sad, var(pos))),
                    if_(
                        lt(var(mcost), var(min_mcost)),
                        vec![assign(min_mcost, var(mcost))],
                    ),
                ],
            )],
        )
        .unwrap()
    }

    #[test]
    fn dynamic_memory_edge_detected() {
        let p = figure2a();
        let nodes = LoopNodes::build(&p);
        let pdg = Pdg::build(&p, &nodes);
        // The store (node 4) has a dynamic RAW edge to the guard's load
        // (node 3) across iterations.
        let dynamic: Vec<_> = pdg
            .edges
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    DepKind::Memory {
                        dynamic: true,
                        kind: MemDepKind::Raw,
                        ..
                    }
                )
            })
            .collect();
        assert!(
            dynamic
                .iter()
                .any(|e| e.from == NodeId(4) && e.to == NodeId(3)),
            "expected store->load dynamic RAW, got {dynamic:?}"
        );
    }

    #[test]
    fn conditional_update_has_carried_scalar_flow() {
        let p = cond_update();
        let nodes = LoopNodes::build(&p);
        let pdg = Pdg::build(&p, &nodes);
        // min_mcost: def at node 3, uses at nodes 0 and 2 — carried flow
        // back to both (the def is conditional).
        let carried: Vec<_> = pdg
            .edges
            .iter()
            .filter(
                |e| matches!(e.kind, DepKind::ScalarFlow { var, carried: true } if var == VarId(3)),
            )
            .collect();
        assert!(carried
            .iter()
            .any(|e| e.from == NodeId(3) && e.to == NodeId(0)));
        assert!(carried
            .iter()
            .any(|e| e.from == NodeId(3) && e.to == NodeId(2)));
    }

    #[test]
    fn unconditional_def_kills_carried_flow() {
        // q = pairs_q[i] is unconditional: its later uses never see the
        // previous iteration's value.
        let p = figure2a();
        let nodes = LoopNodes::build(&p);
        let pdg = Pdg::build(&p, &nodes);
        assert!(!pdg.edges.iter().any(|e| {
            matches!(e.kind, DepKind::ScalarFlow { var, carried: true } if var == VarId(2))
        }));
    }

    #[test]
    fn control_edges_present() {
        let p = cond_update();
        let nodes = LoopNodes::build(&p);
        let pdg = Pdg::build(&p, &nodes);
        assert!(pdg.edges.iter().any(|e| e.from == NodeId(0)
            && e.to == NodeId(1)
            && matches!(e.kind, DepKind::Control { polarity: true })));
        assert!(pdg
            .edges
            .iter()
            .any(|e| e.from == NodeId(2) && e.to == NodeId(3)));
    }

    #[test]
    fn break_guard_gets_exit_edges() {
        let mut b = ProgramBuilder::new("brk");
        let i = b.var("i", 0);
        let x = b.var("x", 0);
        let a = b.array("a");
        let p = b
            .build_loop(
                i,
                c(0),
                c(10),
                vec![assign(x, ld(a, var(i))), if_(gt(var(x), c(5)), vec![brk()])],
            )
            .unwrap();
        let nodes = LoopNodes::build(&p);
        let pdg = Pdg::build(&p, &nodes);
        // Guard is node 1; it must have ControlExit edges to node 0 (the
        // load feeding it) — the Figure 5 cycle.
        assert!(pdg
            .edges
            .iter()
            .any(|e| e.from == NodeId(1) && e.to == NodeId(0) && e.kind == DepKind::ControlExit));
    }

    #[test]
    fn static_carried_distance_resolved() {
        // a[i] = a[i-4] + 1: carried RAW with distance 4, not dynamic.
        let mut b = ProgramBuilder::new("dist4");
        let i = b.var("i", 4);
        let a = b.array("a");
        let t = b.var("t", 0);
        let p = b
            .build_loop(
                i,
                c(4),
                c(64),
                vec![
                    assign(t, add(ld(a, sub(var(i), c(4))), c(1))),
                    store(a, var(i), var(t)),
                ],
            )
            .unwrap();
        let nodes = LoopNodes::build(&p);
        let pdg = Pdg::build(&p, &nodes);
        assert!(pdg.edges.iter().any(|e| {
            e.from == NodeId(1)
                && e.to == NodeId(0)
                && matches!(
                    e.kind,
                    DepKind::Memory {
                        kind: MemDepKind::Raw,
                        distance: Some(4),
                        carried: true,
                        dynamic: false,
                        ..
                    }
                )
        }));
    }

    #[test]
    fn disjoint_arrays_no_edges() {
        let mut b = ProgramBuilder::new("disjoint");
        let i = b.var("i", 0);
        let a = b.array("a");
        let bb = b.array("b");
        let t = b.var("t", 0);
        let p = b
            .build_loop(
                i,
                c(0),
                c(16),
                vec![assign(t, ld(a, var(i))), store(bb, var(i), var(t))],
            )
            .unwrap();
        let nodes = LoopNodes::build(&p);
        let pdg = Pdg::build(&p, &nodes);
        assert!(!pdg
            .edges
            .iter()
            .any(|e| matches!(e.kind, DepKind::Memory { .. })));
    }
}
