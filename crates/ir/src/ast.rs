//! The loop AST.
//!
//! FlexVec's code generation is "implemented as a pass in a high-level,
//! AST-like IR that feeds into the vector code generation module" (paper
//! Section 4). This module defines that IR: a single countable loop
//! (`for (i = start; i < end; i++)`) over scalar variables and arrays,
//! with structured conditionals and early exits — rich enough to express
//! all three FlexVec loop patterns (early termination, conditional scalar
//! update, runtime memory dependencies) and the paper's example loops.
//!
//! All values are `i64`; arrays are symbolic ([`ArraySym`]) and bound to
//! concrete storage by the execution engine.

use core::fmt;

/// Identifies a scalar variable declared in a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u32);

/// Identifies an array symbol declared in a [`Program`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArraySym(pub u32);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for ArraySym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// Binary arithmetic/logical operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Truncating division (total: `x/0 == 0`).
    Div,
    /// Remainder (total: `x%0 == 0`).
    Rem,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left (counts outside `0..64` give 0).
    Shl,
    /// Arithmetic shift right (saturating count).
    Shr,
    /// Signed minimum.
    Min,
    /// Signed maximum.
    Max,
}

impl BinOp {
    /// Evaluates the operator on scalars with the IR's total semantics
    /// (identical to the lane semantics in `flexvec-isa`).
    pub fn eval(self, a: i64, b: i64) -> i64 {
        match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
            BinOp::Rem => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_rem(b)
                }
            }
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
            BinOp::Shl => {
                if (0..64).contains(&b) {
                    ((a as u64) << b) as i64
                } else {
                    0
                }
            }
            BinOp::Shr => {
                if (0..64).contains(&b) {
                    a >> b
                } else if a < 0 {
                    -1
                } else {
                    0
                }
            }
            BinOp::Min => a.min(b),
            BinOp::Max => a.max(b),
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Rem => "%",
            BinOp::And => "&",
            BinOp::Or => "|",
            BinOp::Xor => "^",
            BinOp::Shl => "<<",
            BinOp::Shr => ">>",
            BinOp::Min => "min",
            BinOp::Max => "max",
        })
    }
}

/// Comparison operators (produce 0 or 1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CmpKind {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
}

impl CmpKind {
    /// Evaluates the comparison.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpKind::Eq => a == b,
            CmpKind::Ne => a != b,
            CmpKind::Lt => a < b,
            CmpKind::Le => a <= b,
            CmpKind::Gt => a > b,
            CmpKind::Ge => a >= b,
        }
    }
}

impl fmt::Display for CmpKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            CmpKind::Eq => "==",
            CmpKind::Ne => "!=",
            CmpKind::Lt => "<",
            CmpKind::Le => "<=",
            CmpKind::Gt => ">",
            CmpKind::Ge => ">=",
        })
    }
}

/// An expression tree.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum Expr {
    /// Integer literal.
    Const(i64),
    /// Scalar variable read.
    Var(VarId),
    /// Array element read: `array[index]`.
    Load {
        /// The array read from.
        array: ArraySym,
        /// The element index.
        index: Box<Expr>,
    },
    /// Binary operation.
    Bin {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Comparison producing 0 or 1.
    Cmp {
        /// Comparison kind.
        op: CmpKind,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
    },
    /// Logical negation: 1 if the operand is 0, else 0.
    Not(Box<Expr>),
}

impl Expr {
    /// Whether the expression contains any [`Expr::Load`].
    pub fn has_load(&self) -> bool {
        match self {
            Expr::Const(_) | Expr::Var(_) => false,
            Expr::Load { .. } => true,
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                lhs.has_load() || rhs.has_load()
            }
            Expr::Not(e) => e.has_load(),
        }
    }

    /// Collects the scalar variables read anywhere in the expression
    /// (including inside load indices).
    pub fn collect_vars(&self, out: &mut Vec<VarId>) {
        match self {
            Expr::Const(_) => {}
            Expr::Var(v) => {
                if !out.contains(v) {
                    out.push(*v);
                }
            }
            Expr::Load { index, .. } => index.collect_vars(out),
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                lhs.collect_vars(out);
                rhs.collect_vars(out);
            }
            Expr::Not(e) => e.collect_vars(out),
        }
    }

    /// Collects `(array, index-expression)` pairs for every load in the
    /// expression, outermost first.
    pub fn collect_loads(&self, out: &mut Vec<(ArraySym, Expr)>) {
        match self {
            Expr::Const(_) | Expr::Var(_) => {}
            Expr::Load { array, index } => {
                index.collect_loads(out);
                out.push((*array, (**index).clone()));
            }
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => {
                lhs.collect_loads(out);
                rhs.collect_loads(out);
            }
            Expr::Not(e) => e.collect_loads(out),
        }
    }

    /// Number of nodes in the expression tree (a proxy for its dynamic
    /// instruction count).
    pub fn size(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Var(_) => 1,
            Expr::Load { index, .. } => 1 + index.size(),
            Expr::Bin { lhs, rhs, .. } | Expr::Cmp { lhs, rhs, .. } => 1 + lhs.size() + rhs.size(),
            Expr::Not(e) => 1 + e.size(),
        }
    }
}

/// A statement in a loop body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Stmt {
    /// `var = value;`
    Assign {
        /// Destination scalar.
        var: VarId,
        /// Right-hand side.
        value: Expr,
    },
    /// `array[index] = value;`
    Store {
        /// Destination array.
        array: ArraySym,
        /// Element index.
        index: Expr,
        /// Stored value.
        value: Expr,
    },
    /// `if (cond) { then_ } else { else_ }` — `cond != 0` selects `then_`.
    If {
        /// The controlling condition.
        cond: Expr,
        /// True branch.
        then_: Vec<Stmt>,
        /// False branch (possibly empty).
        else_: Vec<Stmt>,
    },
    /// `break;` — early loop termination.
    Break,
}

/// The single countable loop a [`Program`] runs:
/// `for (i = start; i < end; i++) body`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Loop {
    /// The induction variable (incremented by 1 each iteration).
    pub induction: VarId,
    /// Loop-invariant start expression.
    pub start: Expr,
    /// Loop-invariant end expression (exclusive bound).
    pub end: Expr,
    /// The loop body.
    pub body: Vec<Stmt>,
}

/// Declaration of a scalar variable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VarDecl {
    /// Human-readable name.
    pub name: String,
    /// Initial value on entry to the program.
    pub init: i64,
}

/// Declaration of an array symbol. Concrete storage is bound at execution
/// time, positionally.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ArrayDecl {
    /// Human-readable name.
    pub name: String,
}

/// A complete loop program: declarations plus the loop.
///
/// Construct programs with [`ProgramBuilder`](crate::ProgramBuilder).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Program {
    /// Program name (used in reports).
    pub name: String,
    /// Scalar declarations; `VarId(i)` indexes this list.
    pub vars: Vec<VarDecl>,
    /// Array declarations; `ArraySym(i)` indexes this list.
    pub arrays: Vec<ArrayDecl>,
    /// The loop.
    pub loop_: Loop,
    /// Scalars whose final values are observable outputs.
    pub live_out: Vec<VarId>,
}

impl Program {
    /// Name of a variable.
    pub fn var_name(&self, v: VarId) -> &str {
        &self.vars[v.0 as usize].name
    }

    /// Name of an array.
    pub fn array_name(&self, a: ArraySym) -> &str {
        &self.arrays[a.0 as usize].name
    }

    /// Number of declared scalars.
    pub fn var_count(&self) -> usize {
        self.vars.len()
    }

    /// Number of declared arrays.
    pub fn array_count(&self) -> usize {
        self.arrays.len()
    }
}

struct DisplayExpr<'a>(&'a Program, &'a Expr);

impl fmt::Display for DisplayExpr<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let DisplayExpr(p, e) = *self;
        match e {
            Expr::Const(c) => write!(f, "{c}"),
            Expr::Var(v) => f.write_str(p.var_name(*v)),
            Expr::Load { array, index } => {
                write!(f, "{}[{}]", p.array_name(*array), DisplayExpr(p, index))
            }
            Expr::Bin { op, lhs, rhs } => match op {
                BinOp::Min | BinOp::Max => {
                    write!(f, "{op}({}, {})", DisplayExpr(p, lhs), DisplayExpr(p, rhs))
                }
                _ => write!(f, "({} {op} {})", DisplayExpr(p, lhs), DisplayExpr(p, rhs)),
            },
            Expr::Cmp { op, lhs, rhs } => {
                write!(f, "({} {op} {})", DisplayExpr(p, lhs), DisplayExpr(p, rhs))
            }
            Expr::Not(inner) => write!(f, "!{}", DisplayExpr(p, inner)),
        }
    }
}

fn fmt_body(p: &Program, body: &[Stmt], indent: usize, f: &mut fmt::Formatter<'_>) -> fmt::Result {
    let pad = "  ".repeat(indent);
    for stmt in body {
        match stmt {
            Stmt::Assign { var, value } => {
                writeln!(f, "{pad}{} = {};", p.var_name(*var), DisplayExpr(p, value))?;
            }
            Stmt::Store {
                array,
                index,
                value,
            } => writeln!(
                f,
                "{pad}{}[{}] = {};",
                p.array_name(*array),
                DisplayExpr(p, index),
                DisplayExpr(p, value)
            )?,
            Stmt::If { cond, then_, else_ } => {
                writeln!(f, "{pad}if ({}) {{", DisplayExpr(p, cond))?;
                fmt_body(p, then_, indent + 1, f)?;
                if !else_.is_empty() {
                    writeln!(f, "{pad}}} else {{")?;
                    fmt_body(p, else_, indent + 1, f)?;
                }
                writeln!(f, "{pad}}}")?;
            }
            Stmt::Break => writeln!(f, "{pad}break;")?,
        }
    }
    Ok(())
}

/// Pretty-prints the program in C-like syntax.
impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "// {}", self.name)?;
        let i = self.var_name(self.loop_.induction);
        writeln!(
            f,
            "for ({i} = {}; {i} < {}; {i}++) {{",
            DisplayExpr(self, &self.loop_.start),
            DisplayExpr(self, &self.loop_.end)
        )?;
        fmt_body(self, &self.loop_.body, 1, f)?;
        writeln!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u32) -> Expr {
        Expr::Var(VarId(i))
    }

    #[test]
    fn binop_eval_totalized() {
        assert_eq!(BinOp::Div.eval(7, 0), 0);
        assert_eq!(BinOp::Rem.eval(7, 0), 0);
        assert_eq!(BinOp::Div.eval(i64::MIN, -1), i64::MIN);
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), i64::MIN);
        assert_eq!(BinOp::Shl.eval(1, 65), 0);
        assert_eq!(BinOp::Shr.eval(-2, 100), -1);
        assert_eq!(BinOp::Min.eval(3, -5), -5);
        assert_eq!(BinOp::Max.eval(3, -5), 3);
    }

    #[test]
    fn cmp_eval() {
        assert!(CmpKind::Lt.eval(1, 2));
        assert!(!CmpKind::Lt.eval(2, 2));
        assert!(CmpKind::Le.eval(2, 2));
        assert!(CmpKind::Ne.eval(1, 2));
        assert!(CmpKind::Ge.eval(2, 2));
        assert!(CmpKind::Gt.eval(3, 2));
        assert!(CmpKind::Eq.eval(2, 2));
    }

    #[test]
    fn expr_introspection() {
        let e = Expr::Bin {
            op: BinOp::Add,
            lhs: Box::new(Expr::Load {
                array: ArraySym(0),
                index: Box::new(v(1)),
            }),
            rhs: Box::new(v(2)),
        };
        assert!(e.has_load());
        assert_eq!(e.size(), 4);
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec![VarId(1), VarId(2)]);
        let mut loads = Vec::new();
        e.collect_loads(&mut loads);
        assert_eq!(loads.len(), 1);
        assert_eq!(loads[0].0, ArraySym(0));
    }

    #[test]
    fn collect_vars_dedups() {
        let e = Expr::Bin {
            op: BinOp::Mul,
            lhs: Box::new(v(3)),
            rhs: Box::new(v(3)),
        };
        let mut vars = Vec::new();
        e.collect_vars(&mut vars);
        assert_eq!(vars, vec![VarId(3)]);
    }

    #[test]
    fn nested_load_collection_orders_inner_first() {
        // A[B[i]] — the inner load must come first (it feeds the outer).
        let e = Expr::Load {
            array: ArraySym(0),
            index: Box::new(Expr::Load {
                array: ArraySym(1),
                index: Box::new(v(0)),
            }),
        };
        let mut loads = Vec::new();
        e.collect_loads(&mut loads);
        assert_eq!(loads[0].0, ArraySym(1));
        assert_eq!(loads[1].0, ArraySym(0));
    }
}
