//! # flexvec-ir
//!
//! The loop intermediate representation and analysis infrastructure the
//! FlexVec vectorizer (crate `flexvec`) operates on:
//!
//! * [`Program`] / [`Loop`] / [`Stmt`] / [`Expr`] — a high-level, AST-like
//!   IR for countable loops (paper Section 4: "FlexVec code generation is
//!   implemented as a pass in a high-level, AST like IR").
//! * [`ProgramBuilder`] and the [`build`] helpers — ergonomic, validated
//!   program construction.
//! * [`LoopNodes`] — the flattened statement view (`S0`, `S1`, ... as in
//!   the paper's figures) with per-node def/use and memory summaries.
//! * [`Cfg`], [`DomTree`], [`control_dependences`] — control-flow graph,
//!   dominators/post-dominators, and Ferrante–Ottenstein–Warren control
//!   dependence.
//! * [`Pdg`] — the program dependence graph with control, scalar and
//!   memory dependence edges, the latter classified by the affine
//!   dependence tester ([`affine`] module); statically unresolvable edges
//!   are marked *dynamic* — those are FlexVec's relaxation candidates.
//! * [`sccs`] / [`cyclic_sccs`] — Tarjan SCC detection with edge
//!   filtering, used to answer "does the loop become vectorizable if
//!   these edges are believed infrequent?".
//!
//! ```
//! use flexvec_ir::build::*;
//! use flexvec_ir::{cyclic_sccs, LoopNodes, Pdg, ProgramBuilder};
//!
//! // min-reduction with a conditional update: a classic FlexVec loop.
//! let mut b = ProgramBuilder::new("cond-min");
//! let i = b.var("i", 0);
//! let n = b.var("n", 100);
//! let best = b.var("best", i64::MAX);
//! let a = b.array("a");
//! b.live_out(best);
//! let p = b.build_loop(i, c(0), var(n), vec![
//!     if_(lt(ld(a, var(i)), var(best)), vec![
//!         assign(best, ld(a, var(i))),
//!     ]),
//! ])?;
//!
//! let nodes = LoopNodes::build(&p);
//! let pdg = Pdg::build(&p, &nodes);
//! assert!(!cyclic_sccs(&pdg).is_empty()); // not traditionally vectorizable
//! # Ok::<(), flexvec_ir::BuildError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod affine;
mod ast;
mod builder;
mod cfg;
mod dom;
mod nodes;
mod pdg;
mod scc;

pub use ast::{ArrayDecl, ArraySym, BinOp, CmpKind, Expr, Loop, Program, Stmt, VarDecl, VarId};
pub use builder::{build, BuildError, ProgramBuilder};
pub use cfg::{Block, BlockId, BlockRole, Cfg};
pub use dom::{control_dependences, ControlDep, DomTree};
pub use nodes::{LoopNodes, Node, NodeId, NodeKind};
pub use pdg::{DepEdge, DepKind, MemDepKind, Pdg};
pub use scc::{cyclic_sccs, sccs, sccs_filtered, Scc};
