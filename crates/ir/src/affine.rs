//! Affine classification of array index expressions.
//!
//! The dependence tester needs to know whether two accesses to the same
//! array can touch the same element in different iterations, and at what
//! *distance*. Indices are classified as an affine form
//! `scale·i + const + Σ coeffⱼ·invariantⱼ` with respect to the induction
//! variable, as *indirect* (the index itself loads from memory — the
//! `d_arr[coord]` pattern of Figure 2), or as *opaque* (depends on scalars
//! assigned inside the body, e.g. a conditionally updated variable).
//! Indirect and opaque indices can only be disambiguated at runtime; they
//! are exactly the accesses FlexVec guards with `VPCONFLICTM`.

use crate::ast::{BinOp, Expr, VarId};

/// An affine index form: `scale * i + konst + Σ coeff * sym`.
///
/// The symbolic part is a sorted list of loop-invariant variables with
/// coefficients; two forms with equal symbolic parts can be compared
/// exactly.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Affine {
    /// Coefficient of the induction variable.
    pub scale: i64,
    /// Constant term.
    pub konst: i64,
    /// Sorted `(variable, coefficient)` pairs of loop-invariant scalars.
    pub syms: Vec<(VarId, i64)>,
}

impl Affine {
    fn constant(k: i64) -> Affine {
        Affine {
            scale: 0,
            konst: k,
            syms: Vec::new(),
        }
    }

    fn induction() -> Affine {
        Affine {
            scale: 1,
            konst: 0,
            syms: Vec::new(),
        }
    }

    fn sym(v: VarId) -> Affine {
        Affine {
            scale: 0,
            konst: 0,
            syms: vec![(v, 1)],
        }
    }

    fn combine(self, rhs: Affine, f: impl Fn(i64, i64) -> i64) -> Affine {
        let mut syms = self.syms;
        for (v, coeff) in rhs.syms {
            match syms.binary_search_by_key(&v, |&(sv, _)| sv) {
                Ok(pos) => {
                    syms[pos].1 = f(syms[pos].1, coeff);
                }
                Err(pos) => syms.insert(pos, (v, f(0, coeff))),
            }
        }
        syms.retain(|&(_, c)| c != 0);
        Affine {
            scale: f(self.scale, rhs.scale),
            konst: f(self.konst, rhs.konst),
            syms,
        }
    }

    fn scale_by(mut self, k: i64) -> Affine {
        self.scale = self.scale.wrapping_mul(k);
        self.konst = self.konst.wrapping_mul(k);
        for (_, c) in &mut self.syms {
            *c = c.wrapping_mul(k);
        }
        self.syms.retain(|&(_, c)| c != 0);
        self
    }

    /// Whether the form has no induction or symbolic component.
    pub fn is_constant(&self) -> bool {
        self.scale == 0 && self.syms.is_empty()
    }

    /// Whether two forms have identical symbolic parts (and can therefore
    /// be compared by their numeric parts alone).
    pub fn comparable_with(&self, other: &Affine) -> bool {
        self.syms == other.syms
    }
}

/// Classification of an index expression.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexForm {
    /// Affine in the induction variable with loop-invariant symbols.
    Affine(Affine),
    /// The index contains a memory load (runtime value).
    Indirect,
    /// The index depends on a scalar assigned inside the loop body.
    Opaque,
}

impl IndexForm {
    /// Whether the form can only be disambiguated at runtime.
    pub fn is_dynamic(&self) -> bool {
        matches!(self, IndexForm::Indirect | IndexForm::Opaque)
    }
}

/// Classifies `expr` with respect to induction variable `induction`;
/// `assigned` lists the scalars assigned anywhere in the loop body (these
/// make an index opaque).
pub fn classify_index(expr: &Expr, induction: VarId, assigned: &[VarId]) -> IndexForm {
    match try_affine(expr, induction, assigned) {
        Ok(a) => IndexForm::Affine(a),
        Err(f) => f,
    }
}

/// Dependence relation between two accesses (a "store" source and a "load"
/// sink, though the same test applies to all pairs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DepDistance {
    /// The accesses never overlap.
    None,
    /// They touch the same element in the same iteration.
    SameIteration,
    /// The sink at iteration `i + d` touches what the source touched at
    /// iteration `i` (`d > 0`).
    Carried(i64),
    /// Cannot be determined statically — a FlexVec runtime-check
    /// candidate.
    Unknown,
}

/// Tests the dependence between two index forms on the same array. The
/// result is the distance from `src` (earlier iteration) to `dst`.
pub fn dependence(src: &IndexForm, dst: &IndexForm) -> DepDistance {
    let (IndexForm::Affine(a), IndexForm::Affine(b)) = (src, dst) else {
        return DepDistance::Unknown;
    };
    if !a.comparable_with(b) {
        return DepDistance::Unknown;
    }
    if a.scale != b.scale {
        // Different strides: solvable only via a general diophantine test;
        // be conservative.
        return DepDistance::Unknown;
    }
    let s = a.scale;
    let dc = a.konst.wrapping_sub(b.konst);
    if s == 0 {
        // Both index the same fixed element iff constants agree; then the
        // dependence recurs every iteration (distance 1 is the tightest).
        return if dc == 0 {
            DepDistance::Carried(1)
        } else {
            DepDistance::None
        };
    }
    // src at iteration i, dst at iteration i + d: s*(i+d) + kb == s*i + ka
    // => d = (ka - kb) / s.
    if dc % s != 0 {
        return DepDistance::None;
    }
    match dc / s {
        0 => DepDistance::SameIteration,
        d if d > 0 => DepDistance::Carried(d),
        _ => DepDistance::None, // sink precedes source: covered by the swapped query
    }
}

fn try_affine(expr: &Expr, induction: VarId, assigned: &[VarId]) -> Result<Affine, IndexForm> {
    match expr {
        Expr::Const(c) => Ok(Affine::constant(*c)),
        Expr::Var(v) if *v == induction => Ok(Affine::induction()),
        Expr::Var(v) => {
            if assigned.contains(v) {
                Err(IndexForm::Opaque)
            } else {
                Ok(Affine::sym(*v))
            }
        }
        Expr::Load { .. } => Err(IndexForm::Indirect),
        Expr::Bin { op, lhs, rhs } => {
            let worst = |e: &Expr| {
                if e.has_load() {
                    IndexForm::Indirect
                } else {
                    IndexForm::Opaque
                }
            };
            let l = try_affine(lhs, induction, assigned);
            let r = try_affine(rhs, induction, assigned);
            match (op, l, r) {
                (BinOp::Add, Ok(a), Ok(b)) => Ok(a.combine(b, i64::wrapping_add)),
                (BinOp::Sub, Ok(a), Ok(b)) => Ok(a.combine(b, i64::wrapping_sub)),
                (BinOp::Mul, Ok(a), Ok(b)) if b.is_constant() => Ok(a.scale_by(b.konst)),
                (BinOp::Mul, Ok(a), Ok(b)) if a.is_constant() => Ok(b.scale_by(a.konst)),
                (_, Err(IndexForm::Indirect), _) | (_, _, Err(IndexForm::Indirect)) => {
                    Err(IndexForm::Indirect)
                }
                _ => Err(worst(expr)),
            }
        }
        Expr::Cmp { .. } | Expr::Not(_) => {
            if expr.has_load() {
                Err(IndexForm::Indirect)
            } else {
                Err(IndexForm::Opaque)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::*;

    const I: VarId = VarId(0);
    const N: VarId = VarId(1);
    const X: VarId = VarId(2);

    fn classify(e: &Expr) -> IndexForm {
        classify_index(e, I, &[X])
    }

    #[test]
    fn constants_and_induction() {
        assert_eq!(
            classify(&c(7)),
            IndexForm::Affine(Affine {
                scale: 0,
                konst: 7,
                syms: vec![]
            })
        );
        assert_eq!(
            classify(&var(I)),
            IndexForm::Affine(Affine {
                scale: 1,
                konst: 0,
                syms: vec![]
            })
        );
    }

    #[test]
    fn affine_arithmetic() {
        // 2*i + 3
        let e = add(mul(var(I), c(2)), c(3));
        assert_eq!(
            classify(&e),
            IndexForm::Affine(Affine {
                scale: 2,
                konst: 3,
                syms: vec![]
            })
        );
        // (i + n) - n collapses the symbol.
        let e2 = sub(add(var(I), var(N)), var(N));
        assert_eq!(
            classify(&e2),
            IndexForm::Affine(Affine {
                scale: 1,
                konst: 0,
                syms: vec![]
            })
        );
        // i - 4
        let e3 = sub(var(I), c(4));
        assert_eq!(
            classify(&e3),
            IndexForm::Affine(Affine {
                scale: 1,
                konst: -4,
                syms: vec![]
            })
        );
    }

    #[test]
    fn invariant_symbols_survive() {
        let e = add(var(I), var(N));
        match classify(&e) {
            IndexForm::Affine(a) => {
                assert_eq!(a.scale, 1);
                assert_eq!(a.syms, vec![(N, 1)]);
            }
            other => panic!("expected affine, got {other:?}"),
        }
    }

    #[test]
    fn indirect_and_opaque() {
        let e = ld(crate::ArraySym(0), var(I));
        assert_eq!(classify(&e), IndexForm::Indirect);
        assert!(classify(&e).is_dynamic());
        // x is assigned in the body.
        assert_eq!(classify(&var(X)), IndexForm::Opaque);
        // i * i is non-affine => opaque.
        assert_eq!(classify(&mul(var(I), var(I))), IndexForm::Opaque);
        // Indirectness dominates opacity.
        let mixed = add(var(X), ld(crate::ArraySym(0), c(0)));
        assert_eq!(classify(&mixed), IndexForm::Indirect);
    }

    #[test]
    fn dependence_distances() {
        let at = |scale: i64, konst: i64| {
            IndexForm::Affine(Affine {
                scale,
                konst,
                syms: vec![],
            })
        };
        // a[i] stored, a[i] loaded: same iteration.
        assert_eq!(dependence(&at(1, 0), &at(1, 0)), DepDistance::SameIteration);
        // a[i] stored, a[i-4] loaded: load at i+4 reads store at i.
        assert_eq!(dependence(&at(1, 0), &at(1, -4)), DepDistance::Carried(4));
        // a[i] stored, a[i+4] loaded: the "dependence" points backward.
        assert_eq!(dependence(&at(1, 4), &at(1, 0)), DepDistance::Carried(4));
        assert_eq!(dependence(&at(1, 0), &at(1, 4)), DepDistance::None);
        // Disjoint strided accesses: a[2i] vs a[2i+1].
        assert_eq!(dependence(&at(2, 0), &at(2, 1)), DepDistance::None);
        // Same fixed cell: recurs every iteration.
        assert_eq!(dependence(&at(0, 3), &at(0, 3)), DepDistance::Carried(1));
        assert_eq!(dependence(&at(0, 3), &at(0, 4)), DepDistance::None);
        // Different strides or symbols: unknown.
        assert_eq!(dependence(&at(1, 0), &at(2, 0)), DepDistance::Unknown);
        assert_eq!(
            dependence(&IndexForm::Indirect, &at(1, 0)),
            DepDistance::Unknown
        );
    }

    #[test]
    fn symbolic_bases_compare_when_equal() {
        let form = |konst: i64| {
            IndexForm::Affine(Affine {
                scale: 1,
                konst,
                syms: vec![(N, 1)],
            })
        };
        assert_eq!(dependence(&form(0), &form(-2)), DepDistance::Carried(2));
        let other = IndexForm::Affine(Affine {
            scale: 1,
            konst: 0,
            syms: vec![(X, 1)],
        });
        assert_eq!(dependence(&form(0), &other), DepDistance::Unknown);
    }
}
