//! Cross-checks between the two control-dependence computations:
//! the textbook Ferrante–Ottenstein–Warren construction over the CFG
//! (post-dominator based) must agree with the structural parent
//! information the flattened node view carries — for break-free loops
//! every statement's FOW controller set equals its structural chain of
//! enclosing `if`s, and with breaks the FOW computation additionally
//! discovers the loop-exit control the PDG models as `ControlExit`.

use flexvec_ir::build::*;
use flexvec_ir::{control_dependences, Cfg, DomTree, LoopNodes, NodeId, Program, ProgramBuilder};
use proptest::prelude::*;

/// Builds a random structured loop body (nesting depth ≤ 3) with
/// assignments and conditionals, optionally a break.
fn random_program(shape: &[u8], with_break: bool) -> Program {
    let mut b = ProgramBuilder::new("random");
    let i = b.var("i", 0);
    let x = b.var("x", 0);
    let y = b.var("y", 0);
    let a = b.array("a");

    fn gen_body(
        shape: &[u8],
        depth: usize,
        x: flexvec_ir::VarId,
        y: flexvec_ir::VarId,
        i: flexvec_ir::VarId,
        a: flexvec_ir::ArraySym,
        with_break: &mut bool,
    ) -> Vec<flexvec_ir::Stmt> {
        let mut body = Vec::new();
        for (k, &byte) in shape.iter().enumerate() {
            match byte % 4 {
                0 => body.push(assign(x, add(var(x), c(byte as i64)))),
                1 => body.push(assign(y, ld(a, band(var(i), c(31))))),
                2 if depth < 3 && k + 1 < shape.len() => {
                    let inner = gen_body(
                        &shape[k + 1..(k + 1 + (byte as usize % 3)).min(shape.len())],
                        depth + 1,
                        x,
                        y,
                        i,
                        a,
                        with_break,
                    );
                    if !inner.is_empty() {
                        body.push(if_(gt(var(y), c(byte as i64)), inner));
                    }
                }
                _ => {
                    if *with_break && depth > 0 {
                        body.push(brk());
                        *with_break = false;
                    } else {
                        body.push(assign(x, sub(var(x), c(1))));
                    }
                }
            }
        }
        body
    }

    let mut brk_budget = with_break;
    let body = gen_body(shape, 0, x, y, i, a, &mut brk_budget);
    b.build_loop(i, c(0), c(8), body)
        .expect("generated body is valid")
}

/// The set of branch nodes that FOW says control a statement node (via
/// block-level control dependence projected to statements).
fn fow_controllers(program: &Program) -> Vec<(NodeId, Vec<NodeId>)> {
    let cfg = Cfg::build(program);
    let nodes = LoopNodes::build(program);
    let pdom = DomTree::postdominators(&cfg);
    let deps = control_dependences(&cfg, &pdom);
    let mut out = Vec::new();
    for n in &nodes.nodes {
        let my_block = cfg.block_of(n.id);
        let mut ctrl: Vec<NodeId> = deps
            .iter()
            .filter(|d| d.dependent == my_block && d.branch != cfg.header)
            .filter_map(|d| {
                // The branch statement is the last statement of the
                // branch block (the if-condition node).
                cfg.block(d.branch).stmts.last().copied()
            })
            .collect();
        ctrl.sort();
        ctrl.dedup();
        out.push((n.id, ctrl));
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn fow_matches_innermost_structural_parent_without_breaks(shape in prop::collection::vec(any::<u8>(), 1..12)) {
        // Control dependence is not transitive: FOW reports only the
        // *direct* controller, which for structured code is exactly the
        // innermost enclosing `if`.
        let program = random_program(&shape, false);
        let nodes = LoopNodes::build(&program);
        for (id, fow) in fow_controllers(&program) {
            let structural: Vec<NodeId> = nodes
                .node(id)
                .parent
                .map(|(c, _)| vec![c])
                .unwrap_or_default();
            prop_assert_eq!(
                fow, structural,
                "node {} of\n{}", id, program
            );
        }
    }

    #[test]
    fn postdominators_are_consistent(shape in prop::collection::vec(any::<u8>(), 1..12), brk in any::<bool>()) {
        let program = random_program(&shape, brk);
        let cfg = Cfg::build(&program);
        let pdom = DomTree::postdominators(&cfg);
        let dom = DomTree::dominators(&cfg);
        // Exit postdominates every reachable block; entry dominates them.
        for block in &cfg.blocks {
            let reachable = block.id == cfg.entry || !block.preds.is_empty();
            if reachable {
                prop_assert!(pdom.dominates(cfg.exit, block.id));
                prop_assert!(dom.dominates(cfg.entry, block.id));
            }
        }
        // Dominance is antisymmetric on distinct blocks unless in a cycle
        // of the dominator relation (impossible for trees): spot-check
        // with the header/latch pair.
        prop_assert!(dom.dominates(cfg.header, cfg.latch));
        prop_assert!(!dom.dominates(cfg.latch, cfg.header) || cfg.header == cfg.latch);
    }

    #[test]
    fn break_guards_control_the_header(shape in prop::collection::vec(any::<u8>(), 4..12)) {
        let program = random_program(&shape, true);
        let nodes = LoopNodes::build(&program);
        let breaks = nodes.breaks();
        if breaks.is_empty() {
            return Ok(()); // generator did not place a break this time
        }
        let cfg = Cfg::build(&program);
        let pdom = DomTree::postdominators(&cfg);
        let deps = control_dependences(&cfg, &pdom);
        // The Figure 5 property: some branch (the break guard or an
        // enclosing condition) controls the loop header.
        prop_assert!(
            deps.iter().any(|d| d.dependent == cfg.header && d.branch != cfg.header),
            "no branch controls the header despite a break:\n{}",
            program
        );
    }
}
