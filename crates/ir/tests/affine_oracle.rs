//! Brute-force oracle for the affine dependence tester: for random
//! affine index pairs, `dependence(src, dst)` must agree with an
//! exhaustive scan over iteration pairs — no dependence may exist that
//! the tester misses (soundness), and every reported distance must be
//! witnessed (precision for the affine/affine case).

use flexvec_ir::affine::{classify_index, dependence, DepDistance, IndexForm};
use flexvec_ir::build::*;
use flexvec_ir::{Expr, VarId};
use proptest::prelude::*;

const I: VarId = VarId(0);

/// Builds `scale*i + konst` as an expression.
fn affine_expr(scale: i64, konst: i64) -> Expr {
    add(mul(var(I), c(scale)), c(konst))
}

fn eval(scale: i64, konst: i64, i: i64) -> i64 {
    scale * i + konst
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn tester_matches_brute_force(
        s1 in -4i64..5,
        k1 in -20i64..21,
        s2 in -4i64..5,
        k2 in -20i64..21,
        trip in 1i64..40,
    ) {
        let src = classify_index(&affine_expr(s1, k1), I, &[]);
        let dst = classify_index(&affine_expr(s2, k2), I, &[]);
        prop_assert!(matches!(src, IndexForm::Affine(_)));
        let verdict = dependence(&src, &dst);

        // Brute force: does dst at iteration j > i (or j == i) touch what
        // src touched at iteration i? Record the smallest distance.
        let mut same_iter = false;
        let mut min_carried: Option<i64> = None;
        for i in 0..trip {
            for j in i..trip {
                if eval(s1, k1, i) == eval(s2, k2, j) {
                    if j == i {
                        same_iter = true;
                    } else {
                        let d = j - i;
                        min_carried = Some(min_carried.map_or(d, |m: i64| m.min(d)));
                    }
                }
            }
        }

        match verdict {
            DepDistance::None => {
                prop_assert!(!same_iter, "missed same-iteration dep: {s1}i+{k1} vs {s2}i+{k2}");
                prop_assert!(
                    min_carried.is_none(),
                    "missed carried dep (d={min_carried:?}): {s1}i+{k1} vs {s2}i+{k2}"
                );
            }
            DepDistance::SameIteration => {
                // Must actually collide in some iteration of SOME trip
                // (the tester is trip-agnostic; verify at the solving
                // iteration if it is within range).
                if s1 == s2 {
                    prop_assert_eq!(k1, k2);
                }
            }
            DepDistance::Carried(d) => {
                prop_assert!(d > 0);
                // Verify the algebra: src at i and dst at i+d collide for
                // every i when strides match.
                prop_assert_eq!(eval(s1, k1, 0), eval(s2, k2, d));
                // And the brute force (when the trip covers distance d)
                // found no shorter distance.
                if let Some(m) = min_carried {
                    prop_assert!(m >= d.min(m));
                }
            }
            DepDistance::Unknown => {
                // Only legal when the strides differ (the tester's
                // documented conservative case).
                prop_assert_ne!(s1, s2, "unknown verdict for equal strides");
            }
        }
    }

    #[test]
    fn equal_strides_never_unknown(s in -8i64..9, k1 in -50i64..51, k2 in -50i64..51) {
        let src = classify_index(&affine_expr(s, k1), I, &[]);
        let dst = classify_index(&affine_expr(s, k2), I, &[]);
        prop_assert!(!matches!(dependence(&src, &dst), DepDistance::Unknown));
    }

    #[test]
    fn soundness_for_differing_strides(
        s1 in -3i64..4,
        k1 in -10i64..11,
        s2 in -3i64..4,
        k2 in -10i64..11,
    ) {
        // Whenever brute force finds a carried collision, the tester must
        // NOT claim None.
        prop_assume!(s1 != s2);
        let src = classify_index(&affine_expr(s1, k1), I, &[]);
        let dst = classify_index(&affine_expr(s2, k2), I, &[]);
        let verdict = dependence(&src, &dst);
        let mut found = false;
        for i in 0..32i64 {
            for j in (i + 1)..32 {
                if eval(s1, k1, i) == eval(s2, k2, j) {
                    found = true;
                }
            }
        }
        if found {
            prop_assert!(
                !matches!(verdict, DepDistance::None),
                "unsound None: {s1}i+{k1} vs {s2}i+{k2}"
            );
        }
    }
}
