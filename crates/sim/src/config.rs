//! Simulator configuration — the paper's Table 1.
//!
//! "The baseline for our cycle accurate simulation model is an aggressive
//! out-of-order processor" (Section 5). The FlexVec instruction latencies
//! at the bottom of the table come from the paper's micro-op-sequence
//! measurements.

use flexvec_mem::HierarchyConfig;

/// Latency and inverse throughput of one instruction class.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct OpTiming {
    /// Result latency in cycles.
    pub latency: u32,
    /// Cycles the issue port stays busy (1 = fully pipelined).
    pub inverse_throughput: u32,
}

impl OpTiming {
    /// Convenience constructor.
    pub const fn new(latency: u32, inverse_throughput: u32) -> Self {
        OpTiming {
            latency,
            inverse_throughput,
        }
    }
}

/// Full out-of-order core configuration (paper Table 1).
#[derive(Clone, Debug, PartialEq)]
pub struct SimConfig {
    /// Fetch/dispatch width (instructions per cycle).
    pub dispatch_width: u32,
    /// Issue width.
    pub issue_width: u32,
    /// Commit width.
    pub commit_width: u32,
    /// Reservation-station entries.
    pub rs_entries: usize,
    /// Reorder-buffer entries.
    pub rob_entries: usize,
    /// Load-queue entries.
    pub load_queue: usize,
    /// Store-queue entries.
    pub store_queue: usize,
    /// Load ports.
    pub load_ports: usize,
    /// Store ports.
    pub store_ports: usize,
    /// ALU/vector execution ports.
    pub alu_ports: usize,
    /// Branch mispredict penalty (refetch bubble), cycles.
    pub mispredict_penalty: u32,
    /// The memory hierarchy (Table 1's cache section).
    pub memory: HierarchyConfig,

    // --- instruction timings -------------------------------------------
    /// Scalar ALU.
    pub scalar_alu: OpTiming,
    /// Scalar multiply.
    pub scalar_mul: OpTiming,
    /// Scalar divide.
    pub scalar_div: OpTiming,
    /// Vector ALU (512-bit integer).
    pub vec_alu: OpTiming,
    /// Vector multiply.
    pub vec_mul: OpTiming,
    /// Vector divide (expanded).
    pub vec_div: OpTiming,
    /// Blend/shuffle.
    pub vec_shuffle: OpTiming,
    /// Broadcast.
    pub broadcast: OpTiming,
    /// Mask-register op.
    pub mask_op: OpTiming,
    /// `KFTM.INC/EXC` (Table 1: 2, 1).
    pub kftm: OpTiming,
    /// `VPSLCTLAST` (Table 1: 3, 1).
    pub vpslctlast: OpTiming,
    /// `VPCONFLICTM` (Table 1: 20, 2 — micro-op sequence).
    pub vpconflictm: OpTiming,
    /// Horizontal reduction sequence.
    pub reduce: OpTiming,
    /// Extra address-generation latency for gathers and first-faulting
    /// forms (Table 1: 1 cycle AGU latency, 2 loads per cycle).
    pub gather_agu_latency: u32,
    /// Transaction begin/end overhead (`XBEGIN`/`XEND`), cycles.
    pub tx_overhead: u32,
}

impl SimConfig {
    /// The paper's Table 1 configuration.
    pub fn table1() -> Self {
        SimConfig {
            dispatch_width: 5,
            issue_width: 8,
            commit_width: 5,
            rs_entries: 97,
            rob_entries: 224,
            load_queue: 80,
            store_queue: 56,
            load_ports: 2,
            store_ports: 1,
            alu_ports: 4,
            mispredict_penalty: 16,
            memory: HierarchyConfig::table1(),
            scalar_alu: OpTiming::new(1, 1),
            scalar_mul: OpTiming::new(3, 1),
            scalar_div: OpTiming::new(25, 20),
            vec_alu: OpTiming::new(1, 1),
            vec_mul: OpTiming::new(5, 1),
            vec_div: OpTiming::new(24, 12),
            vec_shuffle: OpTiming::new(1, 1),
            broadcast: OpTiming::new(3, 1),
            mask_op: OpTiming::new(1, 1),
            kftm: OpTiming::new(2, 1),
            vpslctlast: OpTiming::new(3, 1),
            vpconflictm: OpTiming::new(20, 2),
            reduce: OpTiming::new(8, 4),
            gather_agu_latency: 1,
            tx_overhead: 45,
        }
    }

    /// Renders the configuration in the layout of the paper's Table 1.
    pub fn render_table1(&self) -> String {
        let m = &self.memory;
        let mut s = String::new();
        s.push_str("Component                    | Configuration\n");
        s.push_str("-----------------------------+-------------------------------------------\n");
        s.push_str(&format!(
            "Fetch/Dispatch/Issue/Commit  | {}/{}/{}/{} wide\n",
            self.dispatch_width, self.dispatch_width, self.issue_width, self.commit_width
        ));
        s.push_str(&format!(
            "RS                           | {} entries\n",
            self.rs_entries
        ));
        s.push_str(&format!(
            "ROB                          | {} entries\n",
            self.rob_entries
        ));
        s.push_str(&format!(
            "Load/Store Queues            | {}/{} entries\n",
            self.load_queue, self.store_queue
        ));
        // The trace-driven model has an ideal front end; the I-cache row is
        // reported for completeness with the paper's parameters.
        s.push_str("L1 Icache                    | 32K, 4 way, 1 cycle hit time\n");
        s.push_str(&format!(
            "L1 Dcache                    | {}K, {} way, {} cycles load to use latency\n",
            m.l1.size_bytes >> 10,
            m.l1.ways,
            m.l1.latency
        ));
        s.push_str(&format!(
            "L2 Unified Cache             | {}K, {} way, {} cycles hit time\n",
            m.l2.size_bytes >> 10,
            m.l2.ways,
            m.l2.latency
        ));
        s.push_str(&format!(
            "L3 Cache                     | {}M, {} way, {} cycles hit time\n",
            m.l3.size_bytes >> 20,
            m.l3.ways,
            m.l3.latency
        ));
        s.push_str(&format!(
            "Memory Latency               | {} cycles\n",
            m.memory_latency
        ));
        s.push_str(&format!(
            "Load/Store Ports             | {}/{} units\n",
            self.load_ports, self.store_ports
        ));
        s.push('\n');
        s.push_str("FlexVec Instruction          | Latency(cycles), Throughput\n");
        s.push_str("-----------------------------+-------------------------------------------\n");
        s.push_str(&format!(
            "KFTMINC/KFTMEXC              | {}, {}\n",
            self.kftm.latency, self.kftm.inverse_throughput
        ));
        s.push_str(&format!(
            "VPSLCTLAST                   | {}, {}\n",
            self.vpslctlast.latency, self.vpslctlast.inverse_throughput
        ));
        s.push_str(&format!(
            "VPGATHERFF and VMOVFF        | {} cycle AGU latency, {} loads per cycle\n",
            self.gather_agu_latency, self.load_ports
        ));
        s.push_str(&format!(
            "VPCONFLICTM                  | {}, {}\n",
            self.vpconflictm.latency, self.vpconflictm.inverse_throughput
        ));
        s
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self::table1()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_values() {
        let c = SimConfig::table1();
        assert_eq!(c.dispatch_width, 5);
        assert_eq!(c.issue_width, 8);
        assert_eq!(c.commit_width, 5);
        assert_eq!(c.rs_entries, 97);
        assert_eq!(c.rob_entries, 224);
        assert_eq!(c.load_queue, 80);
        assert_eq!(c.store_queue, 56);
        assert_eq!(c.load_ports, 2);
        assert_eq!(c.store_ports, 1);
        assert_eq!(c.kftm, OpTiming::new(2, 1));
        assert_eq!(c.vpslctlast, OpTiming::new(3, 1));
        assert_eq!(c.vpconflictm.latency, 20);
        assert_eq!(c.memory.memory_latency, 200);
    }

    #[test]
    fn render_contains_all_rows() {
        let text = SimConfig::table1().render_table1();
        for needle in [
            "5/5/8/5 wide",
            "97 entries",
            "224 entries",
            "80/56 entries",
            "32K, 8 way, 4 cycles",
            "256K, 8 way, 12 cycles",
            "8M, 32 way, 25 cycles",
            "200 cycles",
            "2/1 units",
            "KFTMINC/KFTMEXC              | 2, 1",
            "VPSLCTLAST                   | 3, 1",
            "VPCONFLICTM                  | 20, 2",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }
}
