//! # flexvec-sim
//!
//! Trace-driven timing model of the paper's evaluation platform: an
//! aggressive out-of-order core configured per Table 1 (widths 5/8/5,
//! 97-entry RS, 224-entry ROB, 80/56 load/store queues, 2/1 load/store
//! ports, the three-level cache hierarchy, and the measured latencies of
//! the FlexVec instructions).
//!
//! [`OooSim`] implements `flexvec_vm::TraceSink`, so an execution can be
//! timed by streaming its µops straight into the simulator:
//!
//! ```
//! use flexvec_sim::OooSim;
//! use flexvec_vm::{Tok, TraceSink, Uop, UopClass};
//!
//! let mut sim = OooSim::table1();
//! for i in 0..100 {
//!     sim.emit(Uop::reg(UopClass::ScalarAlu, vec![Tok::S(i)], Some(Tok::S(i + 1))));
//! }
//! let result = sim.result();
//! assert!(result.cycles >= 100); // a dependence chain serializes
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod ooo;

pub use config::{OpTiming, SimConfig};
pub use ooo::{ClassCounts, OooSim, SimResult};

/// Computes the whole-application speedup from a region speedup and the
/// region's coverage of total execution time (the paper's methodology:
/// "Hot region speedups are then scaled down based on their contribution
/// to total program execution").
pub fn amdahl_overall(region_speedup: f64, coverage: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&coverage),
        "coverage must be in [0, 1]"
    );
    assert!(region_speedup > 0.0, "speedup must be positive");
    1.0 / ((1.0 - coverage) + coverage / region_speedup)
}

/// Geometric mean of a slice of positive values.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of empty slice");
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amdahl_limits() {
        assert!((amdahl_overall(2.0, 1.0) - 2.0).abs() < 1e-12);
        assert!((amdahl_overall(2.0, 0.0) - 1.0).abs() < 1e-12);
        // 2x on half the program: 1/(0.5 + 0.25) = 1.333...
        assert!((amdahl_overall(2.0, 0.5) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn geomean_basic() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
    }
}
