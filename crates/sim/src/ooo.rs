//! The trace-driven out-of-order pipeline model.
//!
//! [`OooSim`] consumes a µop stream (it implements
//! [`TraceSink`], so the `flexvec-vm` executors can feed it directly
//! without materializing the trace) and models:
//!
//! * **widths** — dispatch/issue/commit instructions per cycle (Table 1:
//!   5/8/5);
//! * **windows** — ROB, reservation stations, load and store queues as
//!   occupancy constraints (an instruction cannot dispatch until the
//!   entry of the instruction `N` slots ahead of it has been released);
//! * **dependences** — a register scoreboard over the trace's abstract
//!   tokens; an instruction issues when its sources are ready;
//! * **ports** — 2 load ports, 1 store port, 4 ALU/vector ports, each
//!   held for the class's inverse throughput (gathers occupy the load
//!   ports at 2 lanes per cycle, per the paper's FF-instruction row);
//! * **memory** — per-line latency from the Table 1 cache hierarchy;
//! * **branches** — a 2-bit-counter predictor; a mispredict stalls the
//!   front end until the branch resolves plus the refetch penalty.
//!
//! The model is a structural-hazard trace simulator, not an RTL-level
//! core; it reproduces the *relative* throughput effects Figure 8 depends
//! on (ILP extraction limits, dependence chains, gather costs,
//! mispredicts) rather than absolute cycle counts.

use std::collections::HashMap;
use std::collections::VecDeque;

use flexvec_mem::{Access, CacheSim, CacheStats, LINE_BYTES};
use flexvec_vm::{Tok, TraceSink, Uop, UopClass};

use crate::config::{OpTiming, SimConfig};

/// Final statistics of a simulation.
#[derive(Clone, Debug, PartialEq)]
pub struct SimResult {
    /// Total cycles (commit time of the last µop).
    pub cycles: u64,
    /// µops simulated.
    pub uops: u64,
    /// Conditional branches seen.
    pub branches: u64,
    /// Mispredicted branches.
    pub mispredicts: u64,
    /// Cache statistics.
    pub cache: CacheStats,
    /// µops per cycle.
    pub ipc: f64,
    /// µop counts by category.
    pub classes: ClassCounts,
}

/// Dynamic µop counts grouped by category.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ClassCounts {
    /// Scalar ALU/mul/div µops.
    pub scalar: u64,
    /// Vector ALU/mul/div/shuffle/broadcast/reduce µops.
    pub vector: u64,
    /// Mask-register µops.
    pub mask: u64,
    /// The FlexVec instructions (KFTM, VPSLCTLAST, VPCONFLICTM).
    pub flexvec: u64,
    /// Memory µops (loads, stores, gathers, scatters, FF forms).
    pub memory: u64,
    /// Transaction begin/end µops.
    pub txn: u64,
}

/// A saturating 2-bit branch predictor table.
#[derive(Clone, Debug)]
struct Predictor {
    counters: Vec<u8>,
}

impl Predictor {
    fn new() -> Self {
        Predictor {
            counters: vec![2; 4096],
        } // weakly taken
    }

    fn slot(&mut self, id: u64) -> &mut u8 {
        let idx = (id.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 52) as usize % self.counters.len();
        &mut self.counters[idx]
    }

    /// Predicts and updates; returns whether the prediction was correct.
    fn predict_and_update(&mut self, id: u64, taken: bool) -> bool {
        let c = self.slot(id);
        let predicted = *c >= 2;
        if taken {
            *c = (*c + 1).min(3);
        } else {
            *c = c.saturating_sub(1);
        }
        predicted == taken
    }
}

/// Ring buffer recording the release times of a window resource.
#[derive(Clone, Debug)]
struct Window {
    times: VecDeque<u64>,
    capacity: usize,
}

impl Window {
    fn new(capacity: usize) -> Self {
        Window {
            times: VecDeque::with_capacity(capacity),
            capacity,
        }
    }

    /// Earliest cycle a new entry may allocate.
    fn available_at(&self) -> u64 {
        if self.times.len() < self.capacity {
            0
        } else {
            self.times[0]
        }
    }

    fn push(&mut self, release: u64) {
        if self.times.len() == self.capacity {
            self.times.pop_front();
        }
        self.times.push_back(release);
    }
}

/// Per-cycle bandwidth limiter.
#[derive(Clone, Copy, Debug, Default)]
struct Bandwidth {
    cycle: u64,
    used: u32,
}

impl Bandwidth {
    /// Returns the earliest cycle ≥ `at` with a free slot and consumes it.
    fn take(&mut self, at: u64, width: u32) -> u64 {
        if at > self.cycle {
            self.cycle = at;
            self.used = 0;
        }
        if self.used < width {
            self.used += 1;
            self.cycle
        } else {
            self.cycle += 1;
            self.used = 1;
            self.cycle
        }
    }
}

/// The out-of-order core model. Feed it µops via [`TraceSink::emit`] and
/// read the result with [`OooSim::result`].
#[derive(Clone, Debug)]
pub struct OooSim {
    config: SimConfig,
    cache: CacheSim,
    predictor: Predictor,
    ready: HashMap<Tok, u64>,
    rob: Window,
    rs: Window,
    lq: Window,
    sq: Window,
    load_ports: Vec<u64>,
    store_ports: Vec<u64>,
    alu_ports: Vec<u64>,
    dispatch_bw: Bandwidth,
    issue_bw: Bandwidth,
    commit_bw: Bandwidth,
    fetch_stall_until: u64,
    last_commit: u64,
    uops: u64,
    branches: u64,
    mispredicts: u64,
    classes: ClassCounts,
}

impl OooSim {
    /// Creates a simulator with the given configuration.
    pub fn new(config: SimConfig) -> Self {
        let cache = CacheSim::new(config.memory);
        OooSim {
            cache,
            predictor: Predictor::new(),
            ready: HashMap::new(),
            rob: Window::new(config.rob_entries),
            rs: Window::new(config.rs_entries),
            lq: Window::new(config.load_queue),
            sq: Window::new(config.store_queue),
            load_ports: vec![0; config.load_ports],
            store_ports: vec![0; config.store_ports],
            alu_ports: vec![0; config.alu_ports],
            dispatch_bw: Bandwidth::default(),
            issue_bw: Bandwidth::default(),
            commit_bw: Bandwidth::default(),
            fetch_stall_until: 0,
            last_commit: 0,
            uops: 0,
            branches: 0,
            mispredicts: 0,
            classes: ClassCounts::default(),
            config,
        }
    }

    /// Simulator with the paper's Table 1 configuration.
    pub fn table1() -> Self {
        Self::new(SimConfig::table1())
    }

    /// The configuration in use.
    pub fn config(&self) -> &SimConfig {
        &self.config
    }

    fn timing(&self, class: &UopClass) -> OpTiming {
        let c = &self.config;
        match class {
            UopClass::ScalarAlu => c.scalar_alu,
            UopClass::ScalarMul => c.scalar_mul,
            UopClass::ScalarDiv => c.scalar_div,
            UopClass::Branch { .. } => c.scalar_alu,
            UopClass::VecAlu => c.vec_alu,
            UopClass::VecMul => c.vec_mul,
            UopClass::VecDiv => c.vec_div,
            UopClass::VecShuffle => c.vec_shuffle,
            UopClass::Broadcast => c.broadcast,
            UopClass::MaskOp => c.mask_op,
            UopClass::Kftm => c.kftm,
            UopClass::SelectLast => c.vpslctlast,
            UopClass::Conflict => c.vpconflictm,
            UopClass::Reduce => c.reduce,
            UopClass::TxBegin | UopClass::TxEnd => OpTiming::new(c.tx_overhead, c.tx_overhead),
            // Memory classes: the latency is computed from the cache; the
            // table entry only carries the port occupancy.
            UopClass::Load | UopClass::VecLoad | UopClass::VecLoadFF => OpTiming::new(0, 1),
            UopClass::Gather | UopClass::GatherFF => OpTiming::new(0, 1),
            UopClass::Store | UopClass::VecStore | UopClass::Scatter => OpTiming::new(1, 1),
        }
    }

    fn earliest_port(ports: &mut [u64], at: u64, busy: u64) -> u64 {
        let (idx, &free) = ports
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .expect("at least one port");
        let start = at.max(free);
        ports[idx] = start + busy;
        start
    }

    fn srcs_ready(&self, uop: &Uop) -> u64 {
        uop.srcs
            .iter()
            .map(|t| self.ready.get(t).copied().unwrap_or(0))
            .max()
            .unwrap_or(0)
    }

    fn process(&mut self, uop: &Uop) {
        self.uops += 1;
        match &uop.class {
            UopClass::ScalarAlu
            | UopClass::ScalarMul
            | UopClass::ScalarDiv
            | UopClass::Branch { .. } => self.classes.scalar += 1,
            UopClass::VecAlu
            | UopClass::VecMul
            | UopClass::VecDiv
            | UopClass::VecShuffle
            | UopClass::Broadcast
            | UopClass::Reduce => self.classes.vector += 1,
            UopClass::MaskOp => self.classes.mask += 1,
            UopClass::Kftm | UopClass::SelectLast | UopClass::Conflict => self.classes.flexvec += 1,
            UopClass::Load
            | UopClass::Store
            | UopClass::VecLoad
            | UopClass::VecStore
            | UopClass::Gather
            | UopClass::Scatter
            | UopClass::VecLoadFF
            | UopClass::GatherFF => self.classes.memory += 1,
            UopClass::TxBegin | UopClass::TxEnd => self.classes.txn += 1,
        }
        let cfg_dispatch = self.config.dispatch_width;
        let cfg_issue = self.config.issue_width;
        let cfg_commit = self.config.commit_width;

        // --- dispatch -----------------------------------------------------
        let window_free = self
            .rob
            .available_at()
            .max(self.rs.available_at())
            .max(if uop.class.is_load() {
                self.lq.available_at()
            } else {
                0
            })
            .max(if uop.class.is_store() {
                self.sq.available_at()
            } else {
                0
            })
            .max(self.fetch_stall_until);
        let dispatch = self.dispatch_bw.take(window_free, cfg_dispatch);

        // --- issue ----------------------------------------------------------
        let ready = self.srcs_ready(uop).max(dispatch);
        let timing = self.timing(&uop.class);
        let (issue, complete) = if uop.class.is_load() {
            // One cache access per touched line for unit-stride forms, one
            // per lane for gathers; the load ports sustain 2 per cycle.
            let accesses = self.memory_accesses(uop, Access::Read);
            let agu = match uop.class {
                UopClass::Gather | UopClass::GatherFF | UopClass::VecLoadFF => {
                    self.config.gather_agu_latency as u64
                }
                _ => 0,
            };
            let start = self.issue_bw.take(ready, cfg_issue);
            let mut done = start + agu;
            for (i, lat) in accesses.iter().enumerate() {
                // Two loads per cycle across the load ports.
                let slot =
                    Self::earliest_port(&mut self.load_ports, start + agu + (i as u64 / 2), 1);
                done = done.max(slot + *lat as u64);
            }
            if accesses.is_empty() {
                done = start + 1;
            }
            (start, done)
        } else if uop.class.is_store() {
            let accesses = self.memory_accesses(uop, Access::Write);
            let start = self.issue_bw.take(ready, cfg_issue);
            let mut done = start + 1;
            for (i, _lat) in accesses.iter().enumerate() {
                // Stores retire through the store port; the data latency
                // is hidden by the store buffer, so only occupancy counts.
                let slot = Self::earliest_port(&mut self.store_ports, start + i as u64, 1);
                done = done.max(slot + 1);
            }
            (start, done)
        } else {
            let port_start =
                Self::earliest_port(&mut self.alu_ports, ready, timing.inverse_throughput as u64);
            let start = self.issue_bw.take(port_start, cfg_issue);
            (start, start + timing.latency as u64)
        };
        self.rs.push(issue);

        // --- branches ---------------------------------------------------
        if let UopClass::Branch { id, taken } = uop.class {
            self.branches += 1;
            if !self.predictor.predict_and_update(id, taken) {
                self.mispredicts += 1;
                self.fetch_stall_until = complete + self.config.mispredict_penalty as u64;
            }
        }

        // --- writeback / commit -------------------------------------------
        if let Some(dst) = uop.dst {
            self.ready.insert(dst, complete);
        }
        let commit = self
            .commit_bw
            .take(complete.max(self.last_commit), cfg_commit);
        self.last_commit = commit;
        self.rob.push(commit);
        if uop.class.is_load() {
            self.lq.push(complete);
        }
        if uop.class.is_store() {
            self.sq.push(commit);
        }
    }

    /// Cache latencies for the µop's touched lines.
    fn memory_accesses(&mut self, uop: &Uop, kind: Access) -> Vec<u32> {
        match uop.class {
            UopClass::Load | UopClass::Store => uop
                .addrs
                .iter()
                .map(|a| self.cache.access(*a, kind))
                .collect(),
            UopClass::VecLoad | UopClass::VecLoadFF | UopClass::VecStore => {
                // Unit-stride: one access per distinct cache line.
                let mut lines: Vec<u64> = uop.addrs.iter().map(|a| a / LINE_BYTES).collect();
                lines.dedup();
                lines
                    .iter()
                    .map(|l| self.cache.access(l * LINE_BYTES, kind))
                    .collect()
            }
            UopClass::Gather | UopClass::GatherFF | UopClass::Scatter => {
                // One access per active lane.
                uop.addrs
                    .iter()
                    .map(|a| self.cache.access(*a, kind))
                    .collect()
            }
            _ => Vec::new(),
        }
    }

    /// Final statistics.
    pub fn result(&self) -> SimResult {
        let cycles = self.last_commit.max(1);
        SimResult {
            cycles,
            uops: self.uops,
            branches: self.branches,
            mispredicts: self.mispredicts,
            cache: self.cache.stats(),
            ipc: self.uops as f64 / cycles as f64,
            classes: self.classes,
        }
    }
}

impl TraceSink for OooSim {
    fn observe(&mut self, uop: &Uop) {
        self.process(uop);
    }
    fn len(&self) -> u64 {
        self.uops
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alu(dst: u32, srcs: &[u32]) -> Uop {
        Uop::reg(
            UopClass::ScalarAlu,
            srcs.iter().map(|s| Tok::S(*s)).collect(),
            Some(Tok::S(dst)),
        )
    }

    #[test]
    fn independent_ops_superscalar() {
        // 1000 independent ALU ops on a 4-wide ALU: ~250 cycles, not 1000.
        let mut sim = OooSim::table1();
        for i in 0..1000u32 {
            sim.emit(alu(i + 1, &[]));
        }
        let r = sim.result();
        assert!(r.cycles < 400, "cycles = {}", r.cycles);
        assert!(r.ipc > 2.5, "ipc = {}", r.ipc);
    }

    #[test]
    fn dependence_chain_serializes() {
        // A 1000-deep chain: at least 1000 cycles.
        let mut sim = OooSim::table1();
        for i in 0..1000u32 {
            sim.emit(alu(i + 1, &[i]));
        }
        let r = sim.result();
        assert!(r.cycles >= 1000, "cycles = {}", r.cycles);
        assert!(r.ipc <= 1.05);
    }

    #[test]
    fn multiply_chain_has_higher_latency() {
        let chain = |class: UopClass| {
            let mut sim = OooSim::table1();
            for i in 0..500u32 {
                sim.emit(Uop::reg(
                    class.clone(),
                    vec![Tok::S(i)],
                    Some(Tok::S(i + 1)),
                ));
            }
            sim.result().cycles
        };
        let mul = chain(UopClass::ScalarMul);
        let add = chain(UopClass::ScalarAlu);
        assert!(mul > 2 * add, "mul={mul} add={add}");
    }

    #[test]
    fn cold_loads_cost_memory_latency() {
        let mut sim = OooSim::table1();
        // A chain of dependent loads to distinct cold lines.
        for i in 0..50u32 {
            sim.emit(Uop::mem(
                UopClass::Load,
                vec![Tok::S(i)],
                Some(Tok::S(i + 1)),
                vec![(i as u64) * 8192 + (1 << 24)],
            ));
        }
        let r = sim.result();
        assert!(r.cycles >= 50 * 200, "cycles = {}", r.cycles);
    }

    #[test]
    fn warm_loads_hit_l1() {
        let mut sim = OooSim::table1();
        let addr = 1 << 20;
        sim.emit(Uop::mem(
            UopClass::Load,
            vec![],
            Some(Tok::S(1)),
            vec![addr],
        ));
        for i in 1..100u32 {
            sim.emit(Uop::mem(
                UopClass::Load,
                vec![Tok::S(i)],
                Some(Tok::S(i + 1)),
                vec![addr],
            ));
        }
        let r = sim.result();
        // ~4 cycles per dependent L1 hit.
        assert!(r.cycles < 200 + 99 * 6, "cycles = {}", r.cycles);
    }

    #[test]
    fn mispredicted_branches_stall() {
        // Alternating outcome defeats the 2-bit counters roughly half the
        // time; a predictable branch costs almost nothing.
        let run = |pattern: fn(u32) -> bool| {
            let mut sim = OooSim::table1();
            for i in 0..2000u32 {
                sim.emit(Uop {
                    class: UopClass::Branch {
                        id: 7,
                        taken: pattern(i),
                    },
                    srcs: vec![],
                    dst: None,
                    addrs: vec![],
                });
            }
            sim.result()
        };
        let predictable = run(|_| true);
        let alternating = run(|i| (i / 2) % 2 == 0); // period-4 pattern
        assert!(predictable.mispredicts < 5);
        assert!(alternating.mispredicts > 500);
        assert!(alternating.cycles > 3 * predictable.cycles);
    }

    #[test]
    fn gather_charges_per_lane() {
        // A 16-lane gather to 16 distinct warm lines vs a unit-stride load
        // of one line: the gather takes noticeably longer.
        let warm = |sim: &mut OooSim, addrs: &[u64]| {
            for a in addrs {
                sim.emit(Uop::mem(UopClass::Load, vec![], None, vec![*a]));
            }
        };
        let addrs: Vec<u64> = (0..16).map(|i| (1 << 20) + i * 4096).collect();

        let mut g = OooSim::table1();
        warm(&mut g, &addrs);
        let warm_cycles = g.result().cycles;
        for rep in 0..100u32 {
            g.emit(Uop::mem(
                UopClass::Gather,
                vec![Tok::V(rep)],
                Some(Tok::V(rep + 1)),
                addrs.clone(),
            ));
        }
        let gather_cycles = g.result().cycles - warm_cycles;

        let mut u = OooSim::table1();
        warm(&mut u, &[1 << 20]);
        let warm2 = u.result().cycles;
        for rep in 0..100u32 {
            u.emit(Uop::mem(
                UopClass::VecLoad,
                vec![Tok::V(rep)],
                Some(Tok::V(rep + 1)),
                vec![1 << 20, (1 << 20) + 64],
            ));
        }
        let unit_cycles = u.result().cycles - warm2;
        assert!(
            gather_cycles > 3 * unit_cycles,
            "gather={gather_cycles} unit={unit_cycles}"
        );
    }

    #[test]
    fn store_port_is_a_bottleneck() {
        // Independent stores limited by the single store port: ~1/cycle.
        let mut sim = OooSim::table1();
        for i in 0..500u32 {
            sim.emit(Uop::mem(
                UopClass::Store,
                vec![Tok::S(0)],
                None,
                vec![(1 << 20) + (i as u64 % 8) * 64],
            ));
        }
        let r = sim.result();
        assert!(r.cycles >= 480, "cycles = {}", r.cycles);
    }

    #[test]
    fn rob_limits_outstanding_window() {
        // A 400-cycle-latency op (cold load) followed by thousands of
        // independent ALU ops: the ROB (224) caps how far ahead the core
        // runs, so commit stalls behind the load.
        let mut sim = OooSim::table1();
        sim.emit(Uop::mem(
            UopClass::Load,
            vec![],
            Some(Tok::S(1)),
            vec![1 << 26],
        ));
        sim.emit(alu(2, &[1])); // depends on the load
        for i in 10..2000u32 {
            sim.emit(alu(i, &[]));
        }
        let r = sim.result();
        // In-order commit behind the 200-cycle load pushes total cycles
        // well past the pure-ALU throughput bound.
        assert!(r.cycles > 400, "cycles = {}", r.cycles);
    }

    #[test]
    fn result_counts() {
        let mut sim = OooSim::table1();
        sim.emit(alu(1, &[]));
        sim.emit(Uop {
            class: UopClass::Branch { id: 1, taken: true },
            srcs: vec![Tok::S(1)],
            dst: None,
            addrs: vec![],
        });
        let r = sim.result();
        assert_eq!(r.uops, 2);
        assert_eq!(r.branches, 1);
        assert!(r.cycles >= 1);
    }

    #[test]
    fn class_counts_are_categorized() {
        let mut sim = OooSim::table1();
        sim.emit(alu(1, &[]));
        sim.emit(Uop::reg(UopClass::Kftm, vec![Tok::K(1)], Some(Tok::K(2))));
        sim.emit(Uop::reg(
            UopClass::SelectLast,
            vec![Tok::K(2)],
            Some(Tok::V(1)),
        ));
        sim.emit(Uop::reg(UopClass::MaskOp, vec![Tok::K(2)], Some(Tok::K(3))));
        sim.emit(Uop::mem(
            UopClass::Gather,
            vec![Tok::V(1)],
            Some(Tok::V(2)),
            vec![4096],
        ));
        sim.emit(Uop::reg(UopClass::TxBegin, vec![], None));
        let c = sim.result().classes;
        assert_eq!(c.scalar, 1);
        assert_eq!(c.flexvec, 2);
        assert_eq!(c.mask, 1);
        assert_eq!(c.memory, 1);
        assert_eq!(c.txn, 1);
    }
}
