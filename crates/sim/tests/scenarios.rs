//! Workload-level timing scenarios: the out-of-order model must produce
//! the qualitative behaviors the paper's evaluation leans on — vector
//! code amortizing per-iteration control overhead, gathers costing per
//! lane, RTM overhead amortizing with tile size, and window/queue
//! saturation under memory pressure.

use flexvec_sim::{amdahl_overall, geomean, OooSim, SimConfig};
use flexvec_vm::{Tok, TraceSink, Uop, UopClass};

/// Emits a synthetic scalar loop iteration: load + compare-branch + bump.
fn scalar_iter(sim: &mut OooSim, i: u32, addr: u64, taken: bool) {
    sim.emit(Uop::mem(
        UopClass::Load,
        vec![Tok::S(0)],
        Some(Tok::S(i + 10)),
        vec![addr],
    ));
    sim.emit(Uop {
        class: UopClass::Branch { id: 1, taken },
        srcs: vec![Tok::S(i + 10)],
        dst: None,
        addrs: vec![],
    });
    sim.emit(Uop::reg(
        UopClass::ScalarAlu,
        vec![Tok::S(0)],
        Some(Tok::S(0)),
    ));
    sim.emit(Uop {
        class: UopClass::Branch { id: 0, taken: true },
        srcs: vec![Tok::S(0)],
        dst: None,
        addrs: vec![],
    });
}

/// Emits a synthetic vector chunk covering 16 of those iterations.
fn vector_chunk(sim: &mut OooSim, base: u64, serial: &mut u32) {
    let v = |n: u32| Tok::V(n);
    let addrs: Vec<u64> = (0..16).map(|l| base + l * 8).collect();
    *serial += 10;
    let s = *serial;
    sim.emit(Uop::reg(UopClass::Broadcast, vec![], Some(v(s))));
    sim.emit(Uop::mem(
        UopClass::VecLoad,
        vec![v(s)],
        Some(v(s + 1)),
        addrs,
    ));
    sim.emit(Uop::reg(UopClass::VecAlu, vec![v(s + 1)], Some(v(s + 2))));
    sim.emit(Uop::reg(UopClass::Kftm, vec![Tok::K(1)], Some(Tok::K(2))));
    sim.emit(Uop::reg(
        UopClass::SelectLast,
        vec![Tok::K(2), v(s + 2)],
        Some(v(s + 3)),
    ));
    sim.emit(Uop::reg(
        UopClass::MaskOp,
        vec![Tok::K(1), Tok::K(2)],
        Some(Tok::K(1)),
    ));
    sim.emit(Uop {
        class: UopClass::Branch {
            id: 99,
            taken: true,
        },
        srcs: vec![Tok::K(1)],
        dst: None,
        addrs: vec![],
    });
}

#[test]
fn vector_chunks_beat_equivalent_scalar_iterations() {
    let n = 4096u64;
    let mut scalar = OooSim::table1();
    for i in 0..n {
        scalar_iter(&mut scalar, (i % 64) as u32, 0x100000 + i * 8, i % 7 == 0);
    }
    let mut vector = OooSim::table1();
    let mut serial = 0;
    for chunk in 0..(n / 16) {
        vector_chunk(&mut vector, 0x100000 + chunk * 128, &mut serial);
    }
    let s = scalar.result();
    let v = vector.result();
    assert!(
        s.cycles > v.cycles,
        "vector should win: scalar {} vs vector {}",
        s.cycles,
        v.cycles
    );
}

#[test]
fn gather_cost_scales_with_active_lanes() {
    let run = |lanes: u64| {
        let mut sim = OooSim::table1();
        for rep in 0..200u64 {
            let addrs: Vec<u64> = (0..lanes)
                .map(|l| (1 << 20) + (rep * 16 + l) * 4096)
                .collect();
            sim.emit(Uop::mem(
                UopClass::Gather,
                vec![Tok::V((rep % 8) as u32)],
                Some(Tok::V((rep % 8) as u32 + 100)),
                addrs,
            ));
        }
        sim.result().cycles
    };
    let two = run(2);
    let sixteen = run(16);
    // Independent gathers overlap their misses, so the ratio is set by
    // load-port occupancy (8 lane-pairs vs 1), attenuated by the shared
    // front end: comfortably above 2x.
    assert!(
        sixteen > 2 * two,
        "16-lane gathers should cost a multiple of 2-lane ones: {sixteen} vs {two}"
    );
}

#[test]
fn txn_overhead_amortizes_with_tile_size() {
    // Tiles of N chunks each pay one TxBegin/TxEnd pair; larger tiles
    // spread it thinner.
    let run = |chunks_per_tile: u64| {
        let mut sim = OooSim::table1();
        let total_chunks = 256u64;
        let mut serial = 0;
        let mut emitted = 0;
        while emitted < total_chunks {
            sim.emit(Uop::reg(UopClass::TxBegin, vec![], None));
            for k in 0..chunks_per_tile.min(total_chunks - emitted) {
                vector_chunk(&mut sim, (1 << 21) + (emitted + k) * 128, &mut serial);
            }
            sim.emit(Uop::reg(UopClass::TxEnd, vec![], None));
            emitted += chunks_per_tile;
        }
        sim.result().cycles
    };
    let small_tiles = run(1);
    let large_tiles = run(16);
    // XBEGIN/XEND are modeled as long-latency port-occupying µops (the
    // paper tunes tile sizes against exactly this amortizable overhead,
    // reporting 1-2% at tiles of 128-256); the synthetic stream here has
    // one pair per 7-µop chunk, so the effect is a few percent.
    assert!(
        small_tiles as f64 > large_tiles as f64 * 1.03,
        "per-tile overhead must show: {small_tiles} vs {large_tiles}"
    );
}

#[test]
fn load_queue_throttles_outstanding_misses() {
    // More outstanding cold loads than LQ entries: the later loads wait
    // for queue slots, stretching total time past one memory round trip.
    let mut sim = OooSim::table1();
    for i in 0..200u32 {
        sim.emit(Uop::mem(
            UopClass::Load,
            vec![],
            Some(Tok::S(i + 1)),
            vec![(1 << 25) + (i as u64) * 8192],
        ));
    }
    let r = sim.result();
    // 200 independent loads, LQ = 80: at least three generations of
    // 200-cycle misses must serialize behind the queue.
    assert!(r.cycles > 400, "cycles = {}", r.cycles);
}

#[test]
fn flexvec_latencies_are_charged() {
    // A dependent chain of VPCONFLICTM (latency 20) is much slower than a
    // chain of KFTM (latency 2).
    let chain = |class: UopClass, n: u32| {
        let mut sim = OooSim::table1();
        for i in 0..n {
            sim.emit(Uop::reg(
                class.clone(),
                vec![Tok::K(i)],
                Some(Tok::K(i + 1)),
            ));
        }
        sim.result().cycles
    };
    let conflict = chain(UopClass::Conflict, 100);
    let kftm = chain(UopClass::Kftm, 100);
    assert!(conflict > 5 * kftm, "conflict {conflict} vs kftm {kftm}");
    assert!(conflict >= 100 * 20);
    assert!(kftm >= 100 * 2);
}

#[test]
fn custom_config_changes_behavior() {
    // Halving the ALU ports must slow a port-bound stream.
    let run = |ports: usize| {
        let mut cfg = SimConfig::table1();
        cfg.alu_ports = ports;
        let mut sim = OooSim::new(cfg);
        for i in 0..2000u32 {
            sim.emit(Uop::reg(UopClass::VecAlu, vec![], Some(Tok::V(i))));
        }
        sim.result().cycles
    };
    let four = run(4);
    let one = run(1);
    assert!(one > 2 * four, "one-port {one} vs four-port {four}");
}

#[test]
fn helper_math_is_consistent() {
    // The Figure 8 pipeline: overall = amdahl(region, coverage), group
    // number = geomean. Spot-check the arithmetic used by the harness.
    let overall: Vec<f64> = [(2.0, 0.6), (1.5, 0.13), (3.0, 0.365)]
        .iter()
        .map(|(s, c)| amdahl_overall(*s, *c))
        .collect();
    for o in &overall {
        assert!(*o > 1.0 && *o < 3.0);
    }
    let g = geomean(&overall);
    assert!(g > 1.0 && g < 2.0);
    // Geomean is order-invariant.
    let mut rev = overall.clone();
    rev.reverse();
    assert!((geomean(&rev) - g).abs() < 1e-12);
}
