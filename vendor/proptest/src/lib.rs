//! Offline vendored stand-in for the subset of `proptest` 1.x used by this
//! workspace.
//!
//! The build environment has no registry access, so the workspace pins
//! `proptest` to this path crate. It provides the `proptest!` test macro,
//! the `prop_assert*` / `prop_assume!` assertion macros, `any::<T>()` for
//! the primitive types the tests use, integer-range strategies, tuple
//! strategies, `prop::collection::vec`, `prop::array::uniform16`, and
//! `Strategy::prop_map`.
//!
//! Differences from upstream: generation is plain random sampling from a
//! per-test deterministic seed — there is **no shrinking** and no failure
//! persistence. A failing case panics with the assertion message. That is
//! sufficient for the crosscheck-style property tests in this repository.

#![forbid(unsafe_code)]

use std::marker::PhantomData;

/// Test-runner plumbing used by the generated test bodies.
pub mod test_runner {
    /// Deterministic generator driving value generation for one property
    /// test (xoshiro256++ seeded from the test name).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: [u64; 4],
    }

    impl TestRng {
        /// Build a generator whose stream depends only on `name`.
        pub fn deterministic(name: &str) -> TestRng {
            // FNV-1a over the test name, then SplitMix64 expansion.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            let mut sm = h;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            TestRng {
                state: [next(), next(), next(), next()],
            }
        }

        /// Next raw 64 bits.
        pub fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        /// Uniform sample in `[0, bound)` (multiply-shift bounded sampling).
        pub fn below(&mut self, bound: u128) -> u128 {
            debug_assert!(bound > 0);
            let wide = (self.next_u64() as u128).wrapping_mul(bound);
            wide >> 64
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; the case is skipped, not a failure.
        Reject(String),
        /// A `prop_assert*` failed; the test fails with this message.
        Fail(String),
    }
}

/// Runner configuration (mirror of `proptest::test_runner::Config`).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases each property test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated cases per test.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generate one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adaptor produced by [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.new_value(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($ty:ty),*) => {$(
            impl Strategy for ::std::ops::Range<$ty> {
                type Value = $ty;

                fn new_value(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $ty
                }
            }
        )*};
    }

    impl_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.new_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J, K, L);
}

/// `any::<T>()` support for primitives.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;
    use super::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait ArbitraryValue: Sized {
        /// Draw one value from the type's full domain.
        fn arbitrary_value(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary_int {
        ($($ty:ty),*) => {$(
            impl ArbitraryValue for $ty {
                fn arbitrary_value(rng: &mut TestRng) -> $ty {
                    rng.next_u64() as $ty
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    impl ArbitraryValue for bool {
        fn arbitrary_value(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy returned by [`any`].
    #[derive(Clone, Copy, Debug, Default)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: ArbitraryValue> Strategy for Any<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary_value(rng)
        }
    }

    /// Full-domain strategy for a primitive type.
    pub fn any<T: ArbitraryValue>() -> Any<T> {
        Any(PhantomData)
    }
}

/// `Vec` strategies (mirror of `proptest::collection`).
pub mod collection {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Inclusive-min, exclusive-max length range for [`vec`].
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(exact: usize) -> SizeRange {
            SizeRange {
                min: exact,
                max: exact + 1,
            }
        }
    }

    impl From<::std::ops::Range<usize>> for SizeRange {
        fn from(range: ::std::ops::Range<usize>) -> SizeRange {
            assert!(range.start < range.end, "empty vec size range");
            SizeRange {
                min: range.start,
                max: range.end,
            }
        }
    }

    /// Strategy returned by [`vec`].
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u128;
            let len = self.size.min + rng.below(span.max(1)) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Vectors of values from `element`, with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

/// Fixed-size array strategies (mirror of `proptest::array`).
pub mod array {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy returned by [`uniform16`].
    #[derive(Clone, Debug)]
    pub struct Uniform16<S>(S);

    impl<S: Strategy> Strategy for Uniform16<S> {
        type Value = [S::Value; 16];

        fn new_value(&self, rng: &mut TestRng) -> [S::Value; 16] {
            ::std::array::from_fn(|_| self.0.new_value(rng))
        }
    }

    /// A 16-element array with every element drawn from `element`.
    pub fn uniform16<S: Strategy>(element: S) -> Uniform16<S> {
        Uniform16(element)
    }
}

/// Choosing from a fixed set of options (mirror of `proptest::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// Strategy returned by [`select`].
    #[derive(Clone, Debug)]
    pub struct Select<T>(Vec<T>);

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn new_value(&self, rng: &mut TestRng) -> T {
            self.0[rng.below(self.0.len() as u128) as usize].clone()
        }
    }

    /// Uniformly selects one of the given options per generated case.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select(options)
    }
}

/// Namespace mirror so `prop::collection::vec` / `prop::array::uniform16`
/// resolve as they do with upstream proptest's prelude.
pub mod prop {
    pub use super::array;
    pub use super::collection;
    pub use super::sample;
}

/// The usual glob-import surface: `use proptest::prelude::*;`.
pub mod prelude {
    pub use super::arbitrary::any;
    pub use super::prop;
    pub use super::strategy::Strategy;
    pub use super::test_runner::TestCaseError;
    pub use super::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!((<$crate::ProptestConfig as ::std::default::Default>::default()); $($rest)*);
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            let mut __case: u32 = 0;
            while __case < __config.cases {
                __case += 1;
                $(
                    let $pat = $crate::strategy::Strategy::new_value(
                        &($strat),
                        &mut __rng,
                    );
                )+
                let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(__msg),
                    ) => {
                        panic!(
                            "proptest case {} of {} failed: {}",
                            __case, __config.cases, __msg
                        );
                    }
                }
            }
        }
    )*};
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Assert two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
                    stringify!($left),
                    stringify!($right),
                    __l,
                    __r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "{}\n  left: `{:?}`\n right: `{:?}`",
                    format!($($fmt)+),
                    __l,
                    __r
                ),
            ));
        }
    }};
}

/// Assert two values are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!(
                    "assertion failed: `{} != {}`\n  both: `{:?}`",
                    stringify!($left),
                    stringify!($right),
                    __l
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!("{}\n  both: `{:?}`", format!($($fmt)+), __l),
            ));
        }
    }};
}

/// Skip the current generated case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in -4i64..5, y in 0usize..16) {
            prop_assert!((-4..5).contains(&x));
            prop_assert!(y < 16);
        }

        #[test]
        fn tuples_vectors_arrays(
            (a, b) in (0u64..100, any::<bool>()),
            v in prop::collection::vec(any::<u8>(), 3..9),
            arr in prop::array::uniform16(0i64..6),
        ) {
            prop_assert!(a < 100);
            let _ = b;
            prop_assert!((3..9).contains(&v.len()));
            prop_assert!(arr.iter().all(|&e| (0..6).contains(&e)));
        }

        #[test]
        fn map_applies_function(doubled in (0i64..50).prop_map(|x| x * 2)) {
            prop_assert_eq!(doubled % 2, 0);
            prop_assert_ne!(doubled, 1);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0i64..10) {
            prop_assume!(x != 3);
            prop_assert!(x != 3, "assume should have filtered {}", x);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(17))]
        #[test]
        fn config_form_parses(x in 0u32..7) {
            prop_assert!(x < 7);
        }
    }
}
