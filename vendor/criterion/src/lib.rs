//! Offline vendored stand-in for the subset of `criterion` 0.5 used by the
//! workspace benches.
//!
//! The build environment has no registry access, so the workspace pins
//! `criterion` to this path crate. It implements `Criterion`,
//! `benchmark_group` / `sample_size`, `bench_function`, `bench_with_input`,
//! `BenchmarkId`, `black_box`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a simple warmup + timed-batch
//! loop that reports mean wall-clock time per iteration; there is no
//! statistical analysis, plotting, or persistence.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub use std::hint::black_box;

/// Identifier for a parameterised benchmark case.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Build an id from a parameter value, like criterion's
    /// `BenchmarkId::from_parameter`.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }

    /// Build an id from a function name and a parameter value.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }
}

/// Timing harness handed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    /// Mean time per iteration of the most recent `iter` call.
    last_mean: Option<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly and record its mean wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup: run until ~20ms has elapsed (at least once) so lazy
        // initialisation and cache effects settle.
        let warmup_budget = Duration::from_millis(20);
        let warmup_start = Instant::now();
        let mut warmup_iters: u64 = 0;
        loop {
            black_box(routine());
            warmup_iters += 1;
            if warmup_start.elapsed() >= warmup_budget {
                break;
            }
        }
        let per_iter = warmup_start.elapsed() / warmup_iters.max(1) as u32;

        // Timed run: `sample_size` batches, each sized to take roughly 5ms,
        // capped so quick benches stay quick.
        let batch = if per_iter.is_zero() {
            1024
        } else {
            (Duration::from_millis(5).as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 100_000)
                as u64
        };
        let samples = self.sample_size.clamp(1, 100);
        let mut best = Duration::MAX;
        let mut total = Duration::ZERO;
        let mut iters: u64 = 0;
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            let mean = elapsed / batch as u32;
            if mean < best {
                best = mean;
            }
            total += elapsed;
            iters += batch;
        }
        self.last_mean = Some(total / iters.max(1) as u32);
    }
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if nanos >= 1_000_000 {
        format!("{:.3} ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.3} µs", nanos as f64 / 1e3)
    } else {
        format!("{nanos} ns")
    }
}

fn run_case(label: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        sample_size,
        last_mean: None,
    };
    f(&mut bencher);
    match bencher.last_mean {
        Some(mean) => println!("{label:<48} time: {}", format_duration(mean)),
        None => println!("{label:<48} (no measurement: bencher.iter never called)"),
    }
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        run_case(name, 20, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_size: 20,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run a named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let label = format!("{}/{}", self.name, name);
        run_case(&label, self.sample_size, &mut f);
        self
    }

    /// Run a parameterised benchmark within the group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let label = format!("{}/{}", self.name, id.id);
        run_case(&label, self.sample_size, &mut |b| f(b, input));
        self
    }

    /// Finish the group (formatting no-op in this stand-in).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generate a `main` that runs the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut count = 0u64;
        c.bench_function("smoke", |b| b.iter(|| count = count.wrapping_add(1)));
        assert!(count > 0);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_function("f", |b| b.iter(|| black_box(2 + 2)));
        group.bench_with_input(BenchmarkId::from_parameter(7), &7u32, |b, &t| {
            b.iter(|| black_box(t * 2))
        });
        group.finish();
    }
}
