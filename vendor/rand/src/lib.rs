//! Offline vendored stand-in for the subset of `rand` 0.8 used by this
//! workspace.
//!
//! The build environment has no network access to a crates registry, so the
//! workspace pins `rand` to this path crate. It implements exactly the API
//! surface the repository consumes — `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::gen_range` over half-open integer ranges, and
//! `Rng::gen_bool` — backed by the public-domain xoshiro256++ generator.
//! Streams are deterministic for a given seed but are *not* bit-compatible
//! with upstream `rand`'s ChaCha-based `StdRng`; nothing in the workspace
//! depends on the exact values, only on determinism and a roughly uniform
//! distribution.

#![forbid(unsafe_code)]

use std::ops::Range;

/// Seedable random number generators (mirror of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling helpers available on every generator (mirror of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a half-open range, like `rand`'s
    /// `gen_range(low..high)`. Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample(self, range)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability out of range"
        );
        // 53 random bits give a uniform float in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy {
    /// Draw one value uniformly from `range`.
    fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample<R: Rng + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(
                    range.start < range.end,
                    "gen_range called with empty range"
                );
                let span = (range.end as i128 - range.start as i128) as u128;
                // Multiply-shift bounded sampling (Lemire); the tiny modulo
                // bias over a 128-bit product is far below anything the
                // workloads can observe.
                let wide = (rng.next_u64() as u128).wrapping_mul(span);
                let offset = (wide >> 64) as i128;
                (range.start as i128 + offset) as Self
            }
        }
    )*};
}

impl_sample_uniform!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

/// Concrete generators (mirror of `rand::rngs`).
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic 64-bit generator: xoshiro256++ seeded via SplitMix64.
    ///
    /// Stands in for `rand::rngs::StdRng`; same trait surface, different
    /// (but still high-quality, deterministic) stream.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-50i64..5);
            assert!((-50..5).contains(&v));
            let u = rng.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_range_covers_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((1_500..3_500).contains(&hits), "hits = {hits}");
    }
}
