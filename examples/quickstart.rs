//! Quickstart: vectorize a traditionally non-vectorizable loop with
//! FlexVec and verify the result against scalar execution.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```
//!
//! The loop is the canonical conditional-update pattern:
//!
//! ```c
//! for (i = 0; i < n; i++)
//!     if (a[i] < best)
//!         best = a[i];
//! ```
//!
//! A traditional vectorizer rejects it (the condition reads the scalar
//! the body conditionally redefines — a cyclic dependence); FlexVec
//! vectorizes it with a Vector Partitioning Loop.

use flexvec::{analyze, vectorize, SpecRequest, Verdict};
use flexvec_ir::build::*;
use flexvec_ir::ProgramBuilder;
use flexvec_mem::AddressSpace;
use flexvec_sim::OooSim;
use flexvec_vm::{run_scalar, run_vector, Bindings};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the loop program.
    let mut b = ProgramBuilder::new("conditional-min");
    let i = b.var("i", 0);
    let n = b.var("n", 10_000);
    let best = b.var("best", i64::MAX);
    let a = b.array("a");
    b.live_out(best);
    let program = b.build_loop(
        i,
        c(0),
        var(n),
        vec![if_(
            lt(ld(a, var(i)), var(best)),
            vec![assign(best, ld(a, var(i)))],
        )],
    )?;
    println!("Source loop:\n{program}");

    // 2. Analyze: what does the dependence graph say?
    let analysis = analyze(&program);
    match &analysis.verdict {
        Verdict::FlexVec(plan) => {
            println!(
                "Analysis: FlexVec candidate — {} relaxed edge(s), updated scalar(s): {:?}\n",
                plan.relaxed_edges, plan.updated_vars
            );
        }
        other => println!("Analysis: {other:?}\n"),
    }

    // 3. Vectorize and inspect the generated partial vector code.
    let vectorized = vectorize(&program, SpecRequest::Auto)?;
    println!(
        "Generated vector program ({} VPLs):",
        vectorized.vprog.vpl_count()
    );
    println!("{}", vectorized.vprog);
    println!(
        "FlexVec instruction mix: {}\n",
        vectorized.vprog.inst_mix().flexvec_summary()
    );

    // 4. Execute both versions on the same input and compare.
    let data: Vec<i64> = (0..10_000)
        .map(|k: i64| (k.wrapping_mul(2654435761) % 1_000_003).abs())
        .collect();

    let mut mem_s = AddressSpace::new();
    let a_s = mem_s.alloc_from("a", &data);
    let mut sim_s = OooSim::table1();
    let scalar = run_scalar(&program, &mut mem_s, Bindings::new(vec![a_s]), &mut sim_s)?;

    let mut mem_v = AddressSpace::new();
    let a_v = mem_v.alloc_from("a", &data);
    let mut sim_v = OooSim::table1();
    let (vector, stats) = run_vector(
        &program,
        &vectorized.vprog,
        &mut mem_v,
        Bindings::new(vec![a_v]),
        &mut sim_v,
    )?;

    assert_eq!(scalar.var(best), vector.var(best), "executions must agree");
    println!("minimum found (both executions): {}", vector.var(best));
    println!(
        "chunks: {}, VPL partitions: {} (max {} per chunk)",
        stats.chunks, stats.vpl_iterations, stats.max_partitions
    );

    // 5. Timing on the Table 1 out-of-order model.
    let sc = sim_s.result().cycles;
    let vc = sim_v.result().cycles;
    println!(
        "baseline {} cycles, FlexVec {} cycles: {:.2}x region speedup",
        sc,
        vc,
        sc as f64 / vc as f64
    );
    Ok(())
}
