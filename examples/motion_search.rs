//! The paper's flagship example (Section 1.1): the 464.h264ref motion
//! search loop, with speculative loads under a stale guard.
//!
//! ```sh
//! cargo run --release --example motion_search
//! ```
//!
//! ```c
//! for (; pos < max_pos; pos++) {
//!     if (block_sad[pos] < min_mcost) {
//!         mcost  = block_sad[pos];
//!         cand   = spiral_srch[pos];   // requires speculative load
//!         mcost += mv[cand];           // requires speculative gather
//!         if (mcost < min_mcost)
//!             min_mcost = mcost;       // infrequent conditional update
//!     }
//! }
//! ```
//!
//! The demo runs the loop under three configurations — scalar baseline,
//! FlexVec with first-faulting loads, and FlexVec over RTM transactions —
//! and shows how the partition count tracks the update frequency.

use flexvec::{vectorize, SpecRequest};
use flexvec_ir::build::*;
use flexvec_ir::{Program, ProgramBuilder};
use flexvec_mem::AddressSpace;
use flexvec_sim::OooSim;
use flexvec_vm::{run_scalar, run_vector, Bindings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn motion_search_loop(n: i64) -> Program {
    let mut b = ProgramBuilder::new("h264_motion_search");
    let pos = b.var("pos", 0);
    let max_pos = b.var("max_pos", n);
    let mcost = b.var("mcost", 0);
    let cand = b.var("cand", 0);
    let min_mcost = b.var("min_mcost", 1 << 24);
    let block_sad = b.array("block_sad");
    let spiral = b.array("spiral_srch");
    let mv = b.array("mv");
    b.live_out(min_mcost);
    b.build_loop(
        pos,
        c(0),
        var(max_pos),
        vec![if_(
            lt(ld(block_sad, var(pos)), var(min_mcost)),
            vec![
                assign(mcost, ld(block_sad, var(pos))),
                assign(cand, ld(spiral, var(pos))),
                assign(mcost, add(var(mcost), ld(mv, var(cand)))),
                if_(
                    lt(var(mcost), var(min_mcost)),
                    vec![assign(min_mcost, var(mcost))],
                ),
            ],
        )],
    )
    .expect("valid program")
}

fn inputs(n: usize, update_rate: f64) -> Vec<Vec<i64>> {
    let mut rng = StdRng::seed_from_u64(0x264);
    let mut floor: i64 = 1 << 22;
    let block_sad = (0..n)
        .map(|_| {
            if rng.gen_bool(update_rate) {
                floor -= rng.gen_range(1..100);
                floor
            } else {
                (1 << 23) + rng.gen_range(0..4096)
            }
        })
        .collect();
    let spiral = (0..n).map(|_| rng.gen_range(0..n as i64)).collect();
    let mv = (0..n).map(|_| rng.gen_range(0..1 << 12)).collect();
    vec![block_sad, spiral, mv]
}

fn run(
    program: &Program,
    arrays: &[Vec<i64>],
    spec: Option<SpecRequest>,
) -> Result<(u64, String), Box<dyn std::error::Error>> {
    let mut mem = AddressSpace::new();
    let ids: Vec<_> = arrays
        .iter()
        .enumerate()
        .map(|(i, d)| mem.alloc_from(&format!("a{i}"), d))
        .collect();
    let mut sim = OooSim::table1();
    let detail = match spec {
        None => {
            let r = run_scalar(program, &mut mem, Bindings::new(ids), &mut sim)?;
            format!("min_mcost = {}", r.var(flexvec_ir::VarId(4)))
        }
        Some(spec) => {
            let v = vectorize(program, spec)?;
            let (r, stats) = run_vector(program, &v.vprog, &mut mem, Bindings::new(ids), &mut sim)?;
            format!(
                "min_mcost = {}, {} chunks, {} partitions, {} FF fallbacks, {} txn aborts",
                r.var(flexvec_ir::VarId(4)),
                stats.chunks,
                stats.vpl_iterations,
                stats.ff_fallbacks,
                stats.rtm_aborts
            )
        }
    };
    Ok((sim.result().cycles, detail))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096usize;
    let program = motion_search_loop(n as i64);
    println!("{program}");

    for rate in [0.01, 0.10, 0.40] {
        println!("--- update rate {:.0}% ---", rate * 100.0);
        let arrays = inputs(n, rate);
        let (scalar, s_detail) = run(&program, &arrays, None)?;
        let (ff, f_detail) = run(&program, &arrays, Some(SpecRequest::Auto))?;
        let (rtm, r_detail) = run(&program, &arrays, Some(SpecRequest::Rtm { tile: 256 }))?;
        println!("scalar baseline : {scalar:>8} cycles  ({s_detail})");
        println!(
            "FlexVec (FF)    : {ff:>8} cycles  {:.2}x  ({f_detail})",
            scalar as f64 / ff as f64
        );
        println!(
            "FlexVec (RTM)   : {rtm:>8} cycles  {:.2}x  ({r_detail})",
            scalar as f64 / rtm as f64
        );
        println!();
    }
    Ok(())
}
