//! Runtime memory dependencies (the paper's Figure 2 pattern): an
//! indirect read-modify-write histogram where different iterations may
//! hit the same bin.
//!
//! ```sh
//! cargo run --release --example histogram_conflicts
//! ```
//!
//! A traditional vectorizer must assume every pair of iterations
//! conflicts and gives up; FlexVec vectorizes the loop and lets
//! `VPCONFLICTM` partition each vector of 16 iterations at the actual
//! runtime conflicts. The demo sweeps the number of bins: with many bins
//! conflicts are rare (≈1 partition per chunk, full SIMD width); with 2
//! bins execution degenerates gracefully toward serial order.

use flexvec::{analyze, vectorize, SpecRequest, Verdict};
use flexvec_ir::build::*;
use flexvec_ir::{Program, ProgramBuilder};
use flexvec_mem::AddressSpace;
use flexvec_sim::OooSim;
use flexvec_vm::{run_scalar, run_vector, Bindings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn histogram_max_loop(n: i64) -> Program {
    // bins[key[i]] = max(bins[key[i]], val[i]) — expressed with the
    // guarded-store idiom of Figure 2 so the load participates in the
    // dependence cycle.
    let mut b = ProgramBuilder::new("histogram_max");
    let i = b.var("i", 0);
    let end = b.var("n", n);
    let k = b.var("k", 0);
    let v = b.var("v", 0);
    let key = b.array("key");
    let val = b.array("val");
    let bins = b.array("bins");
    b.build_loop(
        i,
        c(0),
        var(end),
        vec![
            assign(k, ld(key, var(i))),
            assign(v, ld(val, var(i))),
            if_(
                gt(var(v), ld(bins, var(k))),
                vec![store(bins, var(k), var(v))],
            ),
        ],
    )
    .expect("valid program")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 8192usize;
    let program = histogram_max_loop(n as i64);
    println!("{program}");

    let analysis = analyze(&program);
    if let Verdict::FlexVec(plan) = &analysis.verdict {
        println!(
            "analysis: {} conflict check(s), VPL over nodes {:?}\n",
            plan.conflict_checks.len(),
            plan.vpl_range
        );
    }
    let vectorized = vectorize(&program, SpecRequest::Auto)?;

    println!(
        "{:>8} {:>12} {:>12} {:>9} {:>12}",
        "bins", "scalar cyc", "flexvec cyc", "speedup", "partitions"
    );
    for bins_count in [2usize, 16, 256, 4096] {
        let mut rng = StdRng::seed_from_u64(bins_count as u64);
        let key: Vec<i64> = (0..n)
            .map(|_| rng.gen_range(0..bins_count as i64))
            .collect();
        let val: Vec<i64> = (0..n).map(|_| rng.gen_range(0..1_000_000)).collect();
        let bins = vec![0i64; bins_count];
        let arrays = [key, val, bins];

        let mut mem_s = AddressSpace::new();
        let ids_s: Vec<_> = arrays
            .iter()
            .enumerate()
            .map(|(i, d)| mem_s.alloc_from(&format!("a{i}"), d))
            .collect();
        let mut sim_s = OooSim::table1();
        run_scalar(
            &program,
            &mut mem_s,
            Bindings::new(ids_s.clone()),
            &mut sim_s,
        )?;

        let mut mem_v = AddressSpace::new();
        let ids_v: Vec<_> = arrays
            .iter()
            .enumerate()
            .map(|(i, d)| mem_v.alloc_from(&format!("a{i}"), d))
            .collect();
        let mut sim_v = OooSim::table1();
        let (_, stats) = run_vector(
            &program,
            &vectorized.vprog,
            &mut mem_v,
            Bindings::new(ids_v.clone()),
            &mut sim_v,
        )?;

        // The two executions must agree bin-for-bin.
        assert_eq!(
            mem_s.snapshot_array(ids_s[2]),
            mem_v.snapshot_array(ids_v[2]),
            "histogram mismatch"
        );

        let sc = sim_s.result().cycles;
        let vc = sim_v.result().cycles;
        println!(
            "{:>8} {:>12} {:>12} {:>8.2}x {:>9.2}/ch",
            bins_count,
            sc,
            vc,
            sc as f64 / vc as f64,
            stats.vpl_iterations as f64 / stats.chunks as f64
        );
    }
    println!("\n(With few bins VPCONFLICTM partitions nearly every chunk; with many");
    println!(" bins the loop runs at full vector width — FlexVec adapts at runtime.)");
    Ok(())
}
