//! Early loop termination (the paper's Figure 5 pattern) in a
//! BLAST-flavored setting: scan seed hits until the first one whose
//! extension score clears a threshold, with the score computed through a
//! chained indirect load (`val[lnk[i]]`) that must be speculated past the
//! exit condition of earlier iterations.
//!
//! ```sh
//! cargo run --release --example seed_extension
//! ```
//!
//! FlexVec hoists the chained loads with first-faulting instructions
//! (`VMOVFF` + `VPGATHERFF`), evaluates the exit condition for a full
//! vector of iterations at once, and cuts `k_loop` at the first exiting
//! lane. The demo places the hit at different positions to show that the
//! result (and the final induction value!) exactly matches scalar
//! semantics in every case.

use flexvec::{vectorize, SpecRequest};
use flexvec_ir::build::*;
use flexvec_ir::{Program, ProgramBuilder, VarId};
use flexvec_mem::AddressSpace;
use flexvec_sim::OooSim;
use flexvec_vm::{run_scalar, run_vector, Bindings};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const THRESHOLD: i64 = 100_000;

fn seed_scan_loop(n: i64) -> Program {
    let mut b = ProgramBuilder::new("blast_seed_scan");
    let i = b.var("i", 0);
    let end = b.var("n", n);
    let score = b.var("score", 0);
    let hit_pos = b.var("hit_pos", -1);
    let lnk = b.array("lnk");
    let val = b.array("val");
    b.live_out(hit_pos);
    b.build_loop(
        i,
        c(0),
        var(end),
        vec![
            assign(score, add(ld(val, ld(lnk, var(i))), mul(var(i), c(3)))),
            if_(
                gt(var(score), c(THRESHOLD)),
                vec![assign(hit_pos, var(i)), brk()],
            ),
        ],
    )
    .expect("valid program")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 4096usize;
    let program = seed_scan_loop(n as i64);
    println!("{program}");

    let vectorized = vectorize(&program, SpecRequest::Auto)?;
    println!(
        "FlexVec mix: {} (speculative loads feed the exit guard)\n",
        vectorized.vprog.inst_mix().flexvec_summary()
    );

    println!(
        "{:>10} {:>9} {:>9} {:>12} {:>12} {:>9}",
        "hit at", "scalar i", "vector i", "scalar cyc", "vector cyc", "speedup"
    );
    for hit in [7usize, 16, 100, 1000, 4000] {
        let mut rng = StdRng::seed_from_u64(hit as u64);
        let lnk: Vec<i64> = (0..n).map(|_| rng.gen_range(0..n as i64)).collect();
        let mut val: Vec<i64> = (0..n).map(|_| rng.gen_range(0..50_000)).collect();
        // Plant the hit: make iteration `hit` (and none before it) clear
        // the threshold.
        for i in 0..hit {
            val[lnk[i] as usize] = val[lnk[i] as usize].min(40_000);
        }
        val[lnk[hit] as usize] = THRESHOLD + 1;

        let arrays = [lnk, val];
        let mut mem_s = AddressSpace::new();
        let ids_s: Vec<_> = arrays
            .iter()
            .enumerate()
            .map(|(i, d)| mem_s.alloc_from(&format!("a{i}"), d))
            .collect();
        let mut sim_s = OooSim::table1();
        let scalar = run_scalar(&program, &mut mem_s, Bindings::new(ids_s), &mut sim_s)?;

        let mut mem_v = AddressSpace::new();
        let ids_v: Vec<_> = arrays
            .iter()
            .enumerate()
            .map(|(i, d)| mem_v.alloc_from(&format!("a{i}"), d))
            .collect();
        let mut sim_v = OooSim::table1();
        let (vector, _) = run_vector(
            &program,
            &vectorized.vprog,
            &mut mem_v,
            Bindings::new(ids_v),
            &mut sim_v,
        )?;

        assert_eq!(
            scalar.var(VarId(3)),
            vector.var(VarId(3)),
            "hit position differs"
        );
        assert_eq!(
            scalar.var(VarId(0)),
            vector.var(VarId(0)),
            "exit induction differs"
        );

        let sc = sim_s.result().cycles;
        let vc = sim_v.result().cycles;
        println!(
            "{:>10} {:>9} {:>9} {:>12} {:>12} {:>8.2}x",
            hit,
            scalar.var(VarId(0)),
            vector.var(VarId(0)),
            sc,
            vc,
            sc as f64 / vc as f64
        );
    }
    println!("\n(The vector loop terminates at exactly the scalar exit iteration; lanes");
    println!(" past the exit are clobbered by the early-exit mask correction.)");
    Ok(())
}
