//! Umbrella crate for the FlexVec reproduction workspace.
//!
//! This crate hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`). The actual functionality lives in the
//! member crates re-exported below.

pub use flexvec;
pub use flexvec_ir as ir;
pub use flexvec_isa as isa;
pub use flexvec_mem as mem;
pub use flexvec_profiler as profiler;
pub use flexvec_sim as sim;
pub use flexvec_vm as vm;
pub use flexvec_workloads as workloads;
